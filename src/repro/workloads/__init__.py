"""Workloads: synthetic datasets, platform presets and experiment runners."""

from repro.workloads.datasets import (
    SyntheticDataset,
    build_imagenet_dataset,
    build_malware_dataset,
    table2_rows,
)
from repro.workloads.pipelines import (
    build_imagenet_pipeline,
    build_malware_pipeline,
    build_training_pipeline,
    imagenet_map_fn,
    malware_map_fn,
)
from repro.workloads.platforms import Platform, greendog, kebnekaise
from repro.workloads.runner import (
    TrainingRunResult,
    imagenet_threads_spec,
    overhead_grid_spec,
    platform_grid_spec,
    run_checkpoint_case,
    run_imagenet_case,
    run_malware_case,
    run_overhead_case,
    run_platform_case,
    run_stream_validation,
    staging_threshold_spec,
    training_metrics,
)

__all__ = [
    "Platform",
    "SyntheticDataset",
    "TrainingRunResult",
    "imagenet_threads_spec",
    "overhead_grid_spec",
    "platform_grid_spec",
    "staging_threshold_spec",
    "training_metrics",
    "build_imagenet_dataset",
    "build_imagenet_pipeline",
    "build_malware_dataset",
    "build_malware_pipeline",
    "build_training_pipeline",
    "greendog",
    "imagenet_map_fn",
    "kebnekaise",
    "malware_map_fn",
    "run_checkpoint_case",
    "run_imagenet_case",
    "run_malware_case",
    "run_overhead_case",
    "run_platform_case",
    "run_stream_validation",
    "table2_rows",
]
