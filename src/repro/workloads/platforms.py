"""The paper's two evaluation platforms as ready-to-use simulations.

*Greendog* is a workstation (8-core i7-7820X, 32 GB RAM, RTX 2060 SUPER)
with three storage tiers — HDD, SATA SSD and an Intel Optane 900p — running
ext4; the datasets live on the HDD.  *Kebnekaise* is an HPC cluster node
(2x Xeon Gold 6132 = 28 cores, 192 GB RAM, 2x V100) whose storage is a
Lustre parallel filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import Environment
from repro.storage import (
    LocalFilesystem,
    LustreFilesystem,
    PageCache,
    StorageBackend,
    greendog_hdd_filesystem,
    greendog_optane_filesystem,
    greendog_ssd_filesystem,
    kebnekaise_lustre,
)
from repro.posix import SimulatedOS
from repro.tfmini import TFRuntime
from repro.tfmini.device import GPUDevice, rtx2060, v100


@dataclass
class Platform:
    """A fully wired platform: environment, OS image, TF runtime, tiers."""

    name: str
    env: Environment
    os: SimulatedOS
    runtime: TFRuntime
    data_root: str
    backends: Dict[str, StorageBackend] = field(default_factory=dict)
    fast_tier: Optional[StorageBackend] = None
    rotational_data_tier: bool = False

    def drop_caches(self) -> None:
        """The paper's pre-run protocol on Greendog."""
        self.os.drop_caches()

    def devices(self):
        return self.os.devices()

    def device_named(self, name: str):
        for device in self.devices():
            if device.name == name:
                return device
        raise KeyError(name)


def greendog(env: Optional[Environment] = None,
             cpu_cores: int = 8,
             read_buffer_size: int = 1 << 20) -> Platform:
    """The Greendog workstation: HDD data tier + SSD + Optane fast tier."""
    env = env or Environment()
    page_cache = PageCache(capacity_bytes=28 * (1 << 30))  # 32 GB minus OS
    os_image = SimulatedOS(env, page_cache=page_cache)
    hdd_fs = greendog_hdd_filesystem(env)
    ssd_fs = greendog_ssd_filesystem(env)
    optane_fs = greendog_optane_filesystem(env)
    os_image.mount("/data", hdd_fs)
    os_image.mount("/ssd", ssd_fs)
    os_image.mount("/optane", optane_fs)
    runtime = TFRuntime(env, os_image, cpu_cores=cpu_cores,
                        gpus=[rtx2060(env)], read_buffer_size=read_buffer_size,
                        name="greendog")
    return Platform(
        name="greendog",
        env=env,
        os=os_image,
        runtime=runtime,
        data_root="/data",
        backends={"hdd": hdd_fs, "ssd": ssd_fs, "optane": optane_fs},
        fast_tier=optane_fs,
        rotational_data_tier=True,
    )


def kebnekaise(env: Optional[Environment] = None,
               cpu_cores: int = 28,
               n_gpus: int = 2,
               n_osts: int = 8,
               read_buffer_size: int = 1 << 20) -> Platform:
    """A Kebnekaise compute node: 28 cores, two V100s, Lustre storage."""
    env = env or Environment()
    page_cache = PageCache(capacity_bytes=160 * (1 << 30))
    os_image = SimulatedOS(env, page_cache=page_cache)
    lustre = kebnekaise_lustre(env, n_osts=n_osts)
    os_image.mount("/lustre", lustre)
    runtime = TFRuntime(env, os_image, cpu_cores=cpu_cores,
                        gpus=[v100(env, i) for i in range(n_gpus)],
                        read_buffer_size=read_buffer_size, name="kebnekaise")
    return Platform(
        name="kebnekaise",
        env=env,
        os=os_image,
        runtime=runtime,
        data_root="/lustre",
        backends={"lustre": lustre},
        fast_tier=None,
        rotational_data_tier=False,
    )
