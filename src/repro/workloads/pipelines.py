"""Input pipelines of the two case studies (the paper's capture functions)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.tfmini import AUTOTUNE, Dataset, io_ops


def imagenet_map_fn(runtime, path: str):
    """ImageNet capture function: read, decode JPEG, resize to 227x227."""
    data = yield from io_ops.read_file(runtime, path)
    image = yield from io_ops.decode_jpeg(runtime, data)
    image = yield from io_ops.resize_image(runtime, image, (227, 227))
    return image


def malware_map_fn(runtime, path: str):
    """Malware capture function: read bytecode and decode it as an image."""
    data = yield from io_ops.read_file(runtime, path)
    image = yield from io_ops.decode_raw(runtime, data)
    image = yield from io_ops.cast(runtime, image)
    return image


def build_training_pipeline(paths: Sequence[str], map_fn, batch_size: int,
                            num_parallel_calls: Optional[int] = 1,
                            prefetch: int = 10,
                            shuffle_buffer: Optional[int] = None,
                            seed: Optional[int] = None) -> Dataset:
    """The tf.data pipeline shape used throughout the paper.

    ``list -> (shuffle) -> map(capture_fn, num_parallel_calls) -> batch ->
    prefetch``.
    """
    dataset = Dataset.from_list(list(paths))
    if shuffle_buffer:
        dataset = dataset.shuffle(shuffle_buffer, seed=seed)
    dataset = dataset.map(map_fn, num_parallel_calls=num_parallel_calls)
    dataset = dataset.batch(batch_size)
    if prefetch:
        dataset = dataset.prefetch(prefetch)
    return dataset


def build_imagenet_pipeline(paths: Sequence[str], batch_size: int = 256,
                            num_parallel_calls: Optional[int] = 1,
                            prefetch: int = 10) -> Dataset:
    """The ImageNet classification input pipeline (Section V-A)."""
    return build_training_pipeline(paths, imagenet_map_fn, batch_size,
                                   num_parallel_calls, prefetch)


def build_malware_pipeline(paths: Sequence[str], batch_size: int = 32,
                           num_parallel_calls: Optional[int] = 1,
                           prefetch: int = 10) -> Dataset:
    """The malware detection input pipeline (Section V-B)."""
    return build_training_pipeline(paths, malware_map_fn, batch_size,
                                   num_parallel_calls, prefetch)
