"""Experiment runners: the case studies and evaluation runs of the paper.

Every function builds a fresh platform, lays out the synthetic dataset,
honours the paper's measurement protocol (drop caches, single epoch, dstat
in the background), runs the workload and returns a structured result that
the benchmark harnesses and examples turn into the tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim import Environment
from repro.storage import StagingManager, StagingResult
from repro.tfmini.keras import AlexNet, MalwareCNN, ModelCheckpoint, TensorBoard
from repro.tools.dstat import DstatMonitor, DstatSeries
from repro.tools.stream import StreamBenchmark, StreamResult
from repro.core import StagingAdvisor, TfDarshanOptions, enable, last_profile
from repro.core.analysis import IOProfile
from repro.workloads.datasets import (
    SyntheticDataset,
    build_imagenet_dataset,
    build_malware_dataset,
)
from repro.workloads.pipelines import (
    build_imagenet_pipeline,
    build_malware_pipeline,
)
from repro.workloads.platforms import Platform, greendog, kebnekaise

MIB = 1 << 20


@dataclass
class TrainingRunResult:
    """Outcome of one training run (one configuration of a case study)."""

    case: str
    platform: str
    steps: int
    batch_size: int
    threads: int
    fit_time: float
    end_of_fit_time: float
    bytes_read: int
    io_profile: Optional[IOProfile]
    dstat: DstatSeries
    staging: Optional[StagingResult] = None
    checkpoint_fwrites: int = 0
    stdio_writes: int = 0
    #: Fraction of step time spent waiting for input (TensorFlow analysis).
    input_percent: float = 0.0
    config: Dict[str, object] = field(default_factory=dict)

    @property
    def ingestion_bandwidth(self) -> float:
        """Bytes read from storage per second of training (epoch bandwidth)."""
        return self.bytes_read / self.fit_time if self.fit_time > 0 else 0.0

    @property
    def posix_bandwidth(self) -> float:
        """The bandwidth tf-Darshan reports for the profiled window."""
        if self.io_profile is not None:
            return self.io_profile.posix_read_bandwidth
        return self.ingestion_bandwidth


def _profiling_callbacks(runtime, profile: str, steps: int,
                         logdir: Optional[str],
                         tf_darshan_options: Optional[TfDarshanOptions]):
    """Build the TensorBoard callback for the requested profiling mode."""
    callbacks: List = []
    if profile == "none":
        return callbacks
    if profile not in ("epoch", "tf-only"):
        raise ValueError("profile must be 'none', 'epoch' or 'tf-only'")
    if profile == "epoch":
        enable(runtime, tf_darshan_options or TfDarshanOptions())
    callbacks.append(TensorBoard(log_dir=logdir, profile_batch=(1, steps)))
    return callbacks


def _run_training(platform: Platform, case: str, dataset_paths: Sequence[str],
                  model, pipeline, steps: int, batch_size: int, threads: int,
                  profile: str, logdir: Optional[str],
                  tf_darshan_options: Optional[TfDarshanOptions],
                  checkpoint_every: Optional[int],
                  staging: Optional[StagingResult],
                  extra_config: Optional[dict] = None) -> TrainingRunResult:
    runtime = platform.runtime
    env = platform.env
    callbacks = _profiling_callbacks(runtime, profile, steps, logdir,
                                     tf_darshan_options)
    checkpoint_callback = None
    if checkpoint_every:
        checkpoint_callback = ModelCheckpoint(
            filepath=f"{platform.data_root}/checkpoints/ckpt-{{step}}",
            save_freq=checkpoint_every)
        callbacks.append(checkpoint_callback)

    monitor = DstatMonitor(env, platform.devices())
    platform.drop_caches()
    monitor.start()
    read_before = sum(d.metrics.bytes_read for d in platform.devices())
    fit_start = env.now
    fit_process = env.process(model.fit(runtime, pipeline, steps_per_epoch=steps,
                                        callbacks=callbacks))
    env.run(until=fit_process)
    fit_end = env.now
    monitor.stop()
    read_after = sum(d.metrics.bytes_read for d in platform.devices())

    checkpoint_fwrites = 0
    if checkpoint_callback is not None:
        checkpoint_fwrites = sum(info.fwrite_calls
                                 for info in checkpoint_callback.saves)
    stdio_writes = 0
    attachment = getattr(runtime, "_tf_darshan_attachment", None)
    if attachment is not None and attachment.stdio_module is not None:
        stdio_writes = attachment.stdio_module.total_counter("STDIO_WRITES")
    analysis = runtime.input_pipeline_analysis()

    return TrainingRunResult(
        case=case,
        platform=platform.name,
        steps=len(runtime.step_stats),
        batch_size=batch_size,
        threads=threads,
        fit_time=fit_end - fit_start,
        end_of_fit_time=fit_end,
        bytes_read=int(read_after - read_before),
        io_profile=last_profile(runtime),
        dstat=monitor.series(),
        staging=staging,
        checkpoint_fwrites=checkpoint_fwrites,
        stdio_writes=stdio_writes,
        input_percent=analysis.input_percent,
        config=dict(extra_config or {}),
    )


# ---------------------------------------------------------------------------
# Case study runners
# ---------------------------------------------------------------------------

def run_imagenet_case(
    scale: float = 0.05,
    steps: Optional[int] = None,
    batch_size: int = 256,
    threads: int = 1,
    profile: str = "epoch",
    logdir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    seed: Optional[int] = None,
    tf_darshan_options: Optional[TfDarshanOptions] = None,
    platform: Optional[Platform] = None,
) -> TrainingRunResult:
    """ImageNet classification on the Kebnekaise/Lustre platform (Sec. V-A)."""
    platform = platform or kebnekaise()
    dataset = build_imagenet_dataset(platform.os.vfs,
                                     root=f"{platform.data_root}/imagenet",
                                     scale=scale, seed=seed)
    if steps is None:
        steps = max(1, dataset.file_count // batch_size)
    paths = dataset.paths[: steps * batch_size]
    pipeline = build_imagenet_pipeline(paths, batch_size=batch_size,
                                       num_parallel_calls=threads, prefetch=10)
    model = AlexNet()
    model.compile(optimizer="sgd", learning_rate=0.01, momentum=0.0)
    return _run_training(
        platform, "imagenet", paths, model, pipeline, steps, batch_size,
        threads, profile, logdir, tf_darshan_options, checkpoint_every, None,
        extra_config={"scale": scale, "dataset_files": dataset.file_count,
                      "dataset_bytes": dataset.total_bytes})


def run_malware_case(
    scale: float = 0.2,
    steps: Optional[int] = None,
    batch_size: int = 32,
    threads: int = 1,
    profile: str = "epoch",
    staging_threshold: Optional[int] = None,
    logdir: Optional[str] = None,
    seed: Optional[int] = None,
    tf_darshan_options: Optional[TfDarshanOptions] = None,
    platform: Optional[Platform] = None,
) -> TrainingRunResult:
    """Malware detection on the Greendog platform (Sec. V-B).

    ``staging_threshold`` enables the Fig. 11b optimization: every dataset
    file smaller than the threshold is staged onto the Optane tier before
    training (the staging copy itself is simulated and excluded from the
    training time, as in the paper where files were moved beforehand).
    """
    platform = platform or greendog()
    dataset = build_malware_dataset(platform.os.vfs,
                                    root=f"{platform.data_root}/malware",
                                    scale=scale, seed=seed)
    if steps is None:
        steps = max(1, dataset.file_count // batch_size)
    paths = dataset.paths[: steps * batch_size]

    staging_result = None
    if staging_threshold:
        advisor = StagingAdvisor()
        sizes = {path: size for path, size in zip(dataset.paths, dataset.sizes)}
        recommendation = advisor.recommend(sizes, threshold_bytes=staging_threshold)
        manager = StagingManager(platform.os.vfs.mount_table)
        to_stage = [(path, platform.os.vfs.lookup(path).key,
                     platform.os.vfs.lookup(path).size)
                    for path in recommendation.files]
        staging_proc = platform.env.process(
            manager.stage(platform.env, to_stage, platform.fast_tier))
        staging_result = platform.env.run(until=staging_proc)

    pipeline = build_malware_pipeline(paths, batch_size=batch_size,
                                      num_parallel_calls=threads, prefetch=10)
    model = MalwareCNN()
    model.compile(optimizer="sgd", learning_rate=0.01, momentum=0.0)
    return _run_training(
        platform, "malware", paths, model, pipeline, steps, batch_size,
        threads, profile, logdir, tf_darshan_options, None, staging_result,
        extra_config={"scale": scale, "dataset_files": dataset.file_count,
                      "dataset_bytes": dataset.total_bytes,
                      "staging_threshold": staging_threshold})


# ---------------------------------------------------------------------------
# STREAM validation and overhead runs
# ---------------------------------------------------------------------------

def run_stream_validation(
    case: str = "imagenet",
    steps: int = 100,
    batch_size: int = 128,
    threads: int = 16,
    prefetch: int = 10,
    profile_every_steps: int = 5,
    profiler: str = "tfdarshan",
    scale: float = 0.1,
    seed: Optional[int] = None,
) -> StreamResult:
    """The STREAM tool-validation runs of Fig. 3 / Fig. 4 (on Greendog)."""
    platform = greendog()
    if case == "imagenet":
        dataset = build_imagenet_dataset(platform.os.vfs,
                                         root="/data/imagenet", scale=scale,
                                         seed=seed)
    elif case == "malware":
        dataset = build_malware_dataset(platform.os.vfs,
                                        root="/data/malware", scale=scale,
                                        seed=seed)
    else:
        raise ValueError("case must be 'imagenet' or 'malware'")
    needed = steps * batch_size
    paths = dataset.paths
    if len(paths) < needed:
        # Reuse paths round-robin if the scaled dataset is smaller than the
        # requested number of samples (page cache is dropped only once, so
        # repeated files hit DRAM — avoided by default scales in benches).
        paths = [paths[i % len(paths)] for i in range(needed)]
    platform.drop_caches()
    bench = StreamBenchmark(platform.runtime, paths, batch_size=batch_size,
                            num_parallel_calls=threads, prefetch=prefetch,
                            profile_every_steps=profile_every_steps,
                            profiler=profiler)
    proc = platform.env.process(bench.run(steps))
    result = platform.env.run(until=proc)
    return result


def run_overhead_case(
    case: str,
    profiler: str,
    steps: int = 10,
    batch_size: int = 128,
    scale: float = 0.02,
    logdir: Optional[str] = None,
    seed: Optional[int] = None,
) -> float:
    """One bar of Fig. 5: elapsed time of a short run under a profiler mode.

    ``case`` is one of ``imagenet``, ``malware``, ``stream_imagenet``,
    ``stream_malware``; ``profiler`` is ``none``, ``tf`` or ``tfdarshan``.
    Returns the elapsed simulated time (model fitting / streaming only).
    """
    if profiler not in ("none", "tf", "tfdarshan"):
        raise ValueError("profiler must be 'none', 'tf' or 'tfdarshan'")

    if case in ("imagenet", "malware"):
        profile = {"none": "none", "tf": "tf-only", "tfdarshan": "epoch"}[profiler]
        options = TfDarshanOptions(export_mode="full") if profiler == "tfdarshan" else None
        if case == "imagenet":
            result = run_imagenet_case(scale=scale, steps=steps,
                                       batch_size=batch_size, threads=2,
                                       profile=profile, logdir=logdir,
                                       seed=seed, tf_darshan_options=options)
        else:
            result = run_malware_case(scale=max(scale, 0.12), steps=steps,
                                      batch_size=batch_size, threads=1,
                                      profile=profile, logdir=logdir,
                                      seed=seed, tf_darshan_options=options)
        return result.fit_time

    stream_case = case.replace("stream_", "")
    stream_profiler = {"none": "none", "tf": "tf", "tfdarshan": "tfdarshan"}[profiler]
    result = run_stream_validation(case=stream_case, steps=steps,
                                   batch_size=batch_size, threads=16,
                                   profiler=stream_profiler,
                                   scale=max(scale, 0.05), seed=seed)
    return result.elapsed


def run_checkpoint_case(
    steps: int = 10,
    batch_size: int = 64,
    scale: float = 0.01,
    checkpoint_every: int = 1,
    seed: Optional[int] = None,
) -> TrainingRunResult:
    """The checkpointing illustration of Fig. 6 (STDIO activity)."""
    return run_imagenet_case(scale=scale, steps=steps, batch_size=batch_size,
                             threads=2, profile="epoch",
                             checkpoint_every=checkpoint_every, seed=seed)


# ---------------------------------------------------------------------------
# Platform-parameter sweeps
# ---------------------------------------------------------------------------

def run_platform_case(
    n_osts: int = 8,
    page_cache_gib: float = 1.0,
    bandwidth_scale: float = 1.0,
    files: int = 12,
    file_kib: int = 16384,
    readers: int = 6,
    read_kib: int = 1024,
    stripe_count: int = 4,
    seed: Optional[int] = None,
) -> Dict[str, float]:
    """One point of the platform-parameter grid (ROADMAP "larger grids").

    Builds a Kebnekaise-style Lustre node whose three capacity knobs are
    swept rather than fixed — OST count, page-cache size, and device/OST
    bandwidth (``bandwidth_scale`` multiplies the datasheet OST rates) —
    lays out a small synthetic corpus, and drives two full read passes
    with ``readers`` concurrent reader processes through the POSIX/VFS/
    page-cache/Lustre stack.  The cold pass measures the storage floor;
    the warm pass isolates the page-cache effect (a cache smaller than the
    corpus must re-fetch evicted prefixes, a larger one serves DRAM).

    The default corpus is few-but-large files: with many small files the
    client's serialized MDS stream dominates (the Fig. 7 regime, covered
    by the ``imagenet`` case) and would mask the OST/bandwidth axes this
    sweep exists to expose.  Deliberately milliseconds-scale, so
    100+-point grids are cheap enough to farm out across a worker fleet
    and still complete in seconds.
    """
    from repro.posix import SimulatedOS
    from repro.sim.rng import make_rng
    from repro.storage import PageCache
    from repro.storage.device import StreamingDevice
    from repro.storage.lustre import LustreFilesystem

    if n_osts < 1 or files < 1 or readers < 1:
        raise ValueError("n_osts, files and readers must all be >= 1")
    env = Environment()
    page_cache = PageCache(capacity_bytes=max(1, int(page_cache_gib * (1 << 30))))
    os_image = SimulatedOS(env, page_cache=page_cache)
    osts = [StreamingDevice(env,
                            name=f"ost{i}",
                            read_bandwidth=2.0e9 * bandwidth_scale,
                            write_bandwidth=1.5e9 * bandwidth_scale,
                            latency=0.6e-3,
                            per_stream_bandwidth=1.2e9 * bandwidth_scale,
                            queue_depth=64)
            for i in range(int(n_osts))]
    lustre = LustreFilesystem(env, osts=osts, name="lustre",
                              stripe_size=1 * MIB,
                              stripe_count=min(int(stripe_count), len(osts)),
                              network_bandwidth=12.0e9)
    os_image.mount("/lustre", lustre)

    rng = make_rng(seed, "platform")
    sizes = [int(max(1, s)) for s in
             rng.uniform(0.5, 1.5, size=int(files)) * int(file_kib) * 1024]
    paths = []
    for i, size in enumerate(sizes):
        path = f"/lustre/grid/file{i:05d}.bin"
        os_image.vfs.create_file(path, size=size)
        paths.append(path)

    posix = os_image.posix
    read_size = int(read_kib) * 1024

    def reader(assigned):
        for path in assigned:
            fd = yield from posix.open(path)
            while True:
                data = yield from posix.read(fd, read_size)
                if data.nbytes == 0:
                    break
            yield from posix.close(fd)

    def run_pass() -> float:
        start = env.now
        procs = [env.process(reader(paths[i::int(readers)]))
                 for i in range(int(readers))]
        env.run(until=env.all_of(procs))
        return env.now - start

    os_image.drop_caches()
    cold_time = run_pass()
    warm_time = run_pass()
    total = float(sum(sizes))
    return {
        "files": float(len(paths)),
        "bytes": total,
        "cold_time": cold_time,
        "warm_time": warm_time,
        "cold_bandwidth": total / cold_time if cold_time > 0 else 0.0,
        "warm_bandwidth": total / warm_time if warm_time > 0 else 0.0,
        "warm_speedup": cold_time / warm_time if warm_time > 0 else 0.0,
        "mds_requests": float(lustre.mds_requests),
        "cache_resident_bytes": float(page_cache.used_bytes),
        "cache_evictions": float(page_cache.evictions),
    }


# ---------------------------------------------------------------------------
# Campaign case adapters
# ---------------------------------------------------------------------------
#
# The runners above launch one configuration at a time; the campaign layer
# (``repro.campaign``) sweeps whole grids of them.  Each adapter binds a
# case name to a runner and flattens its rich result object into the
# JSON-able metrics dict that executors ship across process boundaries and
# the result cache persists.

from repro.campaign.jobs import register_case  # noqa: E402


def _scalar(value):
    """Coerce numpy scalars to plain Python for JSON round-tripping."""
    if hasattr(value, "item"):
        return value.item()
    return value


def training_metrics(result: TrainingRunResult) -> Dict[str, object]:
    """Flatten a :class:`TrainingRunResult` into campaign metrics."""
    metrics: Dict[str, object] = {
        "steps": int(result.steps),
        "fit_time": float(result.fit_time),
        "end_of_fit_time": float(result.end_of_fit_time),
        "bytes_read": int(result.bytes_read),
        "ingestion_bandwidth": float(result.ingestion_bandwidth),
        "posix_bandwidth": float(result.posix_bandwidth),
        "input_percent": float(result.input_percent),
        "checkpoint_fwrites": int(result.checkpoint_fwrites),
        "stdio_writes": int(result.stdio_writes),
    }
    profile = result.io_profile
    if profile is not None:
        metrics.update({
            "posix_opens": int(profile.posix_opens),
            "posix_reads": int(profile.posix_reads),
            "posix_bytes_read": int(profile.posix_bytes_read),
            "zero_byte_reads": int(profile.zero_byte_reads),
            "read_size_histogram": {key: int(count) for key, count
                                    in profile.read_size_histogram.items()},
            "random_fraction": float(profile.access_pattern.random_fraction),
            "sequential_fraction":
                float(profile.access_pattern.sequential_fraction),
        })
    if result.staging is not None:
        metrics.update({
            "staged_bytes": int(result.staging.staged_bytes),
            "staged_files": int(result.staging.file_count),
            "staging_elapsed": float(result.staging.elapsed),
        })
    for key in ("dataset_files", "dataset_bytes", "staging_threshold", "scale"):
        if key in result.config and result.config[key] is not None:
            metrics[key] = _scalar(result.config[key])
    return metrics


@register_case("imagenet")
def _imagenet_case(params: Dict[str, object], seed: int) -> Dict[str, object]:
    """ImageNet training on Kebnekaise (paper Sec. V-A) as a campaign case."""
    return training_metrics(run_imagenet_case(seed=seed, **params))


@register_case("malware")
def _malware_case(params: Dict[str, object], seed: int) -> Dict[str, object]:
    """Malware training on Greendog (paper Sec. V-B) as a campaign case."""
    return training_metrics(run_malware_case(seed=seed, **params))


@register_case("stream")
def _stream_case(params: Dict[str, object], seed: int) -> Dict[str, object]:
    """STREAM tool-validation run (Fig. 3/4) as a campaign case."""
    result = run_stream_validation(seed=seed, **params)
    return {
        "steps": int(result.steps),
        "elapsed": float(result.elapsed),
        "total_bytes": int(result.total_bytes),
        "overall_bandwidth": float(result.overall_bandwidth),
        "tfdarshan_bandwidth": float(result.mean_tfdarshan_bandwidth),
        "windows": len(result.windows),
    }


@register_case("overhead")
def _overhead_case(params: Dict[str, object], seed: int) -> Dict[str, object]:
    """One bar of Fig. 5 (elapsed time under a profiler mode)."""
    return {"elapsed": float(run_overhead_case(seed=seed, **params))}


@register_case("platform")
def _platform_case(params: Dict[str, object], seed: int) -> Dict[str, object]:
    """One platform-parameter grid point (OSTs x page cache x bandwidth)."""
    return run_platform_case(seed=seed, **params)


# ---------------------------------------------------------------------------
# Canonical sweep specs for the paper's grids
# ---------------------------------------------------------------------------

def imagenet_threads_spec(threads: Sequence[int] = (1, 28),
                          scale: float = 0.05, batch_size: int = 256,
                          seed: int = 1) -> "SweepSpec":
    """The Fig. 7 grid: the ImageNet profile swept over thread counts."""
    from repro.campaign import SweepSpec

    return SweepSpec(
        name="fig7-imagenet-threads",
        case="imagenet",
        base={"scale": scale, "batch_size": batch_size, "profile": "epoch"},
        grid={"threads": list(threads)},
        seed=seed,
        seed_mode="shared",
    )


def staging_threshold_spec(thresholds: Sequence[int],
                           scale: float = 0.05, batch_size: int = 32,
                           seed: int = 1) -> "SweepSpec":
    """The ablation-A3 grid: malware runs swept over staging thresholds.

    ``0`` means "no staging" (the naive baseline) — the runner treats a
    falsy threshold as disabled, so the whole ablation is one grid.
    """
    from repro.campaign import SweepSpec

    return SweepSpec(
        name="ablation-staging-threshold",
        case="malware",
        base={"scale": scale, "batch_size": batch_size, "threads": 1,
              "profile": "epoch"},
        grid={"staging_threshold": list(thresholds)},
        seed=seed,
        seed_mode="shared",
    )


def overhead_grid_spec(cases: Sequence[str], profilers: Sequence[str],
                       steps: int = 10, batch_size: int = 128,
                       seed: int = 1) -> "SweepSpec":
    """The Fig. 5 grid: every case × profiler mode, including baselines."""
    from repro.campaign import SweepSpec

    return SweepSpec(
        name="fig5-overhead",
        case="overhead",
        base={"steps": steps, "batch_size": batch_size},
        grid={"case": list(cases), "profiler": list(profilers)},
        seed=seed,
        seed_mode="shared",
    )


def platform_grid_spec(osts: Sequence[int] = (1, 2, 4, 8),
                       page_cache_gib: Sequence[float] = (0.03125, 0.25, 8.0),
                       bandwidth_scales: Sequence[float] = (0.5, 1.0, 2.0),
                       files: int = 12, file_kib: int = 16384,
                       readers: int = 6,
                       seed: int = 1) -> "SweepSpec":
    """The ROADMAP's platform-parameter grid: OST counts × page-cache sizes
    × device bandwidths.  Default 36 points; widen any axis for the
    100+-job fleet demonstrations (``benchmarks/test_platform_grid.py``).

    ``seed_mode="shared"`` keeps the corpus identical across grid points,
    so every delta is attributable to the platform parameter — the same
    fixed-workload protocol the paper's differential measurements use.
    """
    from repro.campaign import SweepSpec

    return SweepSpec(
        name="platform-grid",
        case="platform",
        base={"files": files, "file_kib": file_kib, "readers": readers},
        grid={"n_osts": [int(n) for n in osts],
              "page_cache_gib": [float(g) for g in page_cache_gib],
              "bandwidth_scale": [float(s) for s in bandwidth_scales]},
        seed=seed,
        seed_mode="shared",
    )
