"""Synthetic dataset generators matching the paper's corpora (Table II).

The two corpora cannot be redistributed, so the generators reproduce the
*statistics* the paper's analyses depend on:

* **ImageNet** (Kebnekaise case): ~128 000 JPEG files, ~11.6 GB total,
  median size ~88 KB — a large number of small files.
* **Kaggle BIG-2015 malware** (Greendog case): 10 868 bytecode files,
  ~48 GB total, median ~4 MB, with roughly 40 % of the files below 2 MB
  accounting for only ~8 % of the bytes (the property the staging
  optimization exploits, Section V-B).

A ``scale`` parameter shrinks the file count (keeping the size distribution)
so the benchmark harnesses can run in seconds; EXPERIMENTS.md records which
scale each reported number was produced at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.sim.rng import make_rng

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30


@dataclass
class SyntheticDataset:
    """A generated corpus registered in the simulated VFS."""

    name: str
    root: str
    paths: List[str]
    sizes: List[int]
    scale: float = 1.0

    @property
    def file_count(self) -> int:
        return len(self.paths)

    @property
    def total_bytes(self) -> int:
        return int(sum(self.sizes))

    @property
    def median_bytes(self) -> float:
        return float(np.median(self.sizes)) if self.sizes else 0.0

    def files_below(self, threshold: int) -> List[str]:
        return [p for p, s in zip(self.paths, self.sizes) if s < threshold]

    def bytes_below(self, threshold: int) -> int:
        return int(sum(s for s in self.sizes if s < threshold))

    def size_of(self, path: str) -> int:
        return self.sizes[self.paths.index(path)]

    def summary_row(self) -> List[str]:
        """The Table II style row for this dataset."""
        return [
            self.name,
            str(self.file_count),
            f"{self.total_bytes / GIB:.1f} GB",
            f"{self.median_bytes / KIB:.0f} KB" if self.median_bytes < MIB
            else f"{self.median_bytes / MIB:.1f} MB",
        ]


def _register(vfs, root: str, prefix: str, sizes: np.ndarray, extension: str
              ) -> SyntheticDataset:
    paths = []
    int_sizes = [int(max(1, s)) for s in sizes]
    for i, size in enumerate(int_sizes):
        subdir = f"{root}/{prefix}{i // 1000:04d}"
        path = f"{subdir}/{prefix}{i:07d}{extension}"
        vfs.create_file(path, size=size)
        paths.append(path)
    return SyntheticDataset(name=prefix.rstrip("_"), root=root, paths=paths,
                            sizes=int_sizes)


def build_imagenet_dataset(vfs, root: str = "/data/imagenet",
                           scale: float = 1.0,
                           seed: Optional[int] = None) -> SyntheticDataset:
    """Generate the ImageNet-like corpus (many small JPEG files)."""
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    n_files = max(1, int(round(128_000 * scale)))
    target_total = 11.6e9 * scale
    rng = make_rng(seed, "imagenet-sizes")
    median = 88 * KIB
    sigma = 0.40
    sizes = rng.lognormal(mean=np.log(median), sigma=sigma, size=n_files)
    sizes = np.clip(sizes, 4 * KIB, 1 * MIB)
    # Rescale so the total matches the corpus size at this scale.
    sizes *= target_total / sizes.sum()
    dataset = _register(vfs, root, "imagenet_", sizes, ".jpg")
    dataset.name = "imagenet"
    dataset.scale = scale
    return dataset


def build_malware_dataset(vfs, root: str = "/data/malware",
                          scale: float = 1.0,
                          seed: Optional[int] = None) -> SyntheticDataset:
    """Generate the malware-bytecode-like corpus (fewer, larger files)."""
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    n_small = max(1, int(round(4_420 * scale)))
    n_large = max(1, int(round(6_448 * scale)))
    rng = make_rng(seed, "malware-sizes")

    # Small component: below 2 MB, ~3.7 GB in total at full scale.
    small = rng.lognormal(mean=np.log(0.75 * MIB), sigma=0.5, size=n_small)
    small = np.clip(small, 16 * KIB, 1.98 * MIB)
    small *= (3.7e9 * scale) / small.sum()
    small = np.clip(small, 16 * KIB, 1.99 * MIB)

    # Large component: 2 MB and above, ~44.3 GB in total at full scale.
    large = rng.lognormal(mean=np.log(6.3 * MIB), sigma=0.45, size=n_large)
    large = np.clip(large, 2.0 * MIB, 64 * MIB)
    large *= (44.3e9 * scale) / large.sum()
    large = np.clip(large, 2.0 * MIB, 80 * MIB)

    sizes = np.concatenate([small, large])
    rng.shuffle(sizes)
    dataset = _register(vfs, root, "malware_", sizes, ".bytes")
    dataset.name = "malware"
    dataset.scale = scale
    return dataset


def table2_rows(datasets: List[SyntheticDataset]) -> List[List[str]]:
    """Rows of the Table II reproduction (dataset characteristics)."""
    return [d.summary_row() for d in datasets]
