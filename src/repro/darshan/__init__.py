"""Reimplementation of the Darshan I/O characterization runtime."""

from repro.darshan.counters import (
    POSIX_COUNTERS,
    POSIX_F_COUNTERS,
    SIZE_BUCKET_LABELS,
    STDIO_COUNTERS,
    STDIO_F_COUNTERS,
    read_size_histogram,
    size_bucket,
    size_counter_name,
)
from repro.darshan.dxt import DxtRecord, DxtSegment
from repro.darshan.extraction import (
    EXTRACTABLE_MODULES,
    RuntimeInfo,
    get_dxt_records,
    get_module_records,
    get_runtime_info,
    lookup_record_name,
    resolve_names,
)
from repro.darshan.heatmap import Heatmap, build_heatmap
from repro.darshan.log import DarshanLog
from repro.darshan.posix_module import PosixModule
from repro.darshan.preload import PreloadedDarshan
from repro.darshan.records import CounterRecord, NameRecord, darshan_record_id
from repro.darshan.runtime import DARSHAN_VERSION, DarshanConfig, DarshanCore
from repro.darshan.stdio_module import StdioModule

__all__ = [
    "CounterRecord",
    "DARSHAN_VERSION",
    "DarshanConfig",
    "DarshanCore",
    "DarshanLog",
    "DxtRecord",
    "DxtSegment",
    "EXTRACTABLE_MODULES",
    "Heatmap",
    "NameRecord",
    "POSIX_COUNTERS",
    "POSIX_F_COUNTERS",
    "PosixModule",
    "PreloadedDarshan",
    "RuntimeInfo",
    "SIZE_BUCKET_LABELS",
    "STDIO_COUNTERS",
    "STDIO_F_COUNTERS",
    "StdioModule",
    "build_heatmap",
    "darshan_record_id",
    "get_dxt_records",
    "get_module_records",
    "get_runtime_info",
    "lookup_record_name",
    "read_size_histogram",
    "resolve_names",
    "size_bucket",
    "size_counter_name",
]
