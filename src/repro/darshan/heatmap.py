"""Darshan heat-map summaries: time-binned I/O intensity.

Recent Darshan versions ship a ``HEATMAP`` module that histograms transferred
bytes into fixed time bins; darshan-util renders it as the familiar
runtime-vs-rank heat map.  The reproduction derives the same view from DXT
segments (per file rather than per rank, since the paper's workloads are
single-process), which gives tf-Darshan's reports a compact time-resolved
picture without shipping every segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.darshan.dxt import DxtRecord, DxtSegment


@dataclass
class Heatmap:
    """Bytes moved per (file, time-bin)."""

    bin_edges: np.ndarray
    read_bins: Dict[int, np.ndarray] = field(default_factory=dict)
    write_bins: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_bins(self) -> int:
        return max(0, len(self.bin_edges) - 1)

    def total_read_series(self) -> np.ndarray:
        """Bytes read per bin summed over every file."""
        if not self.read_bins:
            return np.zeros(self.n_bins)
        return np.sum(list(self.read_bins.values()), axis=0)

    def total_write_series(self) -> np.ndarray:
        """Bytes written per bin summed over every file."""
        if not self.write_bins:
            return np.zeros(self.n_bins)
        return np.sum(list(self.write_bins.values()), axis=0)

    def busiest_bin(self) -> int:
        """Index of the time bin with the most combined traffic."""
        combined = self.total_read_series() + self.total_write_series()
        return int(np.argmax(combined)) if len(combined) else 0

    def render(self, resolve_name=None, max_files: int = 10,
               width: int = 40) -> str:
        """ASCII heat map (one row per file, darkest = most bytes)."""
        shades = " .:-=+*#%@"
        rows: List[str] = ["I/O heat map (reads)"]
        totals = {rid: bins.sum() for rid, bins in self.read_bins.items()}
        top = sorted(totals, key=totals.get, reverse=True)[:max_files]
        peak = max((self.read_bins[rid].max() for rid in top), default=1.0)
        for rid in top:
            bins = self.read_bins[rid]
            # Downsample to the requested width.
            idx = np.linspace(0, len(bins), width + 1).astype(int)
            cells = [bins[a:b].sum() for a, b in zip(idx[:-1], idx[1:])]
            cell_peak = max(peak / max(1, len(bins) // width), 1.0)
            line = "".join(
                shades[min(len(shades) - 1,
                           int(len(shades) * min(1.0, c / cell_peak)))]
                for c in cells)
            name = resolve_name(rid) if resolve_name else f"{rid:#x}"
            rows.append(f"{(name or '')[-32:]:<32} |{line}|")
        return "\n".join(rows)


def build_heatmap(dxt_records: Iterable[DxtRecord],
                  window_start: float, window_end: float,
                  bin_seconds: float = 1.0) -> Heatmap:
    """Bin every DXT segment of the window into ``bin_seconds`` buckets.

    A segment's bytes are spread uniformly over its duration, so a long read
    contributes to every bin it overlaps (the same convention the dstat
    monitor uses, which makes the two views directly comparable).
    """
    if window_end <= window_start:
        raise ValueError("window_end must be after window_start")
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    edges = np.arange(window_start, window_end + bin_seconds, bin_seconds)
    if edges[-1] < window_end:
        edges = np.append(edges, window_end)
    heatmap = Heatmap(bin_edges=edges)
    n_bins = heatmap.n_bins

    def accumulate(target: Dict[int, np.ndarray], record_id: int,
                   segment: DxtSegment) -> None:
        bins = target.setdefault(record_id, np.zeros(n_bins))
        start = max(segment.start_time, window_start)
        end = min(segment.end_time, window_end)
        if end <= start:
            # Instantaneous (or out-of-window) segment: drop into one bin.
            if window_start <= segment.start_time < window_end and segment.length:
                index = min(n_bins - 1,
                            int((segment.start_time - window_start) / bin_seconds))
                bins[index] += segment.length
            return
        duration = segment.end_time - segment.start_time
        rate = segment.length / duration if duration > 0 else 0.0
        first = int((start - window_start) / bin_seconds)
        last = min(n_bins - 1, int((end - window_start) / bin_seconds))
        for index in range(first, last + 1):
            bin_start = edges[index]
            bin_end = edges[index + 1]
            overlap = max(0.0, min(end, bin_end) - max(start, bin_start))
            bins[index] += rate * overlap

    for record in dxt_records:
        for segment in record.read_segments:
            accumulate(heatmap.read_bins, record.record_id, segment)
        for segment in record.write_segments:
            accumulate(heatmap.write_bins, record.record_id, segment)
    return heatmap
