"""Darshan counter definitions.

The counter names and their semantics follow Darshan 3.2.0's POSIX and
STDIO modules (the version the paper builds on) so that analyses written
against real Darshan logs — operation counts, sequential/consecutive access
classification, access-size histograms — read identically against this
reimplementation.  Only the counters the paper's analyses touch are
implemented, but those are implemented with Darshan's exact update rules
(see :mod:`repro.darshan.posix_module`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Integer counters of the POSIX module.
POSIX_COUNTERS: Tuple[str, ...] = (
    "POSIX_OPENS",
    "POSIX_FILENOS",
    "POSIX_DUPS",
    "POSIX_READS",
    "POSIX_WRITES",
    "POSIX_SEEKS",
    "POSIX_STATS",
    "POSIX_FSYNCS",
    "POSIX_BYTES_READ",
    "POSIX_BYTES_WRITTEN",
    "POSIX_MAX_BYTE_READ",
    "POSIX_MAX_BYTE_WRITTEN",
    "POSIX_CONSEC_READS",
    "POSIX_CONSEC_WRITES",
    "POSIX_SEQ_READS",
    "POSIX_SEQ_WRITES",
    "POSIX_RW_SWITCHES",
    "POSIX_SIZE_READ_0_100",
    "POSIX_SIZE_READ_100_1K",
    "POSIX_SIZE_READ_1K_10K",
    "POSIX_SIZE_READ_10K_100K",
    "POSIX_SIZE_READ_100K_1M",
    "POSIX_SIZE_READ_1M_4M",
    "POSIX_SIZE_READ_4M_10M",
    "POSIX_SIZE_READ_10M_100M",
    "POSIX_SIZE_READ_100M_1G",
    "POSIX_SIZE_READ_1G_PLUS",
    "POSIX_SIZE_WRITE_0_100",
    "POSIX_SIZE_WRITE_100_1K",
    "POSIX_SIZE_WRITE_1K_10K",
    "POSIX_SIZE_WRITE_10K_100K",
    "POSIX_SIZE_WRITE_100K_1M",
    "POSIX_SIZE_WRITE_1M_4M",
    "POSIX_SIZE_WRITE_4M_10M",
    "POSIX_SIZE_WRITE_10M_100M",
    "POSIX_SIZE_WRITE_100M_1G",
    "POSIX_SIZE_WRITE_1G_PLUS",
    "POSIX_ACCESS1_ACCESS",
    "POSIX_ACCESS2_ACCESS",
    "POSIX_ACCESS3_ACCESS",
    "POSIX_ACCESS4_ACCESS",
    "POSIX_ACCESS1_COUNT",
    "POSIX_ACCESS2_COUNT",
    "POSIX_ACCESS3_COUNT",
    "POSIX_ACCESS4_COUNT",
)

#: Floating-point (time) counters of the POSIX module.
POSIX_F_COUNTERS: Tuple[str, ...] = (
    "POSIX_F_OPEN_START_TIMESTAMP",
    "POSIX_F_READ_START_TIMESTAMP",
    "POSIX_F_WRITE_START_TIMESTAMP",
    "POSIX_F_CLOSE_START_TIMESTAMP",
    "POSIX_F_OPEN_END_TIMESTAMP",
    "POSIX_F_READ_END_TIMESTAMP",
    "POSIX_F_WRITE_END_TIMESTAMP",
    "POSIX_F_CLOSE_END_TIMESTAMP",
    "POSIX_F_READ_TIME",
    "POSIX_F_WRITE_TIME",
    "POSIX_F_META_TIME",
    "POSIX_F_MAX_READ_TIME",
    "POSIX_F_MAX_WRITE_TIME",
)

#: Integer counters of the STDIO module.
STDIO_COUNTERS: Tuple[str, ...] = (
    "STDIO_OPENS",
    "STDIO_FDOPENS",
    "STDIO_READS",
    "STDIO_WRITES",
    "STDIO_SEEKS",
    "STDIO_FLUSHES",
    "STDIO_BYTES_READ",
    "STDIO_BYTES_WRITTEN",
    "STDIO_MAX_BYTE_READ",
    "STDIO_MAX_BYTE_WRITTEN",
)

#: Floating-point (time) counters of the STDIO module.
STDIO_F_COUNTERS: Tuple[str, ...] = (
    "STDIO_F_OPEN_START_TIMESTAMP",
    "STDIO_F_CLOSE_START_TIMESTAMP",
    "STDIO_F_WRITE_START_TIMESTAMP",
    "STDIO_F_READ_START_TIMESTAMP",
    "STDIO_F_OPEN_END_TIMESTAMP",
    "STDIO_F_CLOSE_END_TIMESTAMP",
    "STDIO_F_WRITE_END_TIMESTAMP",
    "STDIO_F_READ_END_TIMESTAMP",
    "STDIO_F_META_TIME",
    "STDIO_F_WRITE_TIME",
    "STDIO_F_READ_TIME",
)

#: Darshan's access-size histogram bucket boundaries (upper bound inclusive).
SIZE_BUCKET_BOUNDS: Tuple[Tuple[str, int], ...] = (
    ("0_100", 100),
    ("100_1K", 1024),
    ("1K_10K", 10 * 1024),
    ("10K_100K", 100 * 1024),
    ("100K_1M", 1024 * 1024),
    ("1M_4M", 4 * 1024 * 1024),
    ("4M_10M", 10 * 1024 * 1024),
    ("10M_100M", 100 * 1024 * 1024),
    ("100M_1G", 1024 * 1024 * 1024),
    ("1G_PLUS", None),
)

#: Human-readable labels of the size buckets, in order (used by reports).
SIZE_BUCKET_LABELS: Tuple[str, ...] = tuple(name for name, _ in SIZE_BUCKET_BOUNDS)


def size_bucket(nbytes: int) -> str:
    """Darshan's access-size bucket label for an access of ``nbytes``."""
    if nbytes < 0:
        raise ValueError("access size must be non-negative")
    for name, bound in SIZE_BUCKET_BOUNDS:
        if bound is None or nbytes <= bound:
            return name
    raise AssertionError("unreachable")  # pragma: no cover


def size_counter_name(module_prefix: str, is_write: bool, nbytes: int) -> str:
    """Full counter name, e.g. ``POSIX_SIZE_READ_100K_1M``."""
    direction = "WRITE" if is_write else "READ"
    return f"{module_prefix}_SIZE_{direction}_{size_bucket(nbytes)}"


def read_size_histogram(counters: Dict[str, int], module_prefix: str = "POSIX",
                        is_write: bool = False) -> Dict[str, int]:
    """Extract the access-size histogram from a counter mapping."""
    direction = "WRITE" if is_write else "READ"
    out = {}
    for label in SIZE_BUCKET_LABELS:
        key = f"{module_prefix}_SIZE_{direction}_{label}"
        if key in counters:
            out[label] = counters[key]
    return out
