"""The Darshan runtime core (``darshan-core``).

The core owns job-level metadata, the shared name-record table mapping
record ids back to file paths, and the registered instrumentation modules.
In the non-MPI Darshan 3.2.0-pre that the paper uses, the core is normally
initialised by the library constructor and writes its log at process exit;
here the same object can also be handed to tf-Darshan's runtime attachment,
which additionally uses the extraction API in
:mod:`repro.darshan.extraction` to read live records.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import Environment
from repro.darshan.records import NameRecord, darshan_record_id

#: Version string reported in log headers, matching the paper's base version.
DARSHAN_VERSION = "3.2.0-pre-repro"


@dataclass
class DarshanConfig:
    """Tunable behaviour of the Darshan runtime.

    The defaults aim at the paper's configuration: DXT enabled, enough module
    memory to track every file of the ImageNet epoch, and per-operation
    instrumentation overhead of the order of a microsecond (Darshan is
    explicitly a low-overhead tool; the expensive part of tf-Darshan is the
    post-profiling analysis, modelled in :mod:`repro.core.costs`).
    """

    #: Record individual I/O segments (DXT modules).
    enable_dxt: bool = True
    #: Maximum counter records kept per module before the log is marked partial.
    max_records_per_module: int = 1 << 20
    #: Maximum DXT segments kept per file record.
    max_dxt_segments_per_record: int = 1 << 16
    #: Simulated CPU time charged per wrapped I/O call (seconds).
    instrumentation_overhead: float = 1.0e-6
    #: Additional cost the first time a new file record is instantiated.
    record_creation_overhead: float = 4.0e-6
    #: Rank recorded in the records (the paper's runs are single-process).
    rank: int = 0
    #: Job identifier written into the log header.
    jobid: int = 4000000


class DarshanCore:
    """Shared state of the Darshan runtime inside one process."""

    def __init__(self, env: Environment, config: Optional[DarshanConfig] = None):
        self.env = env
        self.config = config or DarshanConfig()
        self.enabled = True
        self.start_time = env.now
        self.end_time: Optional[float] = None
        self._name_records: Dict[int, NameRecord] = {}
        self._modules: Dict[str, object] = {}
        self.exe = "python train.py"
        self.metadata: Dict[str, str] = {"lib_ver": DARSHAN_VERSION}

    # -- module registration --------------------------------------------------
    def register_module(self, name: str, module: object) -> None:
        """Register an instrumentation module under ``name``."""
        if name in self._modules:
            raise ValueError(f"module {name!r} already registered")
        self._modules[name] = module

    def get_module(self, name: str):
        """Look up a registered module (None if absent)."""
        return self._modules.get(name)

    @property
    def modules(self) -> Dict[str, object]:
        return dict(self._modules)

    # -- name records --------------------------------------------------------------
    def register_name(self, path: str) -> int:
        """Register a file path and return its Darshan record id."""
        record_id = darshan_record_id(path)
        if record_id not in self._name_records:
            self._name_records[record_id] = NameRecord(record_id, path)
        return record_id

    def lookup_name(self, record_id: int) -> Optional[str]:
        """Resolve a record id back to its path (``None`` if unknown)."""
        rec = self._name_records.get(record_id)
        return rec.name if rec else None

    @property
    def name_records(self) -> Dict[int, NameRecord]:
        return dict(self._name_records)

    # -- lifecycle --------------------------------------------------------------------
    def shutdown(self) -> None:
        """Freeze the runtime (normally called at process exit)."""
        self.enabled = False
        self.end_time = self.env.now
        for module in self._modules.values():
            finalize = getattr(module, "finalize", None)
            if callable(finalize):
                finalize()

    def job_header(self) -> Dict[str, object]:
        """Header fields written into the Darshan log."""
        end = self.end_time if self.end_time is not None else self.env.now
        return {
            "version": DARSHAN_VERSION,
            "jobid": self.config.jobid,
            "uid": 1000,
            "nprocs": 1,
            "start_time": self.start_time,
            "end_time": end,
            "run_time": max(0.0, end - self.start_time),
            "exe": self.exe,
            "metadata": dict(self.metadata),
        }
