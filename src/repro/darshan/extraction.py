"""Data-extraction API — the paper's augmentation of Darshan.

Stock Darshan only materializes its records when the instrumented process
exits, which makes in-situ analysis impossible.  Section III-C of the paper
adds "several data extraction functions in the Darshan shared library that
return Darshan module buffers" plus helpers such as file-name lookup
(resolved through ``dlsym``).  This module is the equivalent surface:
functions that return *copies* of the live module buffers so the caller
(tf-Darshan's wrapper) can snapshot them at profile start/stop and analyse
the difference while the application keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.darshan.dxt import DxtRecord
from repro.darshan.records import CounterRecord
from repro.darshan.runtime import DarshanCore

#: Module names whose records can be extracted.
EXTRACTABLE_MODULES = ("POSIX", "STDIO", "DXT_POSIX", "DXT_STDIO")


@dataclass
class RuntimeInfo:
    """Summary of the live Darshan runtime (``darshan_get_runtime_info``)."""

    enabled: bool
    modules: List[str]
    file_counts: Dict[str, int]
    start_time: float
    version: str

    @property
    def total_files(self) -> int:
        return max(self.file_counts.values()) if self.file_counts else 0


def get_module_records(core: DarshanCore, module_name: str
                       ) -> Dict[int, CounterRecord]:
    """Deep copy of the counter records of a module ("POSIX" or "STDIO")."""
    module = core.get_module(module_name)
    if module is None:
        return {}
    return {rec_id: rec.copy() for rec_id, rec in module.records.items()}


def get_dxt_records(core: DarshanCore, module_name: str = "POSIX"
                    ) -> Dict[int, DxtRecord]:
    """Deep copy of the DXT segment records attached to a counter module."""
    module = core.get_module(module_name)
    if module is None or not getattr(module, "dxt_records", None):
        return {}
    return {rec_id: rec.copy() for rec_id, rec in module.dxt_records.items()}


def lookup_record_name(core: DarshanCore, record_id: int) -> Optional[str]:
    """Resolve a record id to its file path (``darshan_core_lookup_name``)."""
    return core.lookup_name(record_id)

def resolve_names(core: DarshanCore, record_ids) -> Dict[int, Optional[str]]:
    """Resolve many record ids at once."""
    return {rid: core.lookup_name(rid) for rid in record_ids}


def get_runtime_info(core: DarshanCore) -> RuntimeInfo:
    """File counts and module list of the live runtime.

    The paper's discussion section names this as one of the three extra
    functionalities tf-Darshan needs from Darshan.
    """
    file_counts = {}
    for name, module in core.modules.items():
        count = getattr(module, "file_count", None)
        if callable(count):
            file_counts[name] = count()
    return RuntimeInfo(
        enabled=core.enabled,
        modules=sorted(core.modules),
        file_counts=file_counts,
        start_time=core.start_time,
        version=core.metadata.get("lib_ver", "unknown"),
    )
