"""Darshan log serialization and the pydarshan-style reader.

Real Darshan writes a compressed binary log at process exit which is then
analysed post-hoc with ``darshan-util`` / pydarshan.  The reproduction keeps
the same workflow — a compressed, self-describing container with a job
header, name records, per-module counter records and DXT segments — but uses
gzip-compressed JSON as the container format (the substitution is recorded
in DESIGN.md; every analysis in this repository works off the in-memory
structures, the file format only exists so the "post-execution log analysis"
row of Table I can be exercised end to end).
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.darshan.counters import SIZE_BUCKET_LABELS, read_size_histogram
from repro.darshan.dxt import DxtRecord
from repro.darshan.records import CounterRecord
from repro.darshan.runtime import DarshanCore

#: Magic string identifying the log container.
LOG_MAGIC = "DARSHAN-REPRO-LOG"
LOG_FORMAT_VERSION = 1


@dataclass
class DarshanLog:
    """In-memory representation of a Darshan log."""

    header: Dict[str, object]
    name_records: Dict[int, str]
    records: Dict[str, Dict[int, CounterRecord]]
    dxt_records: Dict[str, Dict[int, DxtRecord]] = field(default_factory=dict)
    partial_modules: List[str] = field(default_factory=list)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_core(cls, core: DarshanCore) -> "DarshanLog":
        """Build a log from a live (or shut down) Darshan runtime."""
        records: Dict[str, Dict[int, CounterRecord]] = {}
        dxt_records: Dict[str, Dict[int, DxtRecord]] = {}
        partial: List[str] = []
        for name, module in core.modules.items():
            recs = getattr(module, "records", None)
            if recs is not None:
                records[name] = {rid: rec.copy() for rid, rec in recs.items()}
            dxt = getattr(module, "dxt_records", None)
            if dxt:
                dxt_records[f"DXT_{name}"] = {rid: rec.copy() for rid, rec in dxt.items()}
            if getattr(module, "partial_flag", False):
                partial.append(name)
        return cls(
            header=core.job_header(),
            name_records={rid: nr.name for rid, nr in core.name_records.items()},
            records=records,
            dxt_records=dxt_records,
            partial_modules=partial,
        )

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "magic": LOG_MAGIC,
            "format_version": LOG_FORMAT_VERSION,
            "header": self.header,
            "name_records": {str(k): v for k, v in self.name_records.items()},
            "records": {
                module: {str(rid): rec.as_dict() for rid, rec in recs.items()}
                for module, recs in self.records.items()
            },
            "dxt_records": {
                module: {str(rid): rec.as_dict() for rid, rec in recs.items()}
                for module, recs in self.dxt_records.items()
            },
            "partial_modules": list(self.partial_modules),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DarshanLog":
        if data.get("magic") != LOG_MAGIC:
            raise ValueError("not a darshan-repro log")
        return cls(
            header=dict(data["header"]),
            name_records={int(k): str(v) for k, v in data["name_records"].items()},
            records={
                module: {int(rid): CounterRecord.from_dict(rec)
                         for rid, rec in recs.items()}
                for module, recs in data["records"].items()
            },
            dxt_records={
                module: {int(rid): DxtRecord.from_dict(rec)
                         for rid, rec in recs.items()}
                for module, recs in data.get("dxt_records", {}).items()
            },
            partial_modules=list(data.get("partial_modules", [])),
        )

    def write(self, path: str) -> str:
        """Write the compressed log to ``path`` (host filesystem)."""
        payload = json.dumps(self.to_dict()).encode()
        with gzip.open(path, "wb") as handle:
            handle.write(payload)
        return path

    @classmethod
    def read(cls, path: str) -> "DarshanLog":
        """Read a compressed log from ``path``."""
        with gzip.open(path, "rb") as handle:
            data = json.loads(handle.read().decode())
        return cls.from_dict(data)

    # -- pydarshan-style report helpers -------------------------------------------
    def modules(self) -> List[str]:
        return sorted(self.records)

    def path_of(self, record_id: int) -> Optional[str]:
        return self.name_records.get(record_id)

    def module_totals(self, module: str) -> Dict[str, int]:
        """Sum of every integer counter over all records of a module."""
        totals: Dict[str, int] = {}
        for rec in self.records.get(module, {}).values():
            for key, value in rec.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def module_time_totals(self, module: str) -> Dict[str, float]:
        """Sum of cumulative time counters over all records of a module."""
        totals: Dict[str, float] = {}
        for rec in self.records.get(module, {}).values():
            for key, value in rec.fcounters.items():
                if key.endswith("_TIME"):
                    totals[key] = totals.get(key, 0.0) + value
        return totals

    def read_size_histogram(self, module: str = "POSIX") -> Dict[str, int]:
        """Aggregated access-size histogram of reads, by Darshan bucket."""
        totals = self.module_totals(module)
        return read_size_histogram(totals, module)

    def file_sizes(self, module: str = "POSIX") -> Dict[str, int]:
        """Per-file maximum byte read/written + 1 (a file-size proxy)."""
        sizes = {}
        prefix = module
        for rid, rec in self.records.get(module, {}).items():
            path = self.path_of(rid) or f"record-{rid:#x}"
            max_read = rec.counters.get(f"{prefix}_MAX_BYTE_READ", 0)
            max_written = rec.counters.get(f"{prefix}_MAX_BYTE_WRITTEN", 0)
            sizes[path] = max(max_read, max_written) + 1
        return sizes

    def agg_ioops(self, module: str = "POSIX") -> Dict[str, int]:
        """Operation counts in the shape pydarshan's ``agg_ioops`` returns."""
        totals = self.module_totals(module)
        keys = ("OPENS", "READS", "WRITES", "SEEKS", "STATS", "FSYNCS",
                "FLUSHES")
        return {key.lower(): totals.get(f"{module}_{key}", 0) for key in keys
                if f"{module}_{key}" in totals}

    def summary(self) -> str:
        """Human-readable multi-line summary (darshan-parser style)."""
        lines = [
            f"# darshan log version: {self.header.get('version')}",
            f"# exe: {self.header.get('exe')}",
            f"# nprocs: {self.header.get('nprocs')}",
            f"# run time: {self.header.get('run_time'):.3f} s",
        ]
        for module in self.modules():
            totals = self.module_totals(module)
            nrecords = len(self.records[module])
            lines.append(f"# module {module}: {nrecords} records"
                         + (" (partial)" if module in self.partial_modules else ""))
            for key in sorted(totals):
                if totals[key]:
                    lines.append(f"{module}\t{key}\t{totals[key]}")
        return "\n".join(lines)
