"""DXT (Darshan eXtended Tracing) segment storage.

DXT records keep, per file, the individual read and write segments —
``(offset, length, start_time, end_time)`` — that the counter modules only
summarize.  tf-Darshan converts these segments into TensorBoard TraceViewer
timelines (one line per file, Fig. 8 and Fig. 10 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class DxtSegment:
    """One traced I/O segment of a file."""

    op: str            # "read" or "write"
    offset: int
    length: int
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "offset": self.offset,
            "length": self.length,
            "start_time": self.start_time,
            "end_time": self.end_time,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DxtSegment":
        return cls(op=str(data["op"]), offset=int(data["offset"]),
                   length=int(data["length"]),
                   start_time=float(data["start_time"]),
                   end_time=float(data["end_time"]))


class DxtRecord:
    """All traced segments of one file (one Darshan record id)."""

    __slots__ = ("record_id", "rank", "read_segments", "write_segments",
                 "dropped_segments")

    def __init__(self, record_id: int, rank: int = 0):
        self.record_id = record_id
        self.rank = rank
        self.read_segments: List[DxtSegment] = []
        self.write_segments: List[DxtSegment] = []
        #: Segments not stored because the per-record bound was hit.
        self.dropped_segments: int = 0

    def add(self, segment: DxtSegment, max_segments: Optional[int] = None) -> None:
        """Append a segment, honouring the per-record memory bound."""
        target = self.read_segments if segment.op == "read" else self.write_segments
        if max_segments is not None and len(target) >= max_segments:
            self.dropped_segments += 1
            return
        target.append(segment)

    @property
    def segment_count(self) -> int:
        return len(self.read_segments) + len(self.write_segments)

    def all_segments(self) -> List[DxtSegment]:
        """Read and write segments merged in time order."""
        return sorted(self.read_segments + self.write_segments,
                      key=lambda s: s.start_time)

    def copy(self) -> "DxtRecord":
        clone = DxtRecord(self.record_id, self.rank)
        clone.read_segments = list(self.read_segments)
        clone.write_segments = list(self.write_segments)
        clone.dropped_segments = self.dropped_segments
        return clone

    def as_dict(self) -> dict:
        return {
            "record_id": self.record_id,
            "rank": self.rank,
            "read_segments": [s.as_dict() for s in self.read_segments],
            "write_segments": [s.as_dict() for s in self.write_segments],
            "dropped_segments": self.dropped_segments,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DxtRecord":
        rec = cls(int(data["record_id"]), int(data.get("rank", 0)))
        rec.read_segments = [DxtSegment.from_dict(s) for s in data["read_segments"]]
        rec.write_segments = [DxtSegment.from_dict(s) for s in data["write_segments"]]
        rec.dropped_segments = int(data.get("dropped_segments", 0))
        return rec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DxtRecord id={self.record_id:#x} reads={len(self.read_segments)} "
                f"writes={len(self.write_segments)}>")
