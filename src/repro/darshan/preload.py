"""Classic (LD_PRELOAD-style) Darshan instrumentation.

Stock Darshan instruments a process by being preloaded ahead of libc so its
wrappers shadow the I/O symbols from the very first call, and it writes its
log when the process exits.  tf-Darshan deliberately does *not* work this
way (Table I of the paper): it attaches at runtime via
:mod:`repro.core.attach` instead.  This module provides the stock behaviour
so the two usage modes can be compared and the claim "we do not alter
Darshan's existing implementation" can be demonstrated — both modes use the
exact same :class:`~repro.darshan.posix_module.PosixModule` wrappers.
"""

from __future__ import annotations

from typing import Optional

from repro.posix.dispatch import SymbolTable
from repro.darshan.posix_module import PosixModule
from repro.darshan.runtime import DarshanConfig, DarshanCore
from repro.darshan.stdio_module import StdioModule
from repro.sim import Environment


class PreloadedDarshan:
    """Darshan set up the classic way: wrap everything at process start."""

    def __init__(self, env: Environment, symbols: SymbolTable,
                 config: Optional[DarshanConfig] = None):
        self.core = DarshanCore(env, config)
        self.posix_module = PosixModule(self.core)
        self.stdio_module = StdioModule(self.core)
        self.symbols = symbols
        self._installed = False

    def install(self) -> None:
        """Patch every known I/O symbol (what LD_PRELOAD does at load time)."""
        if self._installed:
            return
        real_posix = {name: self.symbols.resolve(name)
                      for name in self.symbols.symbols()}
        for name, wrapper in self.posix_module.make_wrappers(real_posix).items():
            self.symbols.patch(name, wrapper)
        for name, wrapper in self.stdio_module.make_wrappers(real_posix).items():
            self.symbols.patch(name, wrapper)
        self._installed = True

    def finalize(self, log_path: Optional[str] = None):
        """Shut the runtime down and (optionally) write the log file.

        Returns the in-memory :class:`~repro.darshan.log.DarshanLog`.
        """
        from repro.darshan.log import DarshanLog

        self.core.shutdown()
        log = DarshanLog.from_core(self.core)
        if log_path is not None:
            log.write(log_path)
        return log
