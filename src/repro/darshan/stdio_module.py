"""Darshan STDIO instrumentation module.

Instruments the buffered stream API (``fopen``/``fread``/``fwrite``/...).
TensorFlow writes checkpoints through ``fwrite`` in its POSIX filesystem
plugin, so checkpoint traffic appears on this module's counters — the
behaviour Fig. 6 of the paper demonstrates (about 1 400 ``fwrite`` calls for
ten per-step checkpoints of the AlexNet model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional

from repro.darshan.counters import STDIO_COUNTERS, STDIO_F_COUNTERS
from repro.darshan.dxt import DxtRecord, DxtSegment
from repro.darshan.records import CounterRecord
from repro.darshan.runtime import DarshanCore

MODULE_NAME = "STDIO"
DXT_MODULE_NAME = "DXT_STDIO"


@dataclass
class _StreamRef:
    """Association between a FILE* stream and its Darshan record."""

    record_id: int
    path: str
    position: int = 0


class StdioModule:
    """Instruments STDIO symbols and accumulates per-file counter records."""

    def __init__(self, core: DarshanCore):
        self.core = core
        self.env = core.env
        self.config = core.config
        self.records: Dict[int, CounterRecord] = {}
        self.dxt_records: Dict[int, DxtRecord] = {}
        self._stream_refs: Dict[int, _StreamRef] = {}
        self.partial_flag = False
        self.untracked_ops = 0
        core.register_module(MODULE_NAME, self)

    # -- record management ------------------------------------------------------
    def _get_record(self, path: str) -> Optional[CounterRecord]:
        record_id = self.core.register_name(path)
        record = self.records.get(record_id)
        if record is None:
            if len(self.records) >= self.config.max_records_per_module:
                self.partial_flag = True
                return None
            record = CounterRecord(record_id, self.config.rank,
                                   STDIO_COUNTERS, STDIO_F_COUNTERS)
            self.records[record_id] = record
            if self.config.enable_dxt:
                self.dxt_records[record_id] = DxtRecord(record_id, self.config.rank)
        return record

    def finalize(self) -> None:
        """STDIO has no derived counters; present for interface symmetry."""

    def _overhead(self, new_record: bool = False) -> Generator:
        cost = self.config.instrumentation_overhead
        if new_record:
            cost += self.config.record_creation_overhead
        if cost > 0:
            yield self.env.timeout(cost)

    def _ref_for(self, stream: object) -> Optional[_StreamRef]:
        stream_id = getattr(stream, "stream_id", None)
        if stream_id is None:
            stream_id = stream
        return self._stream_refs.get(stream_id)

    def _track_transfer(self, ref: _StreamRef, is_write: bool, nbytes: int,
                        start: float, end: float) -> None:
        record = self.records.get(ref.record_id)
        if record is None:  # pragma: no cover - defensive
            return
        direction = "WRITE" if is_write else "READ"
        record.inc(f"STDIO_{direction}S")
        record.inc(f"STDIO_BYTES_{'WRITTEN' if is_write else 'READ'}", nbytes)
        offset = ref.position
        end_byte = offset + max(0, nbytes - 1)
        record.maximum(f"STDIO_MAX_BYTE_{'WRITTEN' if is_write else 'READ'}", end_byte)
        record.fset_first(f"STDIO_F_{direction}_START_TIMESTAMP", start)
        record.fset_max(f"STDIO_F_{direction}_END_TIMESTAMP", end)
        record.fadd(f"STDIO_F_{direction}_TIME", end - start)
        if self.config.enable_dxt:
            dxt = self.dxt_records.get(ref.record_id)
            if dxt is not None:
                dxt.add(DxtSegment(op="write" if is_write else "read",
                                   offset=offset, length=nbytes,
                                   start_time=start, end_time=end),
                        max_segments=self.config.max_dxt_segments_per_record)
        ref.position = offset + nbytes

    # -- wrapper construction ---------------------------------------------------------
    def make_wrappers(self, real: Dict[str, Callable[..., Generator]]
                      ) -> Dict[str, Callable[..., Generator]]:
        """Build instrumented wrappers around the real STDIO bindings."""
        wrappers: Dict[str, Callable[..., Generator]] = {}

        def wrap_fopen(path, mode="r"):
            known = self.core.register_name(path) in self.records
            start = self.env.now
            stream = yield from real["fopen"](path, mode)
            end = self.env.now
            record = self._get_record(path)
            if record is not None:
                record.inc("STDIO_OPENS")
                record.fset_first("STDIO_F_OPEN_START_TIMESTAMP", start)
                record.fset_max("STDIO_F_OPEN_END_TIMESTAMP", end)
                record.fadd("STDIO_F_META_TIME", end - start)
                position = getattr(stream, "position", 0)
                self._stream_refs[stream.stream_id] = _StreamRef(
                    record_id=record.record_id, path=path, position=position)
            yield from self._overhead(new_record=not known)
            return stream

        def wrap_fclose(stream):
            ref = self._stream_refs.pop(getattr(stream, "stream_id", stream), None)
            start = self.env.now
            result = yield from real["fclose"](stream)
            end = self.env.now
            if ref is not None:
                record = self.records.get(ref.record_id)
                if record is not None:
                    record.fset_first("STDIO_F_CLOSE_START_TIMESTAMP", start)
                    record.fset_max("STDIO_F_CLOSE_END_TIMESTAMP", end)
                    record.fadd("STDIO_F_META_TIME", end - start)
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return result

        def wrap_fread(stream, nbytes):
            ref = self._ref_for(stream)
            start = self.env.now
            data = yield from real["fread"](stream, nbytes)
            end = self.env.now
            if ref is not None:
                self._track_transfer(ref, False, data.nbytes, start, end)
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return data

        def wrap_fwrite(stream, data):
            ref = self._ref_for(stream)
            start = self.env.now
            written = yield from real["fwrite"](stream, data)
            end = self.env.now
            if ref is not None:
                self._track_transfer(ref, True, written, start, end)
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return written

        def wrap_fseek(stream, offset, whence=0):
            ref = self._ref_for(stream)
            start = self.env.now
            result = yield from real["fseek"](stream, offset, whence)
            end = self.env.now
            if ref is not None:
                record = self.records.get(ref.record_id)
                if record is not None:
                    record.inc("STDIO_SEEKS")
                    record.fadd("STDIO_F_META_TIME", end - start)
                ref.position = getattr(stream, "position", ref.position)
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return result

        def wrap_ftell(stream):
            result = yield from real["ftell"](stream)
            yield from self._overhead()
            return result

        def wrap_fflush(stream):
            ref = self._ref_for(stream)
            start = self.env.now
            result = yield from real["fflush"](stream)
            end = self.env.now
            if ref is not None:
                record = self.records.get(ref.record_id)
                if record is not None:
                    record.inc("STDIO_FLUSHES")
                    record.fadd("STDIO_F_META_TIME", end - start)
            yield from self._overhead()
            return result

        available = {
            "fopen": wrap_fopen,
            "fclose": wrap_fclose,
            "fread": wrap_fread,
            "fwrite": wrap_fwrite,
            "fseek": wrap_fseek,
            "ftell": wrap_ftell,
            "fflush": wrap_fflush,
        }
        for name, wrapper in available.items():
            if name in real:
                wrappers[name] = wrapper
        return wrappers

    # -- summary helpers -----------------------------------------------------------------
    def total_counter(self, name: str) -> int:
        """Sum of one counter across all records."""
        return sum(rec.counters.get(name, 0) for rec in self.records.values())

    def file_count(self) -> int:
        """Number of file records currently tracked."""
        return len(self.records)
