"""Darshan POSIX instrumentation module.

The wrappers produced by :meth:`PosixModule.make_wrappers` follow Darshan's
``posix_module.c`` update rules exactly where the paper's analyses depend on
them:

* ``POSIX_SEQ_READS`` counts reads whose offset is *greater than* the last
  byte previously read; ``POSIX_CONSEC_READS`` counts reads starting exactly
  one byte after it.  Because the per-record ``last_byte_read`` starts at 0,
  the first read of every file is neither sequential nor consecutive, and
  the zero-length read that terminates TensorFlow's ``ReadFile`` loop is
  both — which is precisely the 50 % / 50 % split the paper observes in the
  ImageNet case study (Fig. 7a / Fig. 8).
* access sizes fall into Darshan's standard histogram buckets
  (``POSIX_SIZE_READ_0_100`` ... ``_1G_PLUS``), so the zero-length reads
  populate the 0-100 bucket as in the paper.
* per-file wall-clock timestamps and cumulative read/write/meta times feed
  tf-Darshan's bandwidth and timing panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Optional

from repro.darshan.counters import (
    POSIX_COUNTERS,
    POSIX_F_COUNTERS,
    size_counter_name,
)
from repro.darshan.dxt import DxtRecord, DxtSegment
from repro.darshan.records import CounterRecord
from repro.darshan.runtime import DarshanCore

MODULE_NAME = "POSIX"
DXT_MODULE_NAME = "DXT_POSIX"


@dataclass
class _RecordState:
    """Darshan's per-record runtime bookkeeping (not written to the log)."""

    last_byte_read: int = 0
    last_byte_written: int = 0
    last_op: Optional[str] = None


@dataclass
class _FdRef:
    """Association between an open descriptor and its file record."""

    record_id: int
    path: str
    offset: int = 0


class PosixModule:
    """Instruments POSIX symbols and accumulates per-file counter records."""

    def __init__(self, core: DarshanCore):
        self.core = core
        self.env = core.env
        self.config = core.config
        self.records: Dict[int, CounterRecord] = {}
        self.dxt_records: Dict[int, DxtRecord] = {}
        self._state: Dict[int, _RecordState] = {}
        self._fd_refs: Dict[int, _FdRef] = {}
        #: Set when the record limit was hit and files went untracked.
        self.partial_flag = False
        #: Operations that passed through without instrumentation (unknown fd).
        self.untracked_ops = 0
        core.register_module(MODULE_NAME, self)

    # -- record management ---------------------------------------------------
    def _get_record(self, path: str) -> Optional[CounterRecord]:
        record_id = self.core.register_name(path)
        record = self.records.get(record_id)
        if record is None:
            if len(self.records) >= self.config.max_records_per_module:
                self.partial_flag = True
                return None
            record = CounterRecord(record_id, self.config.rank,
                                   POSIX_COUNTERS, POSIX_F_COUNTERS)
            self.records[record_id] = record
            self._state[record_id] = _RecordState()
            if self.config.enable_dxt:
                self.dxt_records[record_id] = DxtRecord(record_id, self.config.rank)
        return record

    def record_for_path(self, path: str) -> Optional[CounterRecord]:
        """Record currently tracked for ``path`` (None if untracked)."""
        from repro.darshan.records import darshan_record_id
        return self.records.get(darshan_record_id(path))

    def finalize(self) -> None:
        """Fill derived counters (common access sizes) before log writing."""
        for record in self.records.values():
            record.finalize_common_accesses("POSIX")

    # -- counter updates ------------------------------------------------------
    def _overhead(self, new_record: bool = False) -> Generator:
        cost = self.config.instrumentation_overhead
        if new_record:
            cost += self.config.record_creation_overhead
        if cost > 0:
            yield self.env.timeout(cost)

    def _track_open(self, path: str, fd: int, start: float, end: float,
                    known_before: bool) -> Optional[CounterRecord]:
        record = self._get_record(path)
        if record is None:
            return None
        record.inc("POSIX_OPENS")
        record.fset_first("POSIX_F_OPEN_START_TIMESTAMP", start)
        record.fset_max("POSIX_F_OPEN_END_TIMESTAMP", end)
        record.fadd("POSIX_F_META_TIME", end - start)
        self._fd_refs[fd] = _FdRef(record_id=record.record_id, path=path)
        return record

    def _track_transfer(self, ref: _FdRef, is_write: bool, offset: int,
                        nbytes: int, start: float, end: float) -> None:
        record = self.records.get(ref.record_id)
        if record is None:  # pragma: no cover - defensive
            return
        state = self._state[ref.record_id]
        direction = "WRITE" if is_write else "READ"
        op = "write" if is_write else "read"

        record.inc(f"POSIX_{direction}S")
        record.inc(f"POSIX_BYTES_{'WRITTEN' if is_write else 'READ'}", nbytes)
        record.inc(size_counter_name("POSIX", is_write, nbytes))
        record.note_access_size(nbytes)

        last_byte = state.last_byte_written if is_write else state.last_byte_read
        if offset > last_byte:
            record.inc(f"POSIX_SEQ_{direction}S")
        if offset == last_byte + 1:
            record.inc(f"POSIX_CONSEC_{direction}S")
        new_last = offset + nbytes - 1
        if is_write:
            state.last_byte_written = new_last
            record.maximum("POSIX_MAX_BYTE_WRITTEN", max(0, new_last))
        else:
            state.last_byte_read = new_last
            record.maximum("POSIX_MAX_BYTE_READ", max(0, new_last))

        if state.last_op is not None and state.last_op != op:
            record.inc("POSIX_RW_SWITCHES")
        state.last_op = op

        record.fset_first(f"POSIX_F_{direction}_START_TIMESTAMP", start)
        record.fset_max(f"POSIX_F_{direction}_END_TIMESTAMP", end)
        record.fadd(f"POSIX_F_{direction}_TIME", end - start)
        record.fset_max(f"POSIX_F_MAX_{direction}_TIME", end - start)

        if self.config.enable_dxt:
            dxt = self.dxt_records.get(ref.record_id)
            if dxt is not None:
                dxt.add(DxtSegment(op=op, offset=offset, length=nbytes,
                                   start_time=start, end_time=end),
                        max_segments=self.config.max_dxt_segments_per_record)

    def _track_meta(self, record: Optional[CounterRecord], counter: Optional[str],
                    start: float, end: float) -> None:
        if record is None:
            return
        if counter is not None:
            record.inc(counter)
        record.fadd("POSIX_F_META_TIME", end - start)

    # -- wrapper construction ----------------------------------------------------
    def make_wrappers(self, real: Dict[str, Callable[..., Generator]]
                      ) -> Dict[str, Callable[..., Generator]]:
        """Build instrumented wrappers around the real ("libc") bindings.

        Only symbols present in ``real`` are wrapped; the returned mapping
        can be installed into the symbol table by the runtime attachment.
        """
        wrappers: Dict[str, Callable[..., Generator]] = {}

        def wrap_open(path, flags=0):
            known = self.core.register_name(path) in self.records
            start = self.env.now
            fd = yield from real["open"](path, flags)
            end = self.env.now
            self._track_open(path, fd, start, end, known)
            yield from self._overhead(new_record=not known)
            return fd

        def wrap_close(fd):
            ref = self._fd_refs.pop(fd, None)
            start = self.env.now
            result = yield from real["close"](fd)
            end = self.env.now
            if ref is not None:
                record = self.records.get(ref.record_id)
                if record is not None:
                    record.fset_first("POSIX_F_CLOSE_START_TIMESTAMP", start)
                    record.fset_max("POSIX_F_CLOSE_END_TIMESTAMP", end)
                    record.fadd("POSIX_F_META_TIME", end - start)
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return result

        def wrap_read(fd, count):
            ref = self._fd_refs.get(fd)
            start = self.env.now
            data = yield from real["read"](fd, count)
            end = self.env.now
            if ref is not None:
                offset = ref.offset
                self._track_transfer(ref, False, offset, data.nbytes, start, end)
                ref.offset = offset + data.nbytes
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return data

        def wrap_pread(fd, count, offset):
            ref = self._fd_refs.get(fd)
            start = self.env.now
            data = yield from real["pread"](fd, count, offset)
            end = self.env.now
            if ref is not None:
                self._track_transfer(ref, False, offset, data.nbytes, start, end)
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return data

        def wrap_write(fd, data):
            ref = self._fd_refs.get(fd)
            start = self.env.now
            written = yield from real["write"](fd, data)
            end = self.env.now
            if ref is not None:
                offset = ref.offset
                self._track_transfer(ref, True, offset, written, start, end)
                ref.offset = offset + written
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return written

        def wrap_pwrite(fd, data, offset):
            ref = self._fd_refs.get(fd)
            start = self.env.now
            written = yield from real["pwrite"](fd, data, offset)
            end = self.env.now
            if ref is not None:
                self._track_transfer(ref, True, offset, written, start, end)
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return written

        def wrap_lseek(fd, offset, whence=0):
            ref = self._fd_refs.get(fd)
            start = self.env.now
            result = yield from real["lseek"](fd, offset, whence)
            end = self.env.now
            if ref is not None:
                ref.offset = result
                record = self.records.get(ref.record_id)
                self._track_meta(record, "POSIX_SEEKS", start, end)
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return result

        def wrap_stat(path):
            known = self.core.register_name(path) in self.records
            start = self.env.now
            result = yield from real["stat"](path)
            end = self.env.now
            record = self._get_record(path)
            self._track_meta(record, "POSIX_STATS", start, end)
            yield from self._overhead(new_record=not known)
            return result

        def wrap_fstat(fd):
            ref = self._fd_refs.get(fd)
            start = self.env.now
            result = yield from real["fstat"](fd)
            end = self.env.now
            if ref is not None:
                record = self.records.get(ref.record_id)
                self._track_meta(record, "POSIX_STATS", start, end)
            else:
                self.untracked_ops += 1
            yield from self._overhead()
            return result

        def wrap_fsync(fd):
            ref = self._fd_refs.get(fd)
            start = self.env.now
            result = yield from real["fsync"](fd)
            end = self.env.now
            if ref is not None:
                record = self.records.get(ref.record_id)
                self._track_meta(record, "POSIX_FSYNCS", start, end)
            yield from self._overhead()
            return result

        available = {
            "open": wrap_open,
            "close": wrap_close,
            "read": wrap_read,
            "pread": wrap_pread,
            "write": wrap_write,
            "pwrite": wrap_pwrite,
            "lseek": wrap_lseek,
            "stat": wrap_stat,
            "fstat": wrap_fstat,
            "fsync": wrap_fsync,
        }
        for name, wrapper in available.items():
            if name in real:
                wrappers[name] = wrapper
        return wrappers

    # -- summary helpers -----------------------------------------------------------
    def total_counter(self, name: str) -> int:
        """Sum of one counter across all records."""
        return sum(rec.counters.get(name, 0) for rec in self.records.values())

    def file_count(self) -> int:
        """Number of file records currently tracked."""
        return len(self.records)
