"""Darshan record structures.

A Darshan *record* accumulates counters for one file within one module.
Records are keyed by the Darshan record id — a stable hash of the file path
— and tied to the path through the shared *name record* table that the core
runtime maintains (mirroring ``darshan-core``'s name record management).
"""

from __future__ import annotations

import copy
import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple


def darshan_record_id(path: str) -> int:
    """Stable 64-bit record id of a file path (Darshan hashes path names)."""
    digest = hashlib.md5(path.encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class NameRecord:
    """Association between a record id and the file path it stands for."""

    record_id: int
    name: str


class CounterRecord:
    """A generic Darshan record: integer and floating-point counters."""

    __slots__ = ("record_id", "rank", "counters", "fcounters", "_access_sizes")

    def __init__(self, record_id: int, rank: int,
                 counter_names: Iterable[str], fcounter_names: Iterable[str]):
        self.record_id = record_id
        self.rank = rank
        self.counters: Dict[str, int] = {name: 0 for name in counter_names}
        self.fcounters: Dict[str, float] = {name: 0.0 for name in fcounter_names}
        # Frequency of access sizes, used to fill the ACCESSx counters the
        # way darshan_common_val_counter does.
        self._access_sizes: Counter = Counter()

    # -- counter updates ----------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Increment an integer counter."""
        self.counters[name] += amount

    def maximum(self, name: str, value: int) -> None:
        """Raise an integer counter to at least ``value``."""
        if value > self.counters[name]:
            self.counters[name] = value

    def fset_first(self, name: str, value: float) -> None:
        """Set a float counter if it has never been set (first timestamp)."""
        if self.fcounters[name] == 0.0:
            self.fcounters[name] = value

    def fset_max(self, name: str, value: float) -> None:
        """Raise a float counter to at least ``value`` (last timestamp)."""
        if value > self.fcounters[name]:
            self.fcounters[name] = value

    def fadd(self, name: str, value: float) -> None:
        """Accumulate elapsed time into a float counter."""
        self.fcounters[name] += value

    def note_access_size(self, nbytes: int) -> None:
        """Track a common access size (feeds the ACCESSx_ACCESS counters)."""
        self._access_sizes[int(nbytes)] += 1

    def finalize_common_accesses(self, prefix: str) -> None:
        """Fill the top-4 common access size counters from the tracked sizes."""
        top = self._access_sizes.most_common(4)
        for i in range(4):
            access_key = f"{prefix}_ACCESS{i + 1}_ACCESS"
            count_key = f"{prefix}_ACCESS{i + 1}_COUNT"
            if access_key not in self.counters:
                return
            if i < len(top):
                size, count = top[i]
                self.counters[access_key] = size
                self.counters[count_key] = count
            else:
                self.counters[access_key] = 0
                self.counters[count_key] = 0

    # -- snapshots -----------------------------------------------------------
    def copy(self) -> "CounterRecord":
        """Deep copy used by the tf-Darshan extraction snapshots."""
        clone = CounterRecord(self.record_id, self.rank, (), ())
        clone.counters = dict(self.counters)
        clone.fcounters = dict(self.fcounters)
        clone._access_sizes = Counter(self._access_sizes)
        return clone

    def as_dict(self) -> Dict[str, object]:
        """Serializable view of the record."""
        return {
            "record_id": self.record_id,
            "rank": self.rank,
            "counters": dict(self.counters),
            "fcounters": dict(self.fcounters),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CounterRecord":
        rec = cls(int(data["record_id"]), int(data["rank"]), (), ())
        rec.counters = {str(k): int(v) for k, v in dict(data["counters"]).items()}
        rec.fcounters = {str(k): float(v) for k, v in dict(data["fcounters"]).items()}
        return rec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterRecord id={self.record_id:#x} rank={self.rank}>"
