"""repro: a reproduction of *tf-Darshan* (Chien et al., CLUSTER 2020).

The package provides a complete, self-contained software stack for studying
fine-grained I/O behaviour of machine-learning input pipelines:

``repro.sim``
    A discrete-event simulation kernel (processes, events, resources, fluid
    bandwidth sharing) that provides the virtual clock everything runs on.

``repro.storage``
    Device and filesystem models: HDD / SSD / Optane devices, an ext4-like
    local filesystem, a Lustre-like parallel filesystem, multi-tier mounts
    and file staging, and per-device transfer metrics.

``repro.posix``
    A POSIX layer on top of the storage models: a virtual filesystem,
    file-descriptor table, POSIX syscalls, buffered STDIO streams, and the
    dynamic symbol dispatch table that plays the role of the Global Offset
    Table in the paper.

``repro.darshan``
    A reimplementation of the Darshan runtime: POSIX and STDIO counter
    modules, DXT tracing, log serialization and a pydarshan-style reader,
    plus the data-extraction API that tf-Darshan requires.

``repro.tfmini``
    A TensorFlow-like mini framework: ``tf.data``-style datasets, Keras-like
    models and callbacks, checkpointing, and the TensorFlow Profiler
    (TraceMe recorder, pluggable tracers, trace-event export, input-pipeline
    analysis).

``repro.core``
    The paper's contribution: the ``DarshanTracer`` profiler plugin, the
    runtime-attachment middle man, in-situ extraction and analysis of
    Darshan records, TensorBoard-style report generation and the
    optimization advisors used in the case studies.

``repro.tools`` and ``repro.workloads``
    A dstat-like disk monitor, a STREAM-like ingestion benchmark, synthetic
    dataset generators and the experiment runners used by the benchmark
    harnesses.
"""

from repro._version import __version__

__all__ = ["__version__"]
