"""TensorFlow's POSIX filesystem plugin.

``tf.io.read_file`` ends up in the platform's POSIX filesystem module,
whose ``ReadFileToString`` loops over ``pread`` until a read returns zero
bytes — the behaviour the paper discovers in the ImageNet case study ("the
read file operation consists of a loop that performs pread.  The function
returns only upon pread returning zero").  Writable files (checkpoints) go
through buffered ``fwrite``.  All calls are issued through the simulated
process's symbol table, which is what makes them visible to Darshan.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.posix.simbytes import BytesLike, SimBytes


class WritableFile:
    """TensorFlow's ``WritableFile``: buffered appends through STDIO."""

    def __init__(self, runtime, path: str):
        self.runtime = runtime
        self.path = path
        self._stream = None
        self.bytes_written = 0
        self.append_calls = 0

    def open(self) -> Generator:
        """Open the underlying stream (``fopen(path, "wb")``)."""
        self._stream = yield from self.runtime.os.call("fopen", self.path, "wb")
        return self

    def append(self, data: BytesLike) -> Generator:
        """Append a block of data (one ``fwrite`` call)."""
        payload = SimBytes.coerce(data)
        written = yield from self.runtime.os.call("fwrite", self._stream, payload)
        self.bytes_written += written
        self.append_calls += 1
        return written

    def flush(self) -> Generator:
        yield from self.runtime.os.call("fflush", self._stream)

    def close(self) -> Generator:
        yield from self.runtime.os.call("fclose", self._stream)
        self._stream = None


class PosixFileSystem:
    """The subset of TF's filesystem API the workloads exercise."""

    def __init__(self, runtime):
        self.runtime = runtime

    # -- reads ------------------------------------------------------------
    def read_file_to_string(self, path: str,
                            buffer_size: Optional[int] = None) -> Generator:
        """Read a whole file with the pread-until-zero loop.

        Returns a :class:`SimBytes` of the file contents.  The terminating
        zero-length ``pread`` is intentional: it is how TensorFlow detects
        EOF and it is the source of the "50 % of reads are below 100 bytes"
        observation in the paper.
        """
        chunk = buffer_size or self.runtime.read_buffer_size
        os_image = self.runtime.os
        fd = yield from os_image.call("open", path)
        offset = 0
        pieces = 0
        while True:
            data = yield from os_image.call("pread", fd, chunk, offset)
            if data.nbytes == 0:
                break
            offset += data.nbytes
            pieces += 1
        yield from os_image.call("close", fd)
        return SimBytes(offset)

    def file_exists(self, path: str) -> Generator:
        """``FileExists``: an access() call through the symbol table."""
        try:
            yield from self.runtime.os.call("access", path)
            return True
        except OSError:
            return False

    def get_file_size(self, path: str) -> Generator:
        """``GetFileSize``: a stat() call through the symbol table."""
        result = yield from self.runtime.os.call("stat", path)
        return result.st_size

    # -- writes ------------------------------------------------------------
    def new_writable_file(self, path: str) -> Generator:
        """Create a :class:`WritableFile` (used by the checkpoint writer)."""
        handle = WritableFile(self.runtime, path)
        yield from handle.open()
        return handle
