"""A ``tf.data``-like input pipeline executing on the simulation kernel.

The pipeline is what the paper studies: ``Dataset.map`` runs the user's
capture function (read + decode + preprocess) on ``num_parallel_calls``
worker threads, ``batch`` groups samples, and ``prefetch`` keeps a bounded
buffer of ready batches so input production overlaps GPU compute.  Each
transformation becomes a *stage*: a set of simulated processes connected by
bounded stores, with backpressure and order preservation like the real
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable, List, Optional, Sequence

from repro.sim import Environment, Interrupt, Store, WorkerPool
from repro.sim.rng import make_rng
from repro.tfmini.io_ops import assemble_batch

#: Ask the runtime to choose the parallelism (resolved to the CPU core count).
AUTOTUNE = -1

#: End-of-data sentinel flowing through the stage stores.
_EOD = object()


class OutOfRangeError(Exception):
    """Raised by ``get_next`` once the dataset is exhausted."""


@dataclass
class Batch:
    """A batch of pipeline elements."""

    elements: List[object]

    @property
    def size(self) -> int:
        return len(self.elements)

    @property
    def nbytes(self) -> int:
        total = 0
        for element in self.elements:
            size = getattr(element, "nbytes", None)
            total += int(size) if size is not None else 0
        return total

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)


# ---------------------------------------------------------------------------
# Stages (runtime instantiation of dataset nodes)
# ---------------------------------------------------------------------------

class _Stage:
    """Base class of instantiated pipeline stages."""

    def __init__(self, runtime, capacity: int = 1):
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.output = Store(self.env, capacity=capacity)
        self.processes: List = []
        self.upstream: Optional["_Stage"] = None

    def _spawn(self, generator) -> None:
        self.processes.append(self.env.process(generator))

    def cancel(self) -> None:
        """Stop this stage and everything upstream of it."""
        for proc in self.processes:
            if proc.is_alive:
                proc.interrupt("iterator-cancelled")
        if self.upstream is not None:
            self.upstream.cancel()


class _SourceStage(_Stage):
    def __init__(self, runtime, items: Sequence):
        super().__init__(runtime)
        self.items = list(items)
        self._spawn(self._pump())

    def _pump(self):
        try:
            for item in self.items:
                yield self.output.put(item)
            yield self.output.put(_EOD)
        except Interrupt:
            return


class _MapStage(_Stage):
    def __init__(self, runtime, upstream: _Stage, fn, parallel: int):
        super().__init__(runtime)
        self.upstream = upstream
        self.fn = fn
        self.parallel = parallel
        self.pool = WorkerPool(self.env, parallel, name="tf_data_map")
        self._jobs = Store(self.env, capacity=parallel)
        self._spawn(self._producer())
        self._spawn(self._emitter())

    def cancel(self) -> None:
        self.pool.interrupt_workers()
        super().cancel()

    def _producer(self):
        try:
            while True:
                item = yield self.upstream.output.get()
                if item is _EOD:
                    break
                if self.runtime.inter_op_overhead > 0:
                    yield self.env.timeout(self.runtime.inter_op_overhead)
                job = self.pool.submit(
                    lambda item=item: self.fn(self.runtime, item))
                yield self._jobs.put(job)
            yield self._jobs.put(_EOD)
        except Interrupt:
            return

    def _emitter(self):
        try:
            while True:
                job = yield self._jobs.get()
                if job is _EOD:
                    break
                result = yield job.done
                yield self.output.put(result)
            yield self.output.put(_EOD)
            self.pool.close()
        except Interrupt:
            return


class _BatchStage(_Stage):
    def __init__(self, runtime, upstream: _Stage, batch_size: int,
                 drop_remainder: bool):
        super().__init__(runtime)
        self.upstream = upstream
        self.batch_size = batch_size
        self.drop_remainder = drop_remainder
        self._spawn(self._pump())

    def _pump(self):
        try:
            buffer: List[object] = []
            while True:
                item = yield self.upstream.output.get()
                if item is _EOD:
                    if buffer and not self.drop_remainder:
                        yield from assemble_batch(self.runtime, buffer)
                        yield self.output.put(Batch(list(buffer)))
                    break
                buffer.append(item)
                if len(buffer) == self.batch_size:
                    yield from assemble_batch(self.runtime, buffer)
                    yield self.output.put(Batch(list(buffer)))
                    buffer = []
            yield self.output.put(_EOD)
        except Interrupt:
            return


class _PrefetchStage(_Stage):
    def __init__(self, runtime, upstream: _Stage, buffer_size: int):
        super().__init__(runtime, capacity=max(1, buffer_size))
        self.upstream = upstream
        self._spawn(self._pump())

    def _pump(self):
        try:
            while True:
                item = yield self.upstream.output.get()
                yield self.output.put(item)
                if item is _EOD:
                    break
        except Interrupt:
            return


class _ShuffleStage(_Stage):
    def __init__(self, runtime, upstream: _Stage, buffer_size: int,
                 seed: Optional[int]):
        super().__init__(runtime)
        self.upstream = upstream
        self.buffer_size = buffer_size
        self.rng = make_rng(seed, "tf.data.shuffle")
        self._spawn(self._pump())

    def _pump(self):
        try:
            buffer: List[object] = []
            upstream_done = False
            while not upstream_done and len(buffer) < self.buffer_size:
                item = yield self.upstream.output.get()
                if item is _EOD:
                    upstream_done = True
                else:
                    buffer.append(item)
            while buffer:
                index = int(self.rng.integers(0, len(buffer)))
                buffer[index], buffer[-1] = buffer[-1], buffer[index]
                yield self.output.put(buffer.pop())
                if not upstream_done:
                    item = yield self.upstream.output.get()
                    if item is _EOD:
                        upstream_done = True
                    else:
                        buffer.append(item)
            yield self.output.put(_EOD)
        except Interrupt:
            return


class _TakeStage(_Stage):
    def __init__(self, runtime, upstream: _Stage, count: int):
        super().__init__(runtime)
        self.upstream = upstream
        self.count = count
        self._spawn(self._pump())

    def _pump(self):
        try:
            taken = 0
            while taken < self.count:
                item = yield self.upstream.output.get()
                if item is _EOD:
                    break
                yield self.output.put(item)
                taken += 1
            yield self.output.put(_EOD)
        except Interrupt:
            return


class _RepeatStage(_Stage):
    def __init__(self, runtime, node: "_RepeatNode"):
        super().__init__(runtime)
        self.node = node
        self._current_upstream: Optional[_Stage] = None
        self._spawn(self._pump())

    def cancel(self) -> None:
        for proc in self.processes:
            if proc.is_alive:
                proc.interrupt("iterator-cancelled")
        if self._current_upstream is not None:
            self._current_upstream.cancel()

    def _pump(self):
        try:
            epoch = 0
            while self.node.count is None or epoch < self.node.count:
                self._current_upstream = self.node.parent.instantiate(self.runtime)
                while True:
                    item = yield self._current_upstream.output.get()
                    if item is _EOD:
                        break
                    yield self.output.put(item)
                epoch += 1
            yield self.output.put(_EOD)
        except Interrupt:
            return


# ---------------------------------------------------------------------------
# Dataset nodes (the declarative graph)
# ---------------------------------------------------------------------------

class _Node:
    def instantiate(self, runtime) -> _Stage:
        raise NotImplementedError


@dataclass
class _SourceNode(_Node):
    items: Sequence

    def instantiate(self, runtime) -> _Stage:
        return _SourceStage(runtime, self.items)


@dataclass
class _MapNode(_Node):
    parent: _Node
    fn: Callable
    num_parallel_calls: Optional[int]

    def instantiate(self, runtime) -> _Stage:
        parallel = self.num_parallel_calls
        if parallel in (None, 0):
            parallel = 1
        elif parallel == AUTOTUNE:
            parallel = runtime.cpu_cores
        upstream = self.parent.instantiate(runtime)
        return _MapStage(runtime, upstream, self.fn, int(parallel))


@dataclass
class _BatchNode(_Node):
    parent: _Node
    batch_size: int
    drop_remainder: bool

    def instantiate(self, runtime) -> _Stage:
        return _BatchStage(runtime, self.parent.instantiate(runtime),
                           self.batch_size, self.drop_remainder)


@dataclass
class _PrefetchNode(_Node):
    parent: _Node
    buffer_size: int

    def instantiate(self, runtime) -> _Stage:
        buffer = self.buffer_size
        if buffer == AUTOTUNE:
            buffer = 8
        return _PrefetchStage(runtime, self.parent.instantiate(runtime), buffer)


@dataclass
class _ShuffleNode(_Node):
    parent: _Node
    buffer_size: int
    seed: Optional[int]

    def instantiate(self, runtime) -> _Stage:
        return _ShuffleStage(runtime, self.parent.instantiate(runtime),
                             self.buffer_size, self.seed)


@dataclass
class _TakeNode(_Node):
    parent: _Node
    count: int

    def instantiate(self, runtime) -> _Stage:
        return _TakeStage(runtime, self.parent.instantiate(runtime), self.count)


@dataclass
class _RepeatNode(_Node):
    parent: _Node
    count: Optional[int]

    def instantiate(self, runtime) -> _Stage:
        return _RepeatStage(runtime, self)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

class Dataset:
    """A declarative input pipeline (built once, instantiated per iterator)."""

    def __init__(self, node: _Node):
        self._node = node

    # -- sources -----------------------------------------------------------
    @classmethod
    def from_list(cls, items: Iterable) -> "Dataset":
        """Dataset over an in-memory list (e.g. file paths or labels)."""
        return cls(_SourceNode(list(items)))

    @classmethod
    def list_files(cls, vfs, prefix: str, shuffle: bool = False,
                   seed: Optional[int] = None) -> "Dataset":
        """Dataset of all file paths below ``prefix`` in the simulated VFS."""
        paths = [inode.path for inode in vfs.files_under(prefix)]
        if shuffle:
            rng = make_rng(seed, "tf.data.list_files")
            order = rng.permutation(len(paths))
            paths = [paths[i] for i in order]
        return cls.from_list(paths)

    # -- transformations ------------------------------------------------------
    def map(self, fn: Callable, num_parallel_calls: Optional[int] = None
            ) -> "Dataset":
        """Apply ``fn(runtime, element)`` (a simulation generator) per element."""
        return Dataset(_MapNode(self._node, fn, num_parallel_calls))

    def batch(self, batch_size: int, drop_remainder: bool = True) -> "Dataset":
        """Group consecutive elements into batches."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return Dataset(_BatchNode(self._node, int(batch_size), drop_remainder))

    def prefetch(self, buffer_size: int) -> "Dataset":
        """Decouple the consumer with a bounded ready-elements buffer."""
        return Dataset(_PrefetchNode(self._node, int(buffer_size)))

    def shuffle(self, buffer_size: int, seed: Optional[int] = None) -> "Dataset":
        """Shuffle with a bounded reservoir, like ``tf.data.Dataset.shuffle``."""
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        return Dataset(_ShuffleNode(self._node, int(buffer_size), seed))

    def take(self, count: int) -> "Dataset":
        """Truncate the dataset to ``count`` elements."""
        return Dataset(_TakeNode(self._node, int(count)))

    def repeat(self, count: Optional[int] = None) -> "Dataset":
        """Repeat the dataset ``count`` times (``None`` = indefinitely)."""
        return Dataset(_RepeatNode(self._node, count))

    # -- execution ---------------------------------------------------------------
    def make_iterator(self, runtime) -> "DatasetIterator":
        """Instantiate the pipeline stages and return an iterator."""
        return DatasetIterator(runtime, self._node.instantiate(runtime))


class DatasetIterator:
    """Pulls elements out of an instantiated pipeline."""

    #: Host-side cost of one GetNext call (op dispatch, session overhead).
    GET_NEXT_OVERHEAD = 150e-6

    def __init__(self, runtime, stage: _Stage):
        self.runtime = runtime
        self.env = runtime.env
        self._stage = stage
        self._exhausted = False
        self.elements_delivered = 0

    def get_next(self) -> Generator:
        """Wait for the next element; raises :class:`OutOfRangeError` at EOD."""
        if self._exhausted:
            raise OutOfRangeError("iterator exhausted")
        start = self.env.now
        item = yield self._stage.output.get()
        if self.GET_NEXT_OVERHEAD > 0:
            yield self.env.timeout(self.GET_NEXT_OVERHEAD)
        if item is _EOD:
            self._exhausted = True
            raise OutOfRangeError("end of dataset")
        self.elements_delivered += 1
        self.runtime.traceme.record("IteratorGetNext", start, self.env.now,
                                    thread="host")
        return item

    def cancel(self) -> None:
        """Tear down the pipeline's background processes."""
        self._stage.cancel()
        self._exhausted = True
