"""tf.data-like input pipelines."""

from repro.tfmini.data.dataset import (
    AUTOTUNE,
    Batch,
    Dataset,
    DatasetIterator,
    OutOfRangeError,
)

__all__ = ["AUTOTUNE", "Batch", "Dataset", "DatasetIterator", "OutOfRangeError"]
