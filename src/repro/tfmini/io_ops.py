"""TensorFlow-style I/O and preprocessing operations.

Each operation is a simulation generator that charges a calibrated CPU cost
to the runtime's shared CPU pool (so parallel pipelines contend for cores
exactly like real ``tf.data`` worker threads) and records a TraceMe span
when profiling is active.  The cost coefficients live in :class:`OpCosts`
so the calibration benchmarks can reason about them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence, Tuple

from repro.posix.simbytes import SimBytes


@dataclass
class Tensor:
    """A minimal dense-tensor stand-in: shape and element size only."""

    shape: Tuple[int, ...]
    dtype_size: int = 4

    @property
    def nbytes(self) -> int:
        n = self.dtype_size
        for dim in self.shape:
            n *= int(dim)
        return n

    @property
    def num_elements(self) -> int:
        n = 1
        for dim in self.shape:
            n *= int(dim)
        return n


@dataclass
class OpCosts:
    """CPU cost coefficients of the preprocessing operations (seconds)."""

    #: Fixed cost of a JPEG decode plus cost per encoded byte.
    decode_jpeg_base: float = 0.8e-3
    decode_jpeg_per_byte: float = 1.5e-7
    #: Image resize: fixed plus per output pixel (3 channels assumed).
    resize_base: float = 1.0e-3
    resize_per_pixel: float = 4.0e-8
    #: Raw byte decode (malware bytecode to grayscale image).
    decode_raw_base: float = 0.5e-3
    decode_raw_per_byte: float = 1.3e-9
    #: Generic per-element cast/normalize cost per byte.
    cast_per_byte: float = 2.0e-10
    #: Batch assembly (memcpy of one sample into the batch buffer).
    batch_per_byte: float = 1.0e-10


def _charge(runtime, seconds: float, name: str, **metadata) -> Generator:
    """Charge CPU work to the pool and trace it."""
    start = runtime.env.now
    if seconds > 0:
        yield runtime.cpu.compute(seconds, tag=name)
    runtime.traceme.record(name, start, runtime.env.now, thread="input_pipeline",
                           **metadata)


def read_file(runtime, path: str, buffer_size: Optional[int] = None) -> Generator:
    """``tf.io.read_file``: read a whole file through the filesystem plugin."""
    start = runtime.env.now
    data = yield from runtime.filesystem.read_file_to_string(path, buffer_size)
    runtime.traceme.record("ReadFile", start, runtime.env.now,
                           thread="input_pipeline", path=path, bytes=data.nbytes)
    return data


def decode_jpeg(runtime, data: SimBytes, costs: Optional[OpCosts] = None,
                decoded_shape: Tuple[int, int, int] = (500, 400, 3)) -> Generator:
    """``tf.io.decode_jpeg``: cost scales with the encoded size."""
    costs = costs or OpCosts()
    seconds = costs.decode_jpeg_base + costs.decode_jpeg_per_byte * data.nbytes
    yield from _charge(runtime, seconds, "DecodeJpeg", bytes=data.nbytes)
    return Tensor(shape=decoded_shape, dtype_size=1)


def resize_image(runtime, image: Tensor, target: Tuple[int, int],
                 costs: Optional[OpCosts] = None) -> Generator:
    """``tf.image.resize``: cost scales with the output pixel count."""
    costs = costs or OpCosts()
    channels = image.shape[2] if len(image.shape) > 2 else 1
    pixels = target[0] * target[1] * channels
    seconds = costs.resize_base + costs.resize_per_pixel * pixels
    yield from _charge(runtime, seconds, "ResizeBilinear", pixels=pixels)
    return Tensor(shape=(target[0], target[1], channels), dtype_size=4)


def decode_raw(runtime, data: SimBytes, costs: Optional[OpCosts] = None,
               image_side: int = 2048) -> Generator:
    """``tf.io.decode_raw`` + reshape: malware bytecode to a grayscale image."""
    costs = costs or OpCosts()
    seconds = costs.decode_raw_base + costs.decode_raw_per_byte * data.nbytes
    yield from _charge(runtime, seconds, "DecodeRaw", bytes=data.nbytes)
    side = min(image_side, max(64, int(data.nbytes ** 0.5)))
    return Tensor(shape=(side, side, 1), dtype_size=1)


def cast(runtime, tensor: Tensor, dtype_size: int = 4,
         costs: Optional[OpCosts] = None) -> Generator:
    """``tf.cast`` / normalization over the whole tensor."""
    costs = costs or OpCosts()
    seconds = costs.cast_per_byte * tensor.nbytes
    yield from _charge(runtime, seconds, "Cast", bytes=tensor.nbytes)
    return Tensor(shape=tensor.shape, dtype_size=dtype_size)


def assemble_batch(runtime, elements: Sequence, costs: Optional[OpCosts] = None
                   ) -> Generator:
    """Copy a list of samples into one batch buffer (the Batch op)."""
    costs = costs or OpCosts()
    nbytes = 0
    for element in elements:
        size = getattr(element, "nbytes", None)
        nbytes += int(size) if size is not None else 0
    seconds = costs.batch_per_byte * nbytes
    yield from _charge(runtime, seconds, "BatchDataset::MakeBatch", bytes=nbytes)
    return elements
