"""A TensorFlow-like mini framework executing on the simulation kernel.

The subpackages mirror the TensorFlow pieces the paper's tooling touches:
``tfmini.data`` (input pipelines), ``tfmini.keras`` (models, callbacks and
checkpointing), ``tfmini.profiler`` (the TensorFlow Profiler with pluggable
tracers) and the runtime/filesystem/IO-op layers that issue POSIX calls
through the simulated process's symbol table.
"""

from repro.tfmini import io_ops
from repro.tfmini.data import AUTOTUNE, Batch, Dataset, DatasetIterator, OutOfRangeError
from repro.tfmini.device import GPUDevice, KernelEvent, rtx2060, v100
from repro.tfmini.filesystem import PosixFileSystem, WritableFile
from repro.tfmini.io_ops import OpCosts, Tensor
from repro.tfmini.runtime import ProfilerCosts, TFRuntime

__all__ = [
    "AUTOTUNE",
    "Batch",
    "Dataset",
    "DatasetIterator",
    "GPUDevice",
    "KernelEvent",
    "OpCosts",
    "OutOfRangeError",
    "PosixFileSystem",
    "ProfilerCosts",
    "TFRuntime",
    "Tensor",
    "WritableFile",
    "io_ops",
    "rtx2060",
    "v100",
]
