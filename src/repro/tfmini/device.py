"""Simulated accelerator devices and their kernel activity log.

The paper's two platforms use two NVIDIA V100s (Kebnekaise) and one RTX 2060
SUPER (Greendog).  For the reproduction only the *ratio* between GPU compute
time and input-pipeline time matters (the TensorFlow Profiler classifies
both case studies as heavily input bound), so a GPU is a serial execution
resource with a per-kernel duration decided by the model cost functions, and
a kernel log that the CUPTI-like device tracer reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.sim import Environment, Resource


@dataclass(frozen=True)
class KernelEvent:
    """One executed GPU kernel (what CUPTI would report)."""

    name: str
    start: float
    end: float
    device: str
    correlation_id: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class GPUDevice:
    """A serial GPU execution queue with a kernel activity log."""

    def __init__(self, env: Environment, name: str = "GPU:0",
                 relative_speed: float = 1.0, memory_gb: float = 16.0):
        if relative_speed <= 0:
            raise ValueError("relative_speed must be positive")
        self.env = env
        self.name = name
        self.relative_speed = float(relative_speed)
        self.memory_gb = memory_gb
        self._queue = Resource(env, capacity=1)
        self.kernel_log: List[KernelEvent] = []
        self._correlation = 0
        self.busy_time = 0.0

    def launch(self, kernel_name: str, duration: float) -> Generator:
        """Execute one kernel of ``duration`` seconds (at reference speed)."""
        scaled = max(0.0, duration) / self.relative_speed
        grant = self._queue.request()
        yield grant
        start = self.env.now
        try:
            if scaled > 0:
                yield self.env.timeout(scaled)
        finally:
            self._queue.release(grant)
        end = self.env.now
        self._correlation += 1
        self.kernel_log.append(KernelEvent(
            name=kernel_name, start=start, end=end, device=self.name,
            correlation_id=self._correlation))
        self.busy_time += end - start
        return self.kernel_log[-1]

    def kernels_between(self, t0: float, t1: float) -> List[KernelEvent]:
        """Kernels whose execution overlaps [t0, t1) — the CUPTI window."""
        return [k for k in self.kernel_log if k.end > t0 and k.start < t1]

    def utilization(self, t0: float, t1: float) -> float:
        """Fraction of [t0, t1) during which the device was executing."""
        window = max(1e-12, t1 - t0)
        busy = sum(min(k.end, t1) - max(k.start, t0)
                   for k in self.kernels_between(t0, t1))
        return min(1.0, busy / window)


def v100(env: Environment, index: int = 0) -> GPUDevice:
    """An NVIDIA V100 (Kebnekaise)."""
    return GPUDevice(env, name=f"GPU:{index}", relative_speed=1.0, memory_gb=16)


def rtx2060(env: Environment, index: int = 0) -> GPUDevice:
    """An NVIDIA RTX 2060 SUPER (Greendog)."""
    return GPUDevice(env, name=f"GPU:{index}", relative_speed=0.45, memory_gb=8)
