"""The TensorFlow-like runtime: one process tying everything together.

A :class:`TFRuntime` owns the simulated process's CPU pool, its GPUs, the
TraceMe recorder, the profiler registry and the handle to the simulated OS
(whose symbol table is the paper's patch target).  Workloads, datasets,
Keras models and the profiler all operate through a runtime instance.
"""

from __future__ import annotations

import json
import os as host_os
from dataclasses import dataclass
from typing import List, Optional

from repro.sim import CPUPool, Environment
from repro.posix import SimulatedOS
from repro.tfmini.device import GPUDevice
from repro.tfmini.profiler.analysis import StepStats, analyze_input_pipeline, build_overview
from repro.tfmini.profiler.session import ProfilerRegistry, ProfilerSession
from repro.tfmini.profiler.traceme import TraceMeRecorder
from repro.tfmini.profiler.xplane import XSpace, write_trace_json


@dataclass
class ProfilerCosts:
    """Cost of serializing the collected profile to the log directory."""

    #: Seconds per exported event (protobuf/JSON serialization + gzip).
    per_exported_event: float = 55e-6


class TFRuntime:
    """One TensorFlow process bound to a simulated OS and devices."""

    def __init__(
        self,
        env: Environment,
        os_image: SimulatedOS,
        cpu_cores: int = 8,
        gpus: Optional[List[GPUDevice]] = None,
        read_buffer_size: int = 1 << 20,
        inter_op_overhead: float = 120e-6,
        name: str = "tensorflow",
    ):
        self.env = env
        self.os = os_image
        self.name = name
        self.cpu = CPUPool(env, cpu_cores, name=f"{name}.cpu")
        self.cpu_cores = cpu_cores
        self.gpus: List[GPUDevice] = list(gpus or [])
        #: Chunk size of the POSIX filesystem plugin's read loop.
        self.read_buffer_size = int(read_buffer_size)
        #: Per-operation scheduling overhead of the executor.
        self.inter_op_overhead = float(inter_op_overhead)
        self.traceme = TraceMeRecorder(env)
        self.profiler_registry = ProfilerRegistry()
        self.profiler_costs = ProfilerCosts()
        self.active_profiler_session: Optional[ProfilerSession] = None
        self.last_profile = None
        #: Step statistics appended by the Keras training loop.
        self.step_stats: List[StepStats] = []
        # Imported lazily to avoid a cycle at module import time.
        from repro.tfmini.filesystem import PosixFileSystem
        self.filesystem = PosixFileSystem(self)

    # -- profiling helpers -------------------------------------------------
    @property
    def profiling_active(self) -> bool:
        """``True`` while a profiler session is running."""
        return (self.active_profiler_session is not None
                and self.active_profiler_session.active)

    def record_step(self, stats: StepStats) -> None:
        """Called by the training loop after every step."""
        self.step_stats.append(stats)

    def input_pipeline_analysis(self, window_start: Optional[float] = None,
                                window_end: Optional[float] = None):
        """TensorFlow-level input-pipeline analysis over a time window."""
        return analyze_input_pipeline(self.step_stats, window_start, window_end)

    def export_profile(self, space: XSpace, logdir: str) -> List[str]:
        """Write trace.json.gz plus the analysis summaries to ``logdir``.

        This is host-side output (real files on the machine running the
        simulation), mirroring what the TensorBoard plugin reads.
        """
        host_os.makedirs(logdir, exist_ok=True)
        written: List[str] = []
        trace_path = host_os.path.join(logdir, "trace.json.gz")
        write_trace_json(space, trace_path)
        written.append(trace_path)

        analysis = analyze_input_pipeline(self.step_stats, space.start_time,
                                          space.end_time)
        overview = build_overview(space, self.step_stats)
        analysis_path = host_os.path.join(logdir, "input_pipeline.json")
        with open(analysis_path, "w") as handle:
            json.dump({
                "num_steps": analysis.num_steps,
                "avg_step_time": analysis.avg_step_time,
                "avg_input_time": analysis.avg_input_time,
                "avg_compute_time": analysis.avg_compute_time,
                "input_percent": analysis.input_percent,
                "classification": analysis.classification,
            }, handle, indent=2)
        written.append(analysis_path)
        overview_path = host_os.path.join(logdir, "overview_page.json")
        with open(overview_path, "w") as handle:
            json.dump({
                "profile_duration": overview.profile_duration,
                "num_steps": overview.num_steps,
                "avg_step_time": overview.avg_step_time,
                "input_percent": overview.input_percent,
                "device_utilization": overview.device_utilization,
                "host_event_count": overview.host_event_count,
                "device_event_count": overview.device_event_count,
            }, handle, indent=2)
        written.append(overview_path)
        return written

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TFRuntime {self.name!r} cores={self.cpu_cores} "
                f"gpus={len(self.gpus)}>")
