"""Keras-like callbacks, including the TensorBoard profiling callback.

The TensorBoard callback's ``profile_batch`` argument is the "automatic"
way of driving the profiler in the paper (Section III-A): profiling starts
at the first batch of the range and stops at the last, after which the
runtime collects data from every registered tracer — including tf-Darshan's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple, Union

from repro.tfmini.profiler.session import (
    ProfilerOptions,
    profiler_start,
    profiler_stop,
)


class Callback:
    """Base class.  Hooks may be plain methods or simulation generators."""

    def __init__(self):
        self.model = None
        self.runtime = None

    def set_context(self, model, runtime) -> None:
        self.model = model
        self.runtime = runtime

    # Hooks (default: do nothing).  Subclasses may return a generator.
    def on_train_begin(self, logs: Optional[dict] = None):  # noqa: D102
        return None

    def on_train_end(self, logs: Optional[dict] = None):  # noqa: D102
        return None

    def on_epoch_begin(self, epoch: int, logs: Optional[dict] = None):  # noqa: D102
        return None

    def on_epoch_end(self, epoch: int, logs: Optional[dict] = None):  # noqa: D102
        return None

    def on_train_batch_begin(self, step: int, logs: Optional[dict] = None):  # noqa: D102
        return None

    def on_train_batch_end(self, step: int, logs: Optional[dict] = None):  # noqa: D102
        return None


class CallbackList:
    """Dispatches hooks to every callback, yielding from generator hooks."""

    def __init__(self, callbacks: Sequence[Callback], model, runtime):
        self.callbacks: List[Callback] = list(callbacks)
        self.model = model
        self.runtime = runtime
        for callback in self.callbacks:
            callback.set_context(model, runtime)

    def append(self, callback: Callback) -> None:
        callback.set_context(self.model, self.runtime)
        self.callbacks.append(callback)

    def _dispatch(self, hook_name: str, *args) -> Generator:
        for callback in self.callbacks:
            result = getattr(callback, hook_name)(*args)
            if result is not None and hasattr(result, "__next__"):
                yield from result

    def on_train_begin(self):
        return self._dispatch("on_train_begin", None)

    def on_train_end(self):
        return self._dispatch("on_train_end", None)

    def on_epoch_begin(self, epoch):
        return self._dispatch("on_epoch_begin", epoch, None)

    def on_epoch_end(self, epoch, logs=None):
        return self._dispatch("on_epoch_end", epoch, logs)

    def on_train_batch_begin(self, step):
        return self._dispatch("on_train_batch_begin", step, None)

    def on_train_batch_end(self, step, logs=None):
        return self._dispatch("on_train_batch_end", step, logs)


class History(Callback):
    """Records per-epoch and per-batch logs (returned by ``fit``)."""

    def __init__(self):
        super().__init__()
        self.epochs: List[dict] = []
        self.batches: List[dict] = []

    def on_train_batch_end(self, step, logs=None):
        if logs:
            self.batches.append(dict(logs))
        return None

    def on_epoch_end(self, epoch, logs=None):
        if logs:
            self.epochs.append(dict(logs))
        return None

    @property
    def final_loss(self) -> Optional[float]:
        if self.epochs:
            return self.epochs[-1].get("loss")
        return None


class ModelCheckpoint(Callback):
    """Write a checkpoint every ``save_freq`` steps (or every epoch)."""

    def __init__(self, filepath: str, save_freq: Union[int, str] = "epoch",
                 keep_all: bool = True):
        super().__init__()
        self.filepath = filepath
        self.save_freq = save_freq
        self.keep_all = keep_all
        self.saves: List = []
        self._writer = None

    def _ensure_writer(self):
        from repro.tfmini.keras.checkpoint import CheckpointWriter
        if self._writer is None:
            self._writer = CheckpointWriter(self.runtime)
        return self._writer

    def _save(self, token: int) -> Generator:
        writer = self._ensure_writer()
        path = self.filepath.format(epoch=token, step=token)
        info = yield from writer.save(self.model, path)
        self.saves.append(info)

    def on_train_batch_end(self, step, logs=None):
        if isinstance(self.save_freq, int) and (step + 1) % self.save_freq == 0:
            return self._save(step + 1)
        return None

    def on_epoch_end(self, epoch, logs=None):
        if self.save_freq == "epoch":
            return self._save(epoch + 1)
        return None


class TensorBoard(Callback):
    """TensorBoard callback with ``profile_batch`` profiling support.

    ``profile_batch`` uses Keras' 1-based batch numbering and may be a single
    batch or an inclusive ``(start, stop)`` range — exactly one range per
    training run, as the paper notes.
    """

    def __init__(self, log_dir: str, profile_batch: Union[int, Tuple[int, int]] = 2,
                 profiler_options: Optional[ProfilerOptions] = None):
        super().__init__()
        self.log_dir = log_dir
        if isinstance(profile_batch, int):
            self.profile_range = (profile_batch, profile_batch)
        else:
            self.profile_range = (int(profile_batch[0]), int(profile_batch[1]))
        if self.profile_range[0] > self.profile_range[1]:
            raise ValueError("profile_batch range must be increasing")
        self.profiler_options = profiler_options
        self.profile_result = None
        self._profiling = False

    def on_train_batch_begin(self, step, logs=None):
        start_batch = self.profile_range[0]
        if start_batch > 0 and (step + 1) == start_batch and not self._profiling:
            return self._start_profiler()
        return None

    def on_train_batch_end(self, step, logs=None):
        stop_batch = self.profile_range[1]
        if self._profiling and (step + 1) >= stop_batch:
            return self._stop_profiler()
        return None

    def on_train_end(self, logs=None):
        if self._profiling:
            return self._stop_profiler()
        return None

    def _start_profiler(self) -> Generator:
        options = self.profiler_options or ProfilerOptions(logdir=self.log_dir)
        if options.logdir is None:
            options.logdir = self.log_dir
        yield from profiler_start(self.runtime, logdir=self.log_dir,
                                  options=options)
        self._profiling = True

    def _stop_profiler(self) -> Generator:
        self._profiling = False
        self.profile_result = yield from profiler_stop(self.runtime)
