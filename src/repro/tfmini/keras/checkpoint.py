"""TensorFlow-style checkpointing through buffered STDIO writes.

A checkpoint consists of a data file holding every variable's serialized
content plus a small index file.  TensorFlow's POSIX filesystem writes both
through ``fwrite``, which is why the paper's Fig. 6 shows checkpoint traffic
on Darshan's STDIO layer (~1 400 ``fwrite`` calls for ten AlexNet
checkpoints).  The writer chunks large tensors so the number of ``fwrite``
calls scales with the model size the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.posix.simbytes import SimBytes


@dataclass
class CheckpointInfo:
    """Result of writing one checkpoint."""

    path: str
    data_file: str
    index_file: str
    bytes_written: int
    fwrite_calls: int
    elapsed: float


class CheckpointWriter:
    """Writes model variables the way ``tf.train.Checkpoint`` does."""

    #: Tensors are appended in chunks of this many bytes.
    WRITE_CHUNK = 2 << 20
    #: Size of the per-variable header entry in the data file.
    HEADER_BYTES = 256
    #: Size of the serialized index blob.
    INDEX_BYTES = 4096

    def __init__(self, runtime):
        self.runtime = runtime
        self.checkpoints: List[CheckpointInfo] = []

    def save(self, model, path: str) -> Generator:
        """Write one checkpoint of ``model`` at ``path`` (a path prefix)."""
        env = self.runtime.env
        start = env.now
        data_file = f"{path}.data-00000-of-00001"
        index_file = f"{path}.index"
        fwrites = 0
        bytes_written = 0

        handle = yield from self.runtime.filesystem.new_writable_file(data_file)
        for variable in model.variables:
            yield from handle.append(SimBytes(self.HEADER_BYTES))
            fwrites += 1
            bytes_written += self.HEADER_BYTES
            remaining = variable.nbytes
            while remaining > 0:
                chunk = min(self.WRITE_CHUNK, remaining)
                yield from handle.append(SimBytes(chunk))
                fwrites += 1
                bytes_written += chunk
                remaining -= chunk
        yield from handle.flush()
        yield from handle.close()

        index_handle = yield from self.runtime.filesystem.new_writable_file(index_file)
        yield from index_handle.append(SimBytes(self.INDEX_BYTES))
        yield from index_handle.append(SimBytes(64))
        fwrites += 2
        bytes_written += self.INDEX_BYTES + 64
        yield from index_handle.close()

        info = CheckpointInfo(
            path=path, data_file=data_file, index_file=index_file,
            bytes_written=bytes_written, fwrite_calls=fwrites,
            elapsed=env.now - start)
        self.checkpoints.append(info)
        self.runtime.traceme.record("SaveCheckpoint", start, env.now,
                                    thread="host", path=path,
                                    bytes=bytes_written)
        return info


class CheckpointManager:
    """Keeps the most recent ``max_to_keep`` checkpoints, like TF's manager."""

    def __init__(self, runtime, directory: str, max_to_keep: Optional[int] = 5):
        self.runtime = runtime
        self.directory = directory.rstrip("/")
        self.max_to_keep = max_to_keep
        self.writer = CheckpointWriter(runtime)
        self._saved: List[CheckpointInfo] = []
        self._counter = 0

    @property
    def checkpoints(self) -> List[str]:
        return [info.path for info in self._saved]

    def save(self, model) -> Generator:
        """Write the next numbered checkpoint and prune old ones."""
        self._counter += 1
        path = f"{self.directory}/ckpt-{self._counter}"
        info = yield from self.writer.save(model, path)
        self._saved.append(info)
        while (self.max_to_keep is not None
               and len(self._saved) > self.max_to_keep):
            old = self._saved.pop(0)
            for victim in (old.data_file, old.index_file):
                if self.runtime.os.vfs.exists(victim):
                    yield from self.runtime.os.call("unlink", victim)
        return info
