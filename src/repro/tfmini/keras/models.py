"""Keras-like models with explicit compute cost models.

Only two things about a model matter to the reproduction: how many bytes its
variables occupy (checkpoint size, Fig. 6) and how long one training step
keeps the GPU busy (the compute side of the input-bound analysis).  The two
models of the paper are provided: AlexNet for ImageNet classification and a
small two-layer CNN for the malware detection case study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

from repro.sim import Environment
from repro.tfmini.data.dataset import Batch, DatasetIterator, OutOfRangeError
from repro.tfmini.device import GPUDevice
from repro.tfmini.profiler.analysis import StepStats


@dataclass(frozen=True)
class Variable:
    """A trainable variable: name, shape and element size."""

    name: str
    shape: Tuple[int, ...]
    dtype_size: int = 4

    @property
    def num_elements(self) -> int:
        n = 1
        for dim in self.shape:
            n *= int(dim)
        return n

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.dtype_size


@dataclass
class TrainingConfig:
    """Optimizer settings (the paper uses plain SGD for both use cases)."""

    optimizer: str = "sgd"
    learning_rate: float = 0.01
    momentum: float = 0.0
    loss: str = "categorical_crossentropy"


class Model:
    """Base class: variables + a per-step GPU cost model + the fit loop."""

    #: Seconds of GPU time per sample (subclasses override).
    per_sample_gpu_time: float = 1e-4
    #: Relative durations of the kernels that make up one step.
    kernel_profile: Sequence[Tuple[str, float]] = (("forward", 0.6),
                                                   ("backward", 0.4))
    #: Host-side work per step (optimizer bookkeeping, kernel launches).
    host_step_overhead: float = 1.5e-3
    #: Bandwidth of the gradient all-reduce between GPUs (NCCL over PCIe).
    allreduce_bandwidth: float = 20e9

    def __init__(self, name: str, variables: Sequence[Variable],
                 config: Optional[TrainingConfig] = None):
        self.name = name
        self.variables: List[Variable] = list(variables)
        self.config = config or TrainingConfig()
        self.compiled = False
        self.history: Optional["History"] = None

    # -- introspection -------------------------------------------------------
    def parameter_count(self) -> int:
        """Total number of trainable parameters."""
        return sum(v.num_elements for v in self.variables)

    def variables_nbytes(self) -> int:
        """Bytes occupied by all variables (the checkpoint payload size)."""
        return sum(v.nbytes for v in self.variables)

    def compile(self, optimizer: str = "sgd", learning_rate: float = 0.01,
                momentum: float = 0.0,
                loss: str = "categorical_crossentropy") -> None:
        """Record the training configuration (mirrors ``model.compile``)."""
        self.config = TrainingConfig(optimizer=optimizer,
                                     learning_rate=learning_rate,
                                     momentum=momentum, loss=loss)
        self.compiled = True

    # -- compute cost model ------------------------------------------------------
    def step_kernels(self, per_gpu_batch: int) -> List[Tuple[str, float]]:
        """(kernel name, duration) pairs of one training step on one GPU."""
        total = self.per_sample_gpu_time * max(1, per_gpu_batch)
        weight_sum = sum(w for _, w in self.kernel_profile)
        return [(f"{self.name}/{kernel}", total * weight / weight_sum)
                for kernel, weight in self.kernel_profile]

    def _train_step(self, runtime, batch: Batch) -> Generator:
        """Execute one optimization step on the runtime's GPUs."""
        env: Environment = runtime.env
        gpus: List[GPUDevice] = runtime.gpus
        start = env.now
        if self.host_step_overhead > 0:
            yield env.timeout(self.host_step_overhead)
        if gpus:
            per_gpu = max(1, int(math.ceil(batch.size / len(gpus))))
            replicas = []
            for gpu in gpus:
                replicas.append(env.process(
                    self._run_replica(gpu, per_gpu)))
            yield env.all_of(replicas)
            if len(gpus) > 1:
                # Ring all-reduce of the gradients: 2(N-1)/N of the payload.
                payload = self.variables_nbytes() * 2 * (len(gpus) - 1) / len(gpus)
                yield env.timeout(payload / self.allreduce_bandwidth)
        else:
            # CPU-only training: charge the work to the CPU pool.
            yield runtime.cpu.compute(self.per_sample_gpu_time * batch.size * 4)
        runtime.traceme.record("train_step", start, env.now, thread="host",
                               batch_size=batch.size)

    def _run_replica(self, gpu: GPUDevice, per_gpu_batch: int) -> Generator:
        for kernel, duration in self.step_kernels(per_gpu_batch):
            yield from gpu.launch(kernel, duration)

    # -- training loop -------------------------------------------------------------
    def fit(self, runtime, dataset, steps_per_epoch: int, epochs: int = 1,
            callbacks: Sequence = ()) -> Generator:
        """Run the Keras-style training loop; returns a :class:`History`.

        This is a simulation generator: drive it with ``env.process``.
        """
        from repro.tfmini.keras.callbacks import CallbackList, History

        callback_list = CallbackList(callbacks, model=self, runtime=runtime)
        history = History()
        callback_list.append(history)
        self.history = history

        yield from callback_list.on_train_begin()
        iterator: DatasetIterator = dataset.make_iterator(runtime)
        global_step = 0
        for epoch in range(epochs):
            yield from callback_list.on_epoch_begin(epoch)
            epoch_start = runtime.env.now
            steps_done = 0
            for step in range(steps_per_epoch):
                yield from callback_list.on_train_batch_begin(global_step)
                step_start = runtime.env.now
                try:
                    batch = yield from iterator.get_next()
                except OutOfRangeError:
                    break
                input_time = runtime.env.now - step_start
                compute_start = runtime.env.now
                yield from self._train_step(runtime, batch)
                compute_time = runtime.env.now - compute_start
                step_end = runtime.env.now
                stats = StepStats(step=global_step, start=step_start,
                                  end=step_end, input_time=input_time,
                                  compute_time=compute_time)
                runtime.record_step(stats)
                logs = {
                    "step": global_step,
                    "batch_size": batch.size,
                    "input_time": input_time,
                    "compute_time": compute_time,
                    "loss": self._synthetic_loss(global_step),
                }
                yield from callback_list.on_train_batch_end(global_step, logs)
                global_step += 1
                steps_done += 1
            epoch_logs = {
                "epoch": epoch,
                "steps": steps_done,
                "epoch_time": runtime.env.now - epoch_start,
                "loss": self._synthetic_loss(global_step),
            }
            yield from callback_list.on_epoch_end(epoch, epoch_logs)
        yield from callback_list.on_train_end()
        iterator.cancel()
        return history

    def _synthetic_loss(self, step: int) -> float:
        """A smooth, decreasing stand-in for the training loss."""
        return float(2.5 * math.exp(-step / 250.0) + 0.3)


# ---------------------------------------------------------------------------
# The two models used in the paper's case studies
# ---------------------------------------------------------------------------

def _alexnet_variables(num_classes: int = 1000) -> List[Variable]:
    """Standard AlexNet layer shapes (~61 M parameters)."""
    return [
        Variable("conv1/kernel", (11, 11, 3, 96)),
        Variable("conv1/bias", (96,)),
        Variable("conv2/kernel", (5, 5, 96, 256)),
        Variable("conv2/bias", (256,)),
        Variable("conv3/kernel", (3, 3, 256, 384)),
        Variable("conv3/bias", (384,)),
        Variable("conv4/kernel", (3, 3, 384, 384)),
        Variable("conv4/bias", (384,)),
        Variable("conv5/kernel", (3, 3, 384, 256)),
        Variable("conv5/bias", (256,)),
        Variable("fc6/kernel", (9216, 4096)),
        Variable("fc6/bias", (4096,)),
        Variable("fc7/kernel", (4096, 4096)),
        Variable("fc7/bias", (4096,)),
        Variable("fc8/kernel", (4096, num_classes)),
        Variable("fc8/bias", (num_classes,)),
    ]


class AlexNet(Model):
    """AlexNet trained on ImageNet (the paper's image classification case)."""

    per_sample_gpu_time = 0.45e-3
    kernel_profile = (
        ("conv_forward", 0.22),
        ("fc_forward", 0.13),
        ("loss", 0.05),
        ("fc_backward", 0.2),
        ("conv_backward", 0.3),
        ("apply_gradients", 0.1),
    )

    def __init__(self, num_classes: int = 1000):
        super().__init__("alexnet", _alexnet_variables(num_classes))


def _malware_cnn_variables(num_classes: int = 9,
                           image_side: int = 256) -> List[Variable]:
    """A small two-layer CNN over grayscale bytecode images."""
    flat = (image_side // 4) * (image_side // 4) * 32
    return [
        Variable("conv1/kernel", (3, 3, 1, 16)),
        Variable("conv1/bias", (16,)),
        Variable("conv2/kernel", (3, 3, 16, 32)),
        Variable("conv2/bias", (32,)),
        Variable("dense/kernel", (flat, 64)),
        Variable("dense/bias", (64,)),
        Variable("logits/kernel", (64, num_classes)),
        Variable("logits/bias", (num_classes,)),
    ]


class MalwareCNN(Model):
    """Two-layer CNN for the Kaggle BIG-2015 malware classification case."""

    per_sample_gpu_time = 0.16e-3
    kernel_profile = (
        ("conv_forward", 0.3),
        ("dense_forward", 0.15),
        ("loss", 0.05),
        ("dense_backward", 0.15),
        ("conv_backward", 0.25),
        ("apply_gradients", 0.1),
    )

    def __init__(self, num_classes: int = 9, image_side: int = 256):
        super().__init__("malware_cnn",
                         _malware_cnn_variables(num_classes, image_side))
