"""Keras-like training API: models, callbacks and checkpointing."""

from repro.tfmini.keras.callbacks import (
    Callback,
    CallbackList,
    History,
    ModelCheckpoint,
    TensorBoard,
)
from repro.tfmini.keras.checkpoint import (
    CheckpointInfo,
    CheckpointManager,
    CheckpointWriter,
)
from repro.tfmini.keras.models import (
    AlexNet,
    MalwareCNN,
    Model,
    TrainingConfig,
    Variable,
)

__all__ = [
    "AlexNet",
    "Callback",
    "CallbackList",
    "CheckpointInfo",
    "CheckpointManager",
    "CheckpointWriter",
    "History",
    "MalwareCNN",
    "Model",
    "ModelCheckpoint",
    "TensorBoard",
    "TrainingConfig",
    "Variable",
]
