"""XSpace-like profile containers and Chrome trace-event export.

The TensorFlow runtime gathers what every tracer collected into an
``XSpace`` protobuf with one ``XPlane`` per data source (host CPU, each GPU,
and — with tf-Darshan — a POSIX I/O plane), each holding named ``XLine``
timelines of ``XEvent`` spans.  TensorBoard's TraceViewer consumes the
derived ``trace.json.gz`` in the Chrome trace-event format.  The
reproduction keeps the same three layers: dataclass containers, a dict
serialization, and a gzip-compressed Chrome trace export.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class XEvent:
    """One span on a timeline."""

    name: str
    start: float
    duration: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def as_dict(self) -> dict:
        return {"name": self.name, "start": self.start,
                "duration": self.duration, "metadata": dict(self.metadata)}


@dataclass
class XLine:
    """One named timeline (a thread, a GPU stream, or one file)."""

    name: str
    events: List[XEvent] = field(default_factory=list)

    def add(self, event: XEvent) -> None:
        self.events.append(event)

    @property
    def event_count(self) -> int:
        return len(self.events)

    def as_dict(self) -> dict:
        return {"name": self.name, "events": [e.as_dict() for e in self.events]}


@dataclass
class XPlane:
    """All timelines contributed by one data source (one tracer)."""

    name: str
    lines: Dict[str, XLine] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)

    def line(self, name: str) -> XLine:
        if name not in self.lines:
            self.lines[name] = XLine(name)
        return self.lines[name]

    @property
    def event_count(self) -> int:
        return sum(line.event_count for line in self.lines.values())

    def as_dict(self) -> dict:
        return {"name": self.name,
                "lines": {k: v.as_dict() for k, v in self.lines.items()},
                "stats": dict(self.stats)}


@dataclass
class XSpace:
    """The complete collected profile."""

    planes: Dict[str, XPlane] = field(default_factory=dict)
    #: Simulated time window the profile covers.
    start_time: float = 0.0
    end_time: float = 0.0

    def plane(self, name: str) -> XPlane:
        if name not in self.planes:
            self.planes[name] = XPlane(name)
        return self.planes[name]

    def find_plane(self, name: str) -> Optional[XPlane]:
        return self.planes.get(name)

    @property
    def event_count(self) -> int:
        return sum(plane.event_count for plane in self.planes.values())

    def as_dict(self) -> dict:
        return {
            "start_time": self.start_time,
            "end_time": self.end_time,
            "planes": {k: v.as_dict() for k, v in self.planes.items()},
        }


# -- Chrome trace-event export ---------------------------------------------------

def to_trace_events(space: XSpace) -> List[dict]:
    """Flatten an XSpace into Chrome trace-event dictionaries.

    Timestamps are expressed in microseconds relative to the profile start,
    which is what the TraceViewer expects.
    """
    events: List[dict] = []
    pid = 0
    for plane_name in sorted(space.planes):
        plane = space.planes[plane_name]
        pid += 1
        events.append({"ph": "M", "pid": pid, "name": "process_name",
                       "args": {"name": plane_name}})
        tid = 0
        for line_name in sorted(plane.lines):
            line = plane.lines[line_name]
            tid += 1
            events.append({"ph": "M", "pid": pid, "tid": tid,
                           "name": "thread_name", "args": {"name": line_name}})
            for event in line.events:
                events.append({
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "name": event.name,
                    "ts": (event.start - space.start_time) * 1e6,
                    "dur": event.duration * 1e6,
                    "args": dict(event.metadata),
                })
    return events


def write_trace_json(space: XSpace, path: str) -> str:
    """Write the gzip-compressed ``trace.json.gz`` TensorBoard consumes."""
    payload = json.dumps({"traceEvents": to_trace_events(space)}).encode()
    with gzip.open(path, "wb") as handle:
        handle.write(payload)
    return path


def read_trace_json(path: str) -> List[dict]:
    """Read back a ``trace.json.gz`` file (used by tests and examples)."""
    with gzip.open(path, "rb") as handle:
        return json.loads(handle.read().decode())["traceEvents"]
