"""TensorFlow-Profiler-like infrastructure: tracers, sessions, analyses."""

from repro.tfmini.profiler.analysis import (
    InputPipelineAnalysis,
    OverviewPage,
    StepStats,
    analyze_input_pipeline,
    build_overview,
    classify_input_bound,
)
from repro.tfmini.profiler.session import (
    ProfileResult,
    ProfilerOptions,
    ProfilerRegistry,
    ProfilerServer,
    ProfilerSession,
    profiler_start,
    profiler_stop,
)
from repro.tfmini.profiler.traceme import TraceMeEvent, TraceMeRecorder
from repro.tfmini.profiler.tracers import (
    GPU_PLANE_PREFIX,
    HOST_PLANE_NAME,
    DeviceTracer,
    HostTracer,
    ProfilerInterface,
    TracerCosts,
)
from repro.tfmini.profiler.xplane import (
    XEvent,
    XLine,
    XPlane,
    XSpace,
    read_trace_json,
    to_trace_events,
    write_trace_json,
)

__all__ = [
    "DeviceTracer",
    "GPU_PLANE_PREFIX",
    "HOST_PLANE_NAME",
    "HostTracer",
    "InputPipelineAnalysis",
    "OverviewPage",
    "ProfileResult",
    "ProfilerInterface",
    "ProfilerOptions",
    "ProfilerRegistry",
    "ProfilerServer",
    "ProfilerSession",
    "StepStats",
    "TraceMeEvent",
    "TraceMeRecorder",
    "TracerCosts",
    "XEvent",
    "XLine",
    "XPlane",
    "XSpace",
    "analyze_input_pipeline",
    "build_overview",
    "classify_input_bound",
    "profiler_start",
    "profiler_stop",
    "read_trace_json",
    "to_trace_events",
    "write_trace_json",
]
