"""TraceMe recorder: host-side activity tracing.

TensorFlow annotates host work with ``TraceMe`` objects; while a profiling
session is active the recorder keeps the events, and the host tracer turns
them into the trace the TensorBoard TraceViewer shows.  The recorder is
always installed but only records while started, so instrumentation is free
when profiling is off — mirroring the real implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.sim import Environment


@dataclass(frozen=True)
class TraceMeEvent:
    """One host activity span."""

    name: str
    start: float
    end: float
    thread: str = "host"
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceMeRecorder:
    """Collects :class:`TraceMeEvent` objects while recording is active."""

    def __init__(self, env: Environment):
        self.env = env
        self._active = False
        self._events: List[TraceMeEvent] = []
        #: Events recorded since the recorder was created (for statistics).
        self.total_recorded = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        """Begin recording host events."""
        self._active = True

    def stop(self) -> None:
        """Stop recording host events (already recorded events are kept)."""
        self._active = False

    def consume(self) -> List[TraceMeEvent]:
        """Return and clear the recorded events (called by the host tracer)."""
        events, self._events = self._events, []
        return events

    def pending_events(self) -> int:
        return len(self._events)

    # -- recording --------------------------------------------------------------
    def record(self, name: str, start: float, end: float, thread: str = "host",
               **metadata: Any) -> None:
        """Record one completed span (no-op while inactive)."""
        if not self._active:
            return
        self._events.append(TraceMeEvent(name=name, start=start, end=end,
                                         thread=thread, metadata=dict(metadata)))
        self.total_recorded += 1

    def trace(self, name: str, generator: Generator, thread: str = "host",
              **metadata: Any) -> Generator:
        """Run ``generator`` and record its span (use with ``yield from``)."""
        start = self.env.now
        result = yield from generator
        self.record(name, start, self.env.now, thread=thread, **metadata)
        return result
