"""Profile analyses: overview page and input-pipeline analyzer.

These are the TensorBoard Profile-plugin analyses the paper starts from: the
overview page's step-time breakdown ("96 % of the sampled step time is
waiting for input data") and the input-pipeline analysis.  tf-Darshan
*extends* the input-pipeline analysis with POSIX-level statistics — that
extension lives in :mod:`repro.core.tensorboard`; the TensorFlow-level part
lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class StepStats:
    """Timing of one training step, recorded by the Keras training loop."""

    step: int
    start: float
    end: float
    input_time: float
    compute_time: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def other_time(self) -> float:
        return max(0.0, self.duration - self.input_time - self.compute_time)


@dataclass
class InputPipelineAnalysis:
    """Step-time breakdown over a profiling window."""

    num_steps: int
    avg_step_time: float
    avg_input_time: float
    avg_compute_time: float
    avg_other_time: float
    input_percent: float
    classification: str
    per_step: List[StepStats] = field(default_factory=list)

    def summary(self) -> str:
        """Text rendering of the analysis (what the dashboard displays)."""
        lines = [
            "Input-pipeline analysis",
            "-----------------------",
            f"steps analysed        : {self.num_steps}",
            f"average step time     : {self.avg_step_time * 1e3:.1f} ms",
            f"  waiting for input   : {self.avg_input_time * 1e3:.1f} ms"
            f" ({self.input_percent:.1f} %)",
            f"  device compute      : {self.avg_compute_time * 1e3:.1f} ms",
            f"  other host work     : {self.avg_other_time * 1e3:.1f} ms",
            f"conclusion            : {self.classification}",
        ]
        return "\n".join(lines)


def classify_input_bound(input_percent: float) -> str:
    """TensorFlow Profiler's wording for how input-bound a program is."""
    if input_percent >= 50.0:
        return "Your program is HIGHLY input-bound"
    if input_percent >= 20.0:
        return "Your program is MODERATELY input-bound"
    if input_percent >= 5.0:
        return "Your program is slightly input-bound"
    return "Your program is NOT input-bound"


def analyze_input_pipeline(step_stats: List[StepStats],
                           window_start: Optional[float] = None,
                           window_end: Optional[float] = None
                           ) -> InputPipelineAnalysis:
    """Compute the step-time breakdown for steps inside the profile window."""
    selected = [
        s for s in step_stats
        if (window_start is None or s.end > window_start)
        and (window_end is None or s.start < window_end)
    ]
    if not selected:
        return InputPipelineAnalysis(
            num_steps=0, avg_step_time=0.0, avg_input_time=0.0,
            avg_compute_time=0.0, avg_other_time=0.0, input_percent=0.0,
            classification="no steps profiled", per_step=[])
    durations = np.array([s.duration for s in selected])
    inputs = np.array([s.input_time for s in selected])
    computes = np.array([s.compute_time for s in selected])
    others = np.array([s.other_time for s in selected])
    avg_step = float(durations.mean())
    input_percent = float(100.0 * inputs.sum() / max(durations.sum(), 1e-12))
    return InputPipelineAnalysis(
        num_steps=len(selected),
        avg_step_time=avg_step,
        avg_input_time=float(inputs.mean()),
        avg_compute_time=float(computes.mean()),
        avg_other_time=float(others.mean()),
        input_percent=input_percent,
        classification=classify_input_bound(input_percent),
        per_step=list(selected),
    )


@dataclass
class OverviewPage:
    """The Profile plugin's overview page."""

    profile_duration: float
    num_steps: int
    avg_step_time: float
    input_percent: float
    device_utilization: Dict[str, float]
    host_event_count: int
    device_event_count: int
    top_host_ops: List[tuple] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            "Overview",
            "--------",
            f"profile duration      : {self.profile_duration:.3f} s",
            f"steps profiled        : {self.num_steps}",
            f"average step time     : {self.avg_step_time * 1e3:.1f} ms",
            f"input-bound fraction  : {self.input_percent:.1f} %",
        ]
        for device, util in sorted(self.device_utilization.items()):
            lines.append(f"utilization {device:<10}: {util * 100:.1f} %")
        if self.top_host_ops:
            lines.append("top host operations   :")
            for name, total in self.top_host_ops:
                lines.append(f"  {name:<30} {total * 1e3:10.1f} ms")
        return "\n".join(lines)


def build_overview(xspace, step_stats: List[StepStats]) -> OverviewPage:
    """Assemble the overview page from the collected XSpace and step stats."""
    from repro.tfmini.profiler.tracers import GPU_PLANE_PREFIX, HOST_PLANE_NAME

    analysis = analyze_input_pipeline(step_stats, xspace.start_time,
                                      xspace.end_time)
    host_plane = xspace.find_plane(HOST_PLANE_NAME)
    host_events = host_plane.event_count if host_plane else 0
    device_events = 0
    utilization: Dict[str, float] = {}
    for name, plane in xspace.planes.items():
        if name.startswith(GPU_PLANE_PREFIX):
            device_events += plane.event_count
            utilization[name] = float(plane.stats.get("device_utilization", 0.0))

    top_ops: Dict[str, float] = {}
    if host_plane:
        for line in host_plane.lines.values():
            for event in line.events:
                top_ops[event.name] = top_ops.get(event.name, 0.0) + event.duration
    top_sorted = sorted(top_ops.items(), key=lambda kv: kv[1], reverse=True)[:5]

    return OverviewPage(
        profile_duration=xspace.end_time - xspace.start_time,
        num_steps=analysis.num_steps,
        avg_step_time=analysis.avg_step_time,
        input_percent=analysis.input_percent,
        device_utilization=utilization,
        host_event_count=host_events,
        device_event_count=device_events,
        top_host_ops=top_sorted,
    )
