"""Profiler sessions, tracer registry and the ``tf.profiler``-style API.

Three ways of driving the profiler exist in TensorFlow 2.2 and all three are
supported by the reproduction (Section III-A of the paper):

* **automatically** through the Keras ``TensorBoard`` callback's
  ``profile_batch`` range,
* **manually** through ``profiler_start()`` / ``profiler_stop()``
  (``tf.profiler.experimental.start/stop``), and
* **interactively** through :class:`ProfilerServer`, which models the
  TensorBoard "capture profile" button triggering a bounded session.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.tfmini.profiler.tracers import DeviceTracer, HostTracer, ProfilerInterface
from repro.tfmini.profiler.xplane import XSpace, write_trace_json


@dataclass
class ProfilerOptions:
    """Options of one profiling session."""

    host_tracer: bool = True
    device_tracer: bool = True
    #: Export trace.json.gz and the analysis protos to the log directory
    #: (None keeps the profile in memory only — the "lite" mode the manual
    #: STREAM validation uses).
    logdir: Optional[str] = None


@dataclass
class ProfileResult:
    """What a profiling session produced."""

    xspace: XSpace
    start_time: float
    end_time: float
    logdir: Optional[str] = None
    exported_files: List[str] = field(default_factory=list)
    tracer_data: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class ProfilerRegistry:
    """Registry of tracer factories, one per profiler implementation."""

    def __init__(self):
        self._factories: List[Callable[[object], ProfilerInterface]] = []

    def register(self, factory: Callable[[object], ProfilerInterface]) -> None:
        """Register a factory called with the runtime at session start."""
        self._factories.append(factory)

    def unregister(self, factory) -> None:
        self._factories.remove(factory)

    def create_tracers(self, runtime, options: ProfilerOptions
                       ) -> List[ProfilerInterface]:
        tracers: List[ProfilerInterface] = []
        if options.host_tracer:
            tracers.append(HostTracer(runtime))
        if options.device_tracer and runtime.gpus:
            tracers.append(DeviceTracer(runtime))
        for factory in self._factories:
            try:
                tracers.append(factory(runtime, options))
            except TypeError:
                tracers.append(factory(runtime))
        return tracers


class ProfilerSession:
    """One start→stop profiling window."""

    def __init__(self, runtime, options: Optional[ProfilerOptions] = None):
        self.runtime = runtime
        self.env = runtime.env
        self.options = options or ProfilerOptions()
        self.tracers = runtime.profiler_registry.create_tracers(runtime, self.options)
        self.start_time: Optional[float] = None
        self.result: Optional[ProfileResult] = None
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> Generator:
        """Start every tracer."""
        if self._active:
            raise RuntimeError("profiler session already started")
        self.start_time = self.env.now
        for tracer in self.tracers:
            yield from tracer.start()
        self._active = True

    def stop(self) -> Generator:
        """Stop tracers, collect their data and export if requested.

        Returns a :class:`ProfileResult`.  The collection/export work is
        charged to the simulated clock — this is the moment the paper
        identifies as the dominant source of tf-Darshan overhead.
        """
        if not self._active:
            raise RuntimeError("profiler session is not running")
        self._active = False
        for tracer in self.tracers:
            yield from tracer.stop()
        space = XSpace(start_time=self.start_time, end_time=self.env.now)
        result = ProfileResult(xspace=space, start_time=self.start_time,
                               end_time=self.env.now, logdir=self.options.logdir)
        for tracer in self.tracers:
            yield from tracer.collect_data(space)
            data = getattr(tracer, "last_collected", None)
            if data is not None:
                result.tracer_data[tracer.name] = data
        if self.options.logdir is not None:
            exported = self.runtime.export_profile(space, self.options.logdir)
            result.exported_files.extend(exported)
            # Serialization cost proportional to the exported volume.
            yield self.env.timeout(self.runtime.profiler_costs.per_exported_event
                                   * space.event_count)
        self.result = result
        self.runtime.last_profile = result
        return result


class ProfilerServer:
    """Interactive profiling: TensorBoard connects and captures a window.

    ``tf.profiler.experimental.server.start(port)`` in real TensorFlow opens
    a gRPC service; TensorBoard's "capture profile" then runs a bounded
    session.  The reproduction models the capture request as a simulated
    process that profiles for ``duration`` seconds.
    """

    def __init__(self, runtime, port: int = 6009):
        self.runtime = runtime
        self.port = port
        self.captures: List[ProfileResult] = []

    def capture(self, duration: float,
                options: Optional[ProfilerOptions] = None) -> Generator:
        """Profile for ``duration`` simulated seconds and return the result."""
        session = ProfilerSession(self.runtime, options)
        yield from session.start()
        yield self.runtime.env.timeout(duration)
        result = yield from session.stop()
        self.captures.append(result)
        return result


# -- module-level API mirroring tf.profiler.experimental -------------------------

def profiler_start(runtime, logdir: Optional[str] = None,
                   options: Optional[ProfilerOptions] = None) -> Generator:
    """Start a global profiling session on the runtime (manual mode)."""
    if runtime.active_profiler_session is not None:
        raise RuntimeError("a profiler session is already active")
    opts = options or ProfilerOptions(logdir=logdir)
    if logdir is not None:
        opts.logdir = logdir
    session = ProfilerSession(runtime, opts)
    yield from session.start()
    runtime.active_profiler_session = session
    return session


def profiler_stop(runtime) -> Generator:
    """Stop the global profiling session and return its result."""
    session = runtime.active_profiler_session
    if session is None:
        raise RuntimeError("no active profiler session")
    runtime.active_profiler_session = None
    result = yield from session.stop()
    return result
