"""Profiler tracer interface plus the two built-in tracers.

TensorFlow 2.2's profiler is organised around a ``ProfilerInterface`` with
``Start`` / ``Stop`` / ``CollectData``; the runtime instantiates every
registered tracer factory when a profiling session begins (Fig. 1 of the
paper).  The two tracers TensorFlow ships are reproduced here — the host
tracer fed by the TraceMe recorder and the CUPTI-style device tracer fed by
the GPU kernel logs — and tf-Darshan's ``DarshanTracer`` (in
:mod:`repro.core.tracer`) plugs into the same registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.tfmini.profiler.xplane import XEvent, XSpace

#: Plane names used by the built-in tracers (mirroring TF's naming scheme).
HOST_PLANE_NAME = "/host:CPU"
GPU_PLANE_PREFIX = "/device:GPU"


@dataclass
class TracerCosts:
    """Simulated cost of profiler data handling (the TF Profiler overhead)."""

    #: Per host event: recording bookkeeping charged at collection time.
    per_host_event: float = 80e-6
    #: Per device (CUPTI) event processed at collection time.
    per_device_event: float = 12e-6
    #: Fixed cost of starting or stopping one tracer.
    per_session: float = 2e-3


class ProfilerInterface:
    """Base class all tracers implement (Start / Stop / CollectData)."""

    name = "tracer"

    def start(self) -> Generator:
        """Begin collecting.  Simulation generator (may cost time)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def stop(self) -> Generator:
        """Stop collecting."""
        raise NotImplementedError
        yield  # pragma: no cover

    def collect_data(self, space: XSpace) -> Generator:
        """Export what was collected into the XSpace."""
        raise NotImplementedError
        yield  # pragma: no cover


class HostTracer(ProfilerInterface):
    """Collects host activity from the TraceMe recorder."""

    name = "host_tracer"

    def __init__(self, runtime, costs: Optional[TracerCosts] = None):
        self.runtime = runtime
        self.env = runtime.env
        self.costs = costs or TracerCosts()
        self._events = []
        self._running = False

    def start(self) -> Generator:
        yield self.env.timeout(self.costs.per_session)
        self.runtime.traceme.start()
        self._running = True

    def stop(self) -> Generator:
        if self._running:
            self.runtime.traceme.stop()
            self._events = self.runtime.traceme.consume()
            self._running = False
        yield self.env.timeout(self.costs.per_session)

    def collect_data(self, space: XSpace) -> Generator:
        events = self._events
        self._events = []
        yield self.env.timeout(self.costs.per_host_event * len(events))
        plane = space.plane(HOST_PLANE_NAME)
        for event in events:
            plane.line(event.thread).add(XEvent(
                name=event.name, start=event.start,
                duration=event.duration, metadata=dict(event.metadata)))
        plane.stats["num_events"] = plane.event_count


class DeviceTracer(ProfilerInterface):
    """CUPTI-like tracer reading the GPU kernel logs."""

    name = "device_tracer"

    def __init__(self, runtime, costs: Optional[TracerCosts] = None):
        self.runtime = runtime
        self.env = runtime.env
        self.costs = costs or TracerCosts()
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None

    def start(self) -> Generator:
        yield self.env.timeout(self.costs.per_session)
        self._window_start = self.env.now
        self._window_end = None

    def stop(self) -> Generator:
        self._window_end = self.env.now
        yield self.env.timeout(self.costs.per_session)

    def collect_data(self, space: XSpace) -> Generator:
        if self._window_start is None:
            return
        t0 = self._window_start
        t1 = self._window_end if self._window_end is not None else self.env.now
        total_events = 0
        for gpu in self.runtime.gpus:
            kernels = gpu.kernels_between(t0, t1)
            total_events += len(kernels)
            plane = space.plane(f"{GPU_PLANE_PREFIX}:{gpu.name}")
            line = plane.line("stream:compute")
            for kernel in kernels:
                line.add(XEvent(name=kernel.name, start=kernel.start,
                                duration=kernel.duration,
                                metadata={"correlation_id": kernel.correlation_id}))
            plane.stats["device_utilization"] = gpu.utilization(t0, t1)
        yield self.env.timeout(self.costs.per_device_event * total_events)
