"""Buffered STDIO streams (``FILE*``) on top of the POSIX layer.

TensorFlow's POSIX filesystem plugin writes checkpoints through ``fwrite``
(Section IV-D of the paper), which is why Darshan's STDIO module sees
checkpoint traffic while the POSIX module sees the data-ingestion reads.
The STDIO layer keeps a user-space buffer per stream and calls the POSIX
layer's *internal* implementations directly — mirroring glibc, whose stdio
issues syscalls without going back through the PLT, so interposing ``write``
does not double-count ``fwrite`` traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Generator, Optional

from repro.sim import Environment
from repro.posix.errors import Errno, SimOSError
from repro.posix.fdtable import O_APPEND, O_CREAT, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY, SEEK_CUR, SEEK_END, SEEK_SET
from repro.posix.simbytes import BytesLike, SimBytes
from repro.posix.syscalls import PosixLayer

#: Default stdio buffer size (glibc's BUFSIZ is 8 KiB).
DEFAULT_BUFFER_SIZE = 8192

_MODE_FLAGS = {
    "r": O_RDONLY,
    "rb": O_RDONLY,
    "r+": O_RDWR,
    "w": O_WRONLY | O_CREAT | O_TRUNC,
    "wb": O_WRONLY | O_CREAT | O_TRUNC,
    "w+": O_RDWR | O_CREAT | O_TRUNC,
    "a": O_WRONLY | O_CREAT | O_APPEND,
    "ab": O_WRONLY | O_CREAT | O_APPEND,
}


@dataclass
class FileStream:
    """State of one ``FILE*`` stream."""

    stream_id: int
    path: str
    fd: int
    mode: str
    buffer_size: int = DEFAULT_BUFFER_SIZE
    #: Bytes buffered in user space, waiting to be written.
    pending_write_bytes: int = 0
    #: Logical stream position (offset of the *next* fread/fwrite).
    position: int = 0
    closed: bool = False
    #: Per-stream operation counters (used in tests).
    writes: int = 0
    reads: int = 0
    flushes: int = 0


class StdioLayer:
    """``fopen``/``fread``/``fwrite``/... over the POSIX layer."""

    def __init__(self, env: Environment, posix: PosixLayer,
                 buffer_size: int = DEFAULT_BUFFER_SIZE,
                 op_overhead: float = 0.4e-6):
        self.env = env
        self.posix = posix
        self.buffer_size = int(buffer_size)
        self.op_overhead = float(op_overhead)
        self._streams: Dict[int, FileStream] = {}
        self._ids = count(start=1)

    # -- helpers ------------------------------------------------------------
    def _get(self, stream: object) -> FileStream:
        stream_id = stream.stream_id if isinstance(stream, FileStream) else int(stream)
        fs = self._streams.get(stream_id)
        if fs is None or fs.closed:
            raise SimOSError(Errno.EBADF, "bad stream", str(stream))
        return fs

    def _charge(self) -> Generator:
        yield self.env.timeout(self.op_overhead)

    # -- API -----------------------------------------------------------------
    def fopen(self, path: str, mode: str = "r") -> Generator:
        """Open a stream; returns a :class:`FileStream`."""
        yield from self._charge()
        flags = _MODE_FLAGS.get(mode)
        if flags is None:
            raise SimOSError(Errno.EINVAL, f"unsupported mode {mode!r}", path)
        fd = yield from self.posix.open(path, flags)
        stream = FileStream(stream_id=next(self._ids), path=path, fd=fd,
                            mode=mode, buffer_size=self.buffer_size)
        if flags & O_APPEND:
            stat = yield from self.posix.fstat(fd)
            stream.position = stat.st_size
        self._streams[stream.stream_id] = stream
        return stream

    def fread(self, stream: object, nbytes: int) -> Generator:
        """Read up to ``nbytes`` from the stream position."""
        yield from self._charge()
        fs = self._get(stream)
        fs.reads += 1
        data = yield from self.posix.pread(fs.fd, nbytes, fs.position)
        fs.position += data.nbytes
        return data

    def fwrite(self, stream: object, data: BytesLike) -> Generator:
        """Buffered write; flushes to POSIX when the buffer fills."""
        yield from self._charge()
        fs = self._get(stream)
        payload = SimBytes.coerce(data)
        fs.writes += 1
        fs.pending_write_bytes += payload.nbytes
        fs.position += payload.nbytes
        if fs.pending_write_bytes >= fs.buffer_size:
            yield from self._flush(fs)
        return payload.nbytes

    def fseek(self, stream: object, offset: int, whence: int = SEEK_SET
              ) -> Generator:
        """Reposition the stream (flushes pending writes first)."""
        yield from self._charge()
        fs = self._get(stream)
        yield from self._flush(fs)
        if whence == SEEK_SET:
            fs.position = offset
        elif whence == SEEK_CUR:
            fs.position += offset
        else:
            stat = yield from self.posix.fstat(fs.fd)
            fs.position = stat.st_size + offset
        if fs.position < 0:
            raise SimOSError(Errno.EINVAL, "negative stream position", fs.path)
        return 0

    def ftell(self, stream: object) -> Generator:
        """Current logical position of the stream."""
        yield from self._charge()
        fs = self._get(stream)
        return fs.position

    def fflush(self, stream: object) -> Generator:
        """Flush buffered writes down to the POSIX layer."""
        yield from self._charge()
        fs = self._get(stream)
        fs.flushes += 1
        yield from self._flush(fs)
        return 0

    def fclose(self, stream: object) -> Generator:
        """Flush and close the stream and its descriptor."""
        yield from self._charge()
        fs = self._get(stream)
        yield from self._flush(fs)
        yield from self.posix.close(fs.fd)
        fs.closed = True
        del self._streams[fs.stream_id]
        return 0

    # -- internals --------------------------------------------------------------
    def _flush(self, fs: FileStream) -> Generator:
        if fs.pending_write_bytes <= 0:
            return
        nbytes = fs.pending_write_bytes
        offset = fs.position - nbytes
        fs.pending_write_bytes = 0
        yield from self.posix.pwrite(fs.fd, SimBytes(nbytes), offset)

    # -- registration --------------------------------------------------------------
    def bindings(self) -> dict:
        """Symbol bindings to install into a :class:`SymbolTable`."""
        return {
            "fopen": self.fopen,
            "fclose": self.fclose,
            "fread": self.fread,
            "fwrite": self.fwrite,
            "fseek": self.fseek,
            "ftell": self.ftell,
            "fflush": self.fflush,
        }
