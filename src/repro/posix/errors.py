"""POSIX errno model for the simulated syscall layer."""

from __future__ import annotations


class Errno:
    """Subset of errno values used by the simulated syscalls."""

    EPERM = 1
    ENOENT = 2
    EBADF = 9
    EACCES = 13
    EEXIST = 17
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    EMFILE = 24
    ENOSPC = 28
    ESPIPE = 29

    _NAMES = {
        1: "EPERM",
        2: "ENOENT",
        9: "EBADF",
        13: "EACCES",
        17: "EEXIST",
        20: "ENOTDIR",
        21: "EISDIR",
        22: "EINVAL",
        24: "EMFILE",
        28: "ENOSPC",
        29: "ESPIPE",
    }

    @classmethod
    def name(cls, code: int) -> str:
        """Symbolic name of an errno value."""
        return cls._NAMES.get(code, f"E{code}")


class SimOSError(OSError):
    """OSError raised by the simulated POSIX layer.

    Carries the simulated errno in ``errno`` so callers (and tests) can
    check failure modes exactly as they would against a real kernel.
    """

    def __init__(self, errno_code: int, message: str = "", path: str = ""):
        self.errno = errno_code
        self.path = path
        detail = f"[{Errno.name(errno_code)}] {message}"
        if path:
            detail += f": {path!r}"
        super().__init__(errno_code, detail)

    def __str__(self) -> str:
        return self.args[1]
