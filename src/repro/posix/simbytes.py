"""Lightweight representation of file data.

Simulated datasets are far larger than host memory (the malware corpus is
48 GB), so file contents are usually *synthetic*: a :class:`SimBytes` knows
its length and, optionally, carries real bytes when a test or a small
configuration file needs byte-exact round trips.  All I/O paths and the
Darshan counters operate on lengths, which is what the paper's statistics
are built from.
"""

from __future__ import annotations

from typing import Optional, Union

BytesLike = Union[bytes, bytearray, "SimBytes", int]


class SimBytes:
    """A block of ``nbytes`` of data, optionally with real content."""

    __slots__ = ("nbytes", "content")

    def __init__(self, nbytes: int, content: Optional[bytes] = None):
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if content is not None and len(content) != nbytes:
            raise ValueError("content length does not match nbytes")
        self.nbytes = int(nbytes)
        self.content = bytes(content) if content is not None else None

    # -- factories -------------------------------------------------------
    @classmethod
    def coerce(cls, data: BytesLike) -> "SimBytes":
        """Turn bytes/bytearray/int/SimBytes into a :class:`SimBytes`."""
        if isinstance(data, SimBytes):
            return data
        if isinstance(data, (bytes, bytearray)):
            return cls(len(data), bytes(data))
        if isinstance(data, int):
            return cls(data)
        raise TypeError(f"cannot interpret {type(data).__name__} as file data")

    # -- behaviour -------------------------------------------------------
    def __len__(self) -> int:
        return self.nbytes

    def __bool__(self) -> bool:
        return self.nbytes > 0

    @property
    def is_synthetic(self) -> bool:
        """``True`` if the object only tracks a length, not real bytes."""
        return self.content is None

    def slice(self, start: int, stop: int) -> "SimBytes":
        """A sub-range of the data (clamped to the available length)."""
        start = max(0, min(start, self.nbytes))
        stop = max(start, min(stop, self.nbytes))
        if self.content is not None:
            return SimBytes(stop - start, self.content[start:stop])
        return SimBytes(stop - start)

    def to_bytes(self, fill: bytes = b"\0") -> bytes:
        """Materialize real bytes (synthetic data is zero filled)."""
        if self.content is not None:
            return self.content
        return fill * self.nbytes

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SimBytes):
            if self.content is not None and other.content is not None:
                return self.content == other.content
            return self.nbytes == other.nbytes
        if isinstance(other, (bytes, bytearray)):
            if self.content is not None:
                return self.content == bytes(other)
            return self.nbytes == len(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.nbytes, self.content))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "synthetic" if self.is_synthetic else "real"
        return f"<SimBytes {self.nbytes} bytes ({kind})>"
