"""The POSIX syscall layer ("libc") of the simulated process.

Every function is a simulation generator: it charges the cost of the call
(syscall entry, page-cache lookups, device transfers through the storage
backend) to the simulated clock and returns the same result a real libc call
would.  The functions are registered in the
:class:`~repro.posix.dispatch.SymbolTable`, which is what makes them
interposable by Darshan exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.sim import Environment
from repro.posix.errors import Errno, SimOSError
from repro.posix.fdtable import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    FileDescriptorTable,
    OpenFileDescription,
)
from repro.posix.simbytes import BytesLike, SimBytes
from repro.posix.vfs import Inode, StatResult, VirtualFileSystem


@dataclass
class PosixCosts:
    """Fixed CPU costs of syscall handling (seconds)."""

    #: Kernel entry/exit and VFS bookkeeping per syscall.
    syscall_overhead: float = 1.2e-6
    #: User/kernel copy bandwidth in bytes/second (memcpy of the payload).
    copy_bandwidth: float = 6.0e9
    #: Cost of serving one byte from the page cache (DRAM read), bytes/s.
    page_cache_bandwidth: float = 9.0e9


class PosixLayer:
    """Implementation of the POSIX file API over the VFS and storage stack."""

    def __init__(self, env: Environment, vfs: VirtualFileSystem,
                 costs: Optional[PosixCosts] = None):
        self.env = env
        self.vfs = vfs
        self.fds = FileDescriptorTable()
        self.costs = costs or PosixCosts()
        #: Total syscalls served, by name (useful for sanity checks).
        self.call_counts: dict = {}

    # -- small helpers ---------------------------------------------------------
    def _charge(self, name: str, payload_bytes: int = 0) -> Generator:
        self.call_counts[name] = self.call_counts.get(name, 0) + 1
        cost = self.costs.syscall_overhead
        if payload_bytes > 0:
            cost += payload_bytes / self.costs.copy_bandwidth
        yield self.env.timeout(cost)

    # -- open / close ------------------------------------------------------------
    def open(self, path: str, flags: int = O_RDONLY) -> Generator:
        """Open ``path``; returns a file descriptor (int)."""
        yield from self._charge("open")
        created = False
        try:
            inode = self.vfs.lookup(path)
        except SimOSError:
            if not flags & O_CREAT:
                raise
            inode = self.vfs.create_file(path, size=0)
            created = True
        if inode.is_dir and (flags & 0o3) != O_RDONLY:
            raise SimOSError(Errno.EISDIR, "cannot write a directory", path)
        backend = self.vfs.backend_for(inode.path)
        if created:
            yield from backend.create(inode.key)
        else:
            yield from backend.open(inode.key, inode.size)
        if flags & O_TRUNC and not inode.is_dir:
            inode.size = 0
            inode.content = None
            self.vfs.page_cache.invalidate(inode.key)
        ofd = self.fds.allocate(inode, flags)
        if flags & O_APPEND:
            ofd.offset = inode.size
        inode.atime = self.env.now
        return ofd.fd

    def close(self, fd: int) -> Generator:
        """Close a file descriptor."""
        yield from self._charge("close")
        ofd = self.fds.close(fd)
        backend = self.vfs.backend_for(ofd.inode.path)
        yield from backend.close(ofd.inode.key)
        return 0

    # -- data movement --------------------------------------------------------------
    def _do_read(self, ofd: OpenFileDescription, count: int, offset: int
                 ) -> Generator:
        inode = ofd.inode
        if not ofd.readable:
            raise SimOSError(Errno.EBADF, "descriptor not open for reading",
                             inode.path)
        if count < 0 or offset < 0:
            raise SimOSError(Errno.EINVAL, "negative count or offset", inode.path)
        nbytes = max(0, min(count, inode.size - offset))
        if nbytes == 0:
            # End of file: a zero-length read costs only the syscall itself.
            return SimBytes(0)
        cached = uncached = 0
        if self.vfs.enable_page_cache:
            cached, uncached = self.vfs.page_cache.split_request(
                inode.key, offset, nbytes)
        else:
            uncached = nbytes
        if cached > 0:
            yield self.env.timeout(cached / self.costs.page_cache_bandwidth)
        if uncached > 0:
            backend = self.vfs.backend_for(inode.path)
            yield from backend.read(inode.key, offset + cached, uncached,
                                    inode.size)
            if self.vfs.enable_page_cache:
                self.vfs.page_cache.insert(inode.key, offset + cached, uncached)
        inode.atime = self.env.now
        return self.vfs.read_span(inode, offset, nbytes)

    def read(self, fd: int, count: int) -> Generator:
        """``read(2)``: read from the descriptor's current offset."""
        ofd = self.fds.get(fd)
        yield from self._charge("read", min(count, max(0, ofd.inode.size - ofd.offset)))
        data = yield from self._do_read(ofd, count, ofd.offset)
        ofd.offset += data.nbytes
        return data

    def pread(self, fd: int, count: int, offset: int) -> Generator:
        """``pread(2)``: positional read, does not move the file offset."""
        ofd = self.fds.get(fd)
        yield from self._charge("pread", min(count, max(0, ofd.inode.size - offset)))
        data = yield from self._do_read(ofd, count, offset)
        return data

    def _do_write(self, ofd: OpenFileDescription, data: BytesLike, offset: int
                  ) -> Generator:
        inode = ofd.inode
        if not ofd.writable:
            raise SimOSError(Errno.EBADF, "descriptor not open for writing",
                             inode.path)
        payload = SimBytes.coerce(data)
        if payload.nbytes == 0:
            return 0
        backend = self.vfs.backend_for(inode.path)
        yield from backend.write(inode.key, offset, payload.nbytes)
        written = self.vfs.write_span(inode, offset, payload)
        if self.vfs.enable_page_cache:
            self.vfs.page_cache.insert(inode.key, offset, written)
        return written

    def write(self, fd: int, data: BytesLike) -> Generator:
        """``write(2)``: write at the descriptor's current offset."""
        ofd = self.fds.get(fd)
        payload = SimBytes.coerce(data)
        yield from self._charge("write", payload.nbytes)
        offset = ofd.inode.size if ofd.append else ofd.offset
        written = yield from self._do_write(ofd, payload, offset)
        ofd.offset = offset + written
        return written

    def pwrite(self, fd: int, data: BytesLike, offset: int) -> Generator:
        """``pwrite(2)``: positional write, does not move the file offset."""
        ofd = self.fds.get(fd)
        payload = SimBytes.coerce(data)
        yield from self._charge("pwrite", payload.nbytes)
        written = yield from self._do_write(ofd, payload, offset)
        return written

    # -- metadata ---------------------------------------------------------------------
    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> Generator:
        """``lseek(2)``: reposition the file offset."""
        yield from self._charge("lseek")
        ofd = self.fds.get(fd)
        if whence == SEEK_SET:
            new_offset = offset
        elif whence == SEEK_CUR:
            new_offset = ofd.offset + offset
        elif whence == SEEK_END:
            new_offset = ofd.inode.size + offset
        else:
            raise SimOSError(Errno.EINVAL, f"bad whence {whence}", ofd.inode.path)
        if new_offset < 0:
            raise SimOSError(Errno.EINVAL, "negative resulting offset",
                             ofd.inode.path)
        ofd.offset = new_offset
        return new_offset

    def _stat_result(self, inode: Inode) -> StatResult:
        return StatResult(
            st_ino=inode.ino, st_size=inode.size, st_mtime=inode.mtime,
            st_atime=inode.atime, st_ctime=inode.ctime, is_dir=inode.is_dir)

    def stat(self, path: str) -> Generator:
        """``stat(2)``: metadata lookup by path."""
        yield from self._charge("stat")
        inode = self.vfs.lookup(path)
        if not inode.is_dir:
            backend = self.vfs.backend_for(inode.path)
            yield from backend.stat(inode.key)
        return self._stat_result(inode)

    def fstat(self, fd: int) -> Generator:
        """``fstat(2)``: metadata lookup by descriptor (no device access)."""
        yield from self._charge("fstat")
        ofd = self.fds.get(fd)
        return self._stat_result(ofd.inode)

    def access(self, path: str) -> Generator:
        """``access(2)``: existence check; returns 0 or raises ENOENT."""
        yield from self._charge("access")
        self.vfs.lookup(path)
        return 0

    def unlink(self, path: str) -> Generator:
        """``unlink(2)``: remove a file."""
        yield from self._charge("unlink")
        self.vfs.remove(path)
        return 0

    def mkdir(self, path: str) -> Generator:
        """``mkdir(2)``: create a directory."""
        yield from self._charge("mkdir")
        self.vfs.mkdir(path)
        return 0

    def fsync(self, fd: int) -> Generator:
        """``fsync(2)``: for the write-through model this is a no-op delay."""
        yield from self._charge("fsync")
        self.fds.get(fd)
        return 0

    # -- registration -----------------------------------------------------------------
    def bindings(self) -> dict:
        """Symbol bindings to install into a :class:`SymbolTable`."""
        return {
            "open": self.open,
            "close": self.close,
            "read": self.read,
            "pread": self.pread,
            "write": self.write,
            "pwrite": self.pwrite,
            "lseek": self.lseek,
            "stat": self.stat,
            "fstat": self.fstat,
            "access": self.access,
            "unlink": self.unlink,
            "mkdir": self.mkdir,
            "fsync": self.fsync,
        }
