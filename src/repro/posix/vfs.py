"""Virtual filesystem: the namespace the simulated process sees.

The VFS owns the path → inode mapping, the OS page cache and the mount
table that routes file data to storage backends.  Creating dataset files is
a metadata-only registration (the datasets "already exist on disk" when an
experiment starts), while all reads and writes issued through the syscall
layer cost simulated time on the backing devices.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim import Environment
from repro.storage import MountTable, PageCache, StorageBackend
from repro.posix.errors import Errno, SimOSError
from repro.posix.simbytes import SimBytes

#: Real file content larger than this is dropped and tracked as synthetic.
MAX_REAL_CONTENT = 16 << 20


def normalize_path(path: str) -> str:
    """Normalize an absolute POSIX path."""
    if not path or not path.startswith("/"):
        raise SimOSError(Errno.EINVAL, "path must be absolute", path)
    norm = posixpath.normpath(path)
    return norm


@dataclass
class Inode:
    """One file or directory."""

    ino: int
    path: str
    is_dir: bool = False
    size: int = 0
    content: Optional[bytes] = None
    ctime: float = 0.0
    mtime: float = 0.0
    atime: float = 0.0
    nlink: int = 1

    @property
    def key(self) -> int:
        """Stable identifier used for device locality and cache keys."""
        return self.ino


@dataclass
class StatResult:
    """Result of ``stat()`` / ``fstat()``."""

    st_ino: int
    st_size: int
    st_mtime: float
    st_atime: float
    st_ctime: float
    is_dir: bool = False

    @property
    def st_mode(self) -> int:
        return 0o040755 if self.is_dir else 0o100644


class VirtualFileSystem:
    """Path namespace, page cache and backend routing."""

    def __init__(
        self,
        env: Environment,
        mount_table: Optional[MountTable] = None,
        page_cache: Optional[PageCache] = None,
        enable_page_cache: bool = True,
    ):
        self.env = env
        self.mount_table = mount_table if mount_table is not None else MountTable()
        self.page_cache = page_cache if page_cache is not None else PageCache()
        self.enable_page_cache = enable_page_cache
        self._inodes: Dict[str, Inode] = {}
        self._ino_counter = count(start=2)
        root = Inode(ino=1, path="/", is_dir=True)
        self._inodes["/"] = root

    # -- namespace management -------------------------------------------------
    def mount(self, mount_point: str, backend: StorageBackend) -> None:
        """Mount a storage backend and make sure the directory exists."""
        self.mount_table.mount(mount_point, backend)
        self._ensure_dirs(normalize_path(mount_point))

    def _ensure_dirs(self, path: str) -> None:
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            if current not in self._inodes:
                self._inodes[current] = Inode(
                    ino=next(self._ino_counter), path=current, is_dir=True,
                    ctime=self.env.now, mtime=self.env.now, atime=self.env.now)
            elif not self._inodes[current].is_dir:
                raise SimOSError(Errno.ENOTDIR, "path component is a file", current)

    def mkdir(self, path: str) -> Inode:
        """Create a directory (and its parents)."""
        path = normalize_path(path)
        if path in self._inodes and not self._inodes[path].is_dir:
            raise SimOSError(Errno.EEXIST, "file exists", path)
        self._ensure_dirs(path)
        return self._inodes[path]

    def create_file(self, path: str, size: int = 0,
                    content: Optional[bytes] = None) -> Inode:
        """Register a file in the namespace (no simulated time is charged).

        Use this to lay out synthetic datasets before an experiment.  Files
        created *during* a run (checkpoints, logs) should go through the
        syscall layer's ``open`` with ``O_CREAT`` instead so the metadata
        cost is accounted.
        """
        path = normalize_path(path)
        if path in self._inodes:
            raise SimOSError(Errno.EEXIST, "file exists", path)
        if content is not None:
            size = len(content)
            if size > MAX_REAL_CONTENT:
                content = None
        self._ensure_dirs(posixpath.dirname(path))
        inode = Inode(
            ino=next(self._ino_counter), path=path, is_dir=False, size=int(size),
            content=content, ctime=self.env.now, mtime=self.env.now,
            atime=self.env.now)
        self._inodes[path] = inode
        return inode

    def remove(self, path: str) -> None:
        """Unlink a file from the namespace."""
        path = normalize_path(path)
        inode = self.lookup(path)
        if inode.is_dir:
            raise SimOSError(Errno.EISDIR, "is a directory", path)
        del self._inodes[path]
        self.page_cache.invalidate(inode.key)
        self.mount_table.clear_placement(path)

    # -- lookup -----------------------------------------------------------------
    def exists(self, path: str) -> bool:
        try:
            return normalize_path(path) in self._inodes
        except SimOSError:
            return False

    def lookup(self, path: str) -> Inode:
        """Return the inode for ``path`` or raise ENOENT."""
        path = normalize_path(path)
        inode = self._inodes.get(path)
        if inode is None:
            raise SimOSError(Errno.ENOENT, "no such file or directory", path)
        return inode

    def listdir(self, path: str) -> List[str]:
        """Names of entries directly below ``path``."""
        path = normalize_path(path)
        directory = self.lookup(path)
        if not directory.is_dir:
            raise SimOSError(Errno.ENOTDIR, "not a directory", path)
        prefix = path if path.endswith("/") else path + "/"
        names = set()
        for other in self._inodes:
            if other == path or not other.startswith(prefix):
                continue
            remainder = other[len(prefix):]
            names.add(remainder.split("/", 1)[0])
        return sorted(names)

    def files_under(self, prefix: str) -> List[Inode]:
        """All regular files whose path starts with ``prefix``."""
        prefix = normalize_path(prefix)
        prefix_slash = prefix if prefix.endswith("/") else prefix + "/"
        out = []
        for path, inode in self._inodes.items():
            if inode.is_dir:
                continue
            if path == prefix or path.startswith(prefix_slash):
                out.append(inode)
        return sorted(out, key=lambda i: i.path)

    def iter_files(self) -> Iterator[Inode]:
        """All regular files in the namespace."""
        for inode in self._inodes.values():
            if not inode.is_dir:
                yield inode

    def total_bytes_under(self, prefix: str) -> int:
        """Total size of all files under a prefix."""
        return sum(inode.size for inode in self.files_under(prefix))

    # -- backends ---------------------------------------------------------------
    def backend_for(self, path: str) -> StorageBackend:
        """Storage backend currently holding the file at ``path``."""
        return self.mount_table.resolve(normalize_path(path))

    def set_placement(self, path: str, backend: StorageBackend) -> None:
        """Override which backend holds a file (staging)."""
        self.mount_table.set_placement(normalize_path(path), backend)

    def devices(self):
        """All devices below all mounted backends (for dstat)."""
        return self.mount_table.devices()

    # -- cache control ------------------------------------------------------------
    def drop_caches(self) -> None:
        """Drop the page cache and all backend metadata caches.

        The equivalent of ``sync; echo 3 > /proc/sys/vm/drop_caches`` which
        the paper runs before every Greendog experiment.
        """
        self.page_cache.drop()
        for backend in self.mount_table.backends():
            backend.drop_caches()

    # -- content helpers -----------------------------------------------------------
    def read_span(self, inode: Inode, offset: int, nbytes: int) -> SimBytes:
        """Data of [offset, offset+nbytes) of a file (bounded by its size)."""
        nbytes = max(0, min(nbytes, inode.size - offset))
        if nbytes <= 0:
            return SimBytes(0)
        if inode.content is not None:
            return SimBytes(nbytes, inode.content[offset:offset + nbytes])
        return SimBytes(nbytes)

    def write_span(self, inode: Inode, offset: int, data: SimBytes) -> int:
        """Apply a write to the inode (size growth and optional content)."""
        end = offset + data.nbytes
        if data.content is not None and end <= MAX_REAL_CONTENT:
            existing = bytearray(inode.content or b"")
            if len(existing) < end:
                existing.extend(b"\0" * (end - len(existing)))
            existing[offset:end] = data.content
            inode.content = bytes(existing)
        elif data.nbytes > 0 and inode.content is not None and end > MAX_REAL_CONTENT:
            inode.content = None
        inode.size = max(inode.size, end)
        inode.mtime = self.env.now
        return data.nbytes
