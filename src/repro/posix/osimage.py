"""The simulated operating-system / process image.

:class:`SimulatedOS` wires together the pieces a single process sees:
virtual filesystem + page cache, POSIX syscall layer, STDIO layer, and the
dynamic symbol table through which the application (TensorFlow) performs all
I/O.  tf-Darshan attaches to the symbol table at runtime; dstat watches the
devices below the mount table.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Environment
from repro.storage import MountTable, PageCache, StorageBackend
from repro.posix.dispatch import SymbolTable
from repro.posix.stdio import StdioLayer
from repro.posix.syscalls import PosixCosts, PosixLayer
from repro.posix.vfs import VirtualFileSystem


class SimulatedOS:
    """One simulated node: filesystems, syscalls, stdio and the symbol table."""

    def __init__(
        self,
        env: Environment,
        mount_table: Optional[MountTable] = None,
        page_cache: Optional[PageCache] = None,
        posix_costs: Optional[PosixCosts] = None,
        enable_page_cache: bool = True,
    ):
        self.env = env
        self.vfs = VirtualFileSystem(
            env, mount_table=mount_table, page_cache=page_cache,
            enable_page_cache=enable_page_cache)
        self.posix = PosixLayer(env, self.vfs, costs=posix_costs)
        self.stdio = StdioLayer(env, self.posix)
        self.symbols = SymbolTable()
        self.symbols.register_many(self.posix.bindings())
        self.symbols.register_many(self.stdio.bindings())

    # -- convenience -------------------------------------------------------
    def mount(self, mount_point: str, backend: StorageBackend) -> None:
        """Mount a storage backend at ``mount_point``."""
        self.vfs.mount(mount_point, backend)

    def drop_caches(self) -> None:
        """Drop page and metadata caches (the paper's pre-run protocol)."""
        self.vfs.drop_caches()

    def devices(self):
        """All block devices (for the dstat monitor)."""
        return self.vfs.devices()

    def call(self, name: str, *args, **kwargs):
        """Issue an I/O call through the symbol table (``yield from`` this)."""
        return self.symbols.call(name, *args, **kwargs)
