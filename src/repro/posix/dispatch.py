"""Dynamic symbol dispatch table — the Global Offset Table analogue.

In the paper, tf-Darshan loads ``libdarshan.so`` with ``dlopen`` and patches
the process's Global Offset Table so that I/O symbols which normally resolve
into libc resolve into Darshan's wrappers instead (Fig. 2).  The simulated
process performs all I/O through this :class:`SymbolTable`: callers look up
symbols by name exactly like PLT stubs do, the "libc" implementations are
registered at link time, and a profiler can *patch* individual entries at
runtime and later restore them.  Patching is reversible, per-symbol, and
bidirectional information flow is possible because the patching code and the
patched application live in the same address space — which is precisely the
property the paper exploits.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Iterable, List, Optional

#: POSIX symbols the reproduction routes through the table.
POSIX_SYMBOLS = (
    "open", "close", "read", "pread", "write", "pwrite", "lseek",
    "stat", "fstat", "fsync", "unlink", "mkdir", "access",
)

#: STDIO symbols (buffered streams) routed through the table.
STDIO_SYMBOLS = (
    "fopen", "fclose", "fread", "fwrite", "fseek", "ftell", "fflush",
)

#: Every symbol an I/O instrumentation tool may want to interpose.
IO_SYMBOLS = POSIX_SYMBOLS + STDIO_SYMBOLS


class SymbolNotFound(KeyError):
    """Raised when resolving a symbol that was never registered."""


class SymbolTable:
    """A patchable mapping from symbol names to generator functions.

    Every registered function is a *simulation generator*: callers invoke it
    with ``yield from table.call("pread", fd, count, offset)`` so the I/O
    cost is charged to the simulated clock of the calling process.
    """

    def __init__(self):
        self._current: Dict[str, Callable[..., Generator]] = {}
        self._original: Dict[str, Callable[..., Generator]] = {}
        self._patch_log: List[tuple] = []

    # -- link-time registration ------------------------------------------------
    def register(self, name: str, func: Callable[..., Generator]) -> None:
        """Bind ``name`` to its default ("libc") implementation."""
        if not callable(func):
            raise TypeError(f"symbol {name!r} must be bound to a callable")
        self._current[name] = func
        self._original[name] = func

    def register_many(self, bindings: Dict[str, Callable[..., Generator]]) -> None:
        """Register several symbols at once."""
        for name, func in bindings.items():
            self.register(name, func)

    # -- resolution --------------------------------------------------------------
    def symbols(self) -> List[str]:
        """Names of all registered symbols (what a GOT scan would find)."""
        return sorted(self._current)

    def resolve(self, name: str) -> Callable[..., Generator]:
        """Current binding of ``name`` (patched or original)."""
        try:
            return self._current[name]
        except KeyError:
            raise SymbolNotFound(name) from None

    def original(self, name: str) -> Callable[..., Generator]:
        """The original (libc) binding, regardless of patches."""
        try:
            return self._original[name]
        except KeyError:
            raise SymbolNotFound(name) from None

    def call(self, name: str, *args, **kwargs) -> Generator:
        """Invoke a symbol through the table (use with ``yield from``)."""
        func = self.resolve(name)
        return (yield from func(*args, **kwargs))

    # -- runtime patching -----------------------------------------------------------
    def is_patched(self, name: str) -> bool:
        """``True`` if ``name`` currently points away from its original."""
        return name in self._current and self._current[name] is not self._original[name]

    def patch(self, name: str, func: Callable[..., Generator]
              ) -> Callable[..., Generator]:
        """Redirect ``name`` to ``func``; returns the previous binding.

        This is the analogue of overwriting one GOT entry.  The previous
        binding is returned so the wrapper can forward to the real call.
        """
        previous = self.resolve(name)
        if not callable(func):
            raise TypeError("patch target must be callable")
        self._current[name] = func
        self._patch_log.append((name, "patch"))
        return previous

    def restore(self, name: str) -> None:
        """Point ``name`` back at its original binding."""
        if name not in self._original:
            raise SymbolNotFound(name)
        self._current[name] = self._original[name]
        self._patch_log.append((name, "restore"))

    def restore_all(self) -> None:
        """Undo every patch (detaching the instrumentation completely)."""
        for name in list(self._current):
            self._current[name] = self._original[name]
        self._patch_log.append(("*", "restore_all"))

    def patched_symbols(self) -> List[str]:
        """Names currently redirected away from their originals."""
        return sorted(n for n in self._current if self.is_patched(n))

    @property
    def patch_log(self) -> List[tuple]:
        """History of patch/restore operations (used in tests and reports)."""
        return list(self._patch_log)
