"""File-descriptor table of the simulated process."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.posix.errors import Errno, SimOSError
from repro.posix.vfs import Inode

#: Flag bits mirroring the small subset of fcntl.h the reproduction needs.
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


@dataclass
class OpenFileDescription:
    """State shared by a file descriptor: inode, offset and open flags."""

    fd: int
    inode: Inode
    flags: int = O_RDONLY
    offset: int = 0
    closed: bool = False

    @property
    def readable(self) -> bool:
        accmode = self.flags & 0o3
        return accmode in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        accmode = self.flags & 0o3
        return accmode in (O_WRONLY, O_RDWR)

    @property
    def append(self) -> bool:
        return bool(self.flags & O_APPEND)


class FileDescriptorTable:
    """Allocates descriptors and resolves them back to open files."""

    #: First descriptor handed out (0-2 are reserved for std streams).
    FIRST_FD = 3

    def __init__(self, max_open_files: int = 65536):
        self._table: Dict[int, OpenFileDescription] = {}
        self._next_fd = self.FIRST_FD
        self.max_open_files = max_open_files
        #: Running count of every descriptor ever opened (for reports).
        self.total_opened = 0

    def allocate(self, inode: Inode, flags: int) -> OpenFileDescription:
        """Create a new open-file description for ``inode``."""
        if len(self._table) >= self.max_open_files:
            raise SimOSError(Errno.EMFILE, "too many open files", inode.path)
        fd = self._next_fd
        self._next_fd += 1
        ofd = OpenFileDescription(fd=fd, inode=inode, flags=flags)
        self._table[fd] = ofd
        self.total_opened += 1
        return ofd

    def get(self, fd: int) -> OpenFileDescription:
        """Resolve a descriptor, raising EBADF for unknown/closed ones."""
        ofd = self._table.get(fd)
        if ofd is None or ofd.closed:
            raise SimOSError(Errno.EBADF, "bad file descriptor", str(fd))
        return ofd

    def close(self, fd: int) -> OpenFileDescription:
        """Close a descriptor and return its description."""
        ofd = self.get(fd)
        ofd.closed = True
        del self._table[fd]
        return ofd

    def open_count(self) -> int:
        """Number of descriptors currently open."""
        return len(self._table)

    def open_descriptors(self):
        """Snapshot of the open descriptors (for leak checks in tests)."""
        return list(self._table.values())
