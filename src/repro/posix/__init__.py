"""POSIX layer: virtual filesystem, syscalls, stdio and the symbol table."""

from repro.posix.dispatch import (
    IO_SYMBOLS,
    POSIX_SYMBOLS,
    STDIO_SYMBOLS,
    SymbolNotFound,
    SymbolTable,
)
from repro.posix.errors import Errno, SimOSError
from repro.posix.fdtable import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    FileDescriptorTable,
    OpenFileDescription,
)
from repro.posix.osimage import SimulatedOS
from repro.posix.simbytes import SimBytes
from repro.posix.stdio import DEFAULT_BUFFER_SIZE, FileStream, StdioLayer
from repro.posix.syscalls import PosixCosts, PosixLayer
from repro.posix.vfs import Inode, StatResult, VirtualFileSystem, normalize_path

__all__ = [
    "DEFAULT_BUFFER_SIZE",
    "Errno",
    "FileDescriptorTable",
    "FileStream",
    "IO_SYMBOLS",
    "Inode",
    "O_APPEND",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "OpenFileDescription",
    "POSIX_SYMBOLS",
    "PosixCosts",
    "PosixLayer",
    "SEEK_CUR",
    "SEEK_END",
    "SEEK_SET",
    "STDIO_SYMBOLS",
    "SimBytes",
    "SimOSError",
    "SimulatedOS",
    "StatResult",
    "StdioLayer",
    "SymbolNotFound",
    "SymbolTable",
    "VirtualFileSystem",
    "normalize_path",
]
