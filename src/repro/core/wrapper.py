"""The tf-Darshan "middle man": snapshot and profile-data management.

The wrapper component of tf-Darshan (Section III-C) manages both symbol
patching (delegated to :mod:`repro.core.attach`) and profile data: when a
profiling session starts it copies the live Darshan module buffers through
the extraction API, copies them again when the session stops, and the
difference between the two snapshots is what the in-situ analysis and the
TraceViewer export operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.darshan.dxt import DxtRecord, DxtSegment
from repro.darshan.extraction import (
    get_dxt_records,
    get_module_records,
    get_runtime_info,
)
from repro.darshan.records import CounterRecord
from repro.core.attach import RuntimeAttachment
from repro.core.config import TfDarshanCosts


@dataclass
class Snapshot:
    """Copy of the Darshan module buffers at one instant."""

    time: float
    posix: Dict[int, CounterRecord] = field(default_factory=dict)
    stdio: Dict[int, CounterRecord] = field(default_factory=dict)
    dxt_posix: Dict[int, DxtRecord] = field(default_factory=dict)
    dxt_stdio: Dict[int, DxtRecord] = field(default_factory=dict)

    @property
    def record_count(self) -> int:
        return len(self.posix) + len(self.stdio)


@dataclass
class RecordDelta:
    """Per-file counter change between two snapshots."""

    record_id: int
    path: Optional[str]
    module: str
    counters: Dict[str, int]
    fcounters: Dict[str, float]
    #: Absolute end-of-window values useful for size estimates.
    end_counters: Dict[str, int] = field(default_factory=dict)

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)


@dataclass
class SnapshotDelta:
    """Everything that happened between profile start and stop."""

    window_start: float
    window_end: float
    posix: List[RecordDelta] = field(default_factory=list)
    stdio: List[RecordDelta] = field(default_factory=list)
    dxt_posix: Dict[int, List[DxtSegment]] = field(default_factory=dict)
    dxt_stdio: Dict[int, List[DxtSegment]] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.window_end - self.window_start

    @property
    def segment_count(self) -> int:
        return (sum(len(s) for s in self.dxt_posix.values())
                + sum(len(s) for s in self.dxt_stdio.values()))

    def total(self, module: str, counter: str) -> int:
        """Sum a counter delta over all records of one module."""
        records = self.posix if module == "POSIX" else self.stdio
        return sum(rec.get(counter) for rec in records)


class DarshanMiddleman:
    """Takes snapshots of the live Darshan buffers and diffs them."""

    def __init__(self, attachment: RuntimeAttachment, costs: Optional[TfDarshanCosts] = None):
        self.attachment = attachment
        self.env = attachment.env
        self.costs = costs or attachment.options.costs

    # -- snapshots ------------------------------------------------------------
    def take_snapshot(self) -> Generator:
        """Copy the module buffers; cost scales with the number of records."""
        core = self.attachment.core
        snapshot = Snapshot(time=self.env.now)
        if core is not None:
            snapshot.posix = get_module_records(core, "POSIX")
            snapshot.stdio = get_module_records(core, "STDIO")
            if self.attachment.options.enable_dxt:
                snapshot.dxt_posix = get_dxt_records(core, "POSIX")
                snapshot.dxt_stdio = get_dxt_records(core, "STDIO")
        cost = self.costs.snapshot_per_record * snapshot.record_count
        if cost > 0:
            yield self.env.timeout(cost)
        return snapshot

    def resolve_name(self, record_id: int) -> Optional[str]:
        core = self.attachment.core
        return core.lookup_name(record_id) if core is not None else None

    def runtime_info(self):
        """Live file counts etc. (``darshan_get_runtime_info``)."""
        if self.attachment.core is None:
            return None
        return get_runtime_info(self.attachment.core)

    # -- diffing ----------------------------------------------------------------
    def diff(self, start: Snapshot, end: Snapshot) -> SnapshotDelta:
        """Per-record difference between two snapshots (pure computation)."""
        delta = SnapshotDelta(window_start=start.time, window_end=end.time)
        delta.posix = self._diff_module(start.posix, end.posix, "POSIX")
        delta.stdio = self._diff_module(start.stdio, end.stdio, "STDIO")
        delta.dxt_posix = self._diff_dxt(start.dxt_posix, end.dxt_posix,
                                         start.time, end.time)
        delta.dxt_stdio = self._diff_dxt(start.dxt_stdio, end.dxt_stdio,
                                         start.time, end.time)
        return delta

    def _diff_module(self, before: Dict[int, CounterRecord],
                     after: Dict[int, CounterRecord], module: str
                     ) -> List[RecordDelta]:
        deltas: List[RecordDelta] = []
        for record_id, end_rec in after.items():
            start_rec = before.get(record_id)
            counters: Dict[str, int] = {}
            fcounters: Dict[str, float] = {}
            changed = False
            for name, end_value in end_rec.counters.items():
                start_value = start_rec.counters.get(name, 0) if start_rec else 0
                diff = end_value - start_value
                counters[name] = diff
                if diff:
                    changed = True
            for name, end_value in end_rec.fcounters.items():
                start_value = start_rec.fcounters.get(name, 0.0) if start_rec else 0.0
                if name.endswith("_TIME") and not name.endswith("TIMESTAMP"):
                    fcounters[name] = end_value - start_value
                else:
                    fcounters[name] = end_value
            if start_rec is None:
                changed = True
            if changed:
                deltas.append(RecordDelta(
                    record_id=record_id,
                    path=self.resolve_name(record_id),
                    module=module,
                    counters=counters,
                    fcounters=fcounters,
                    end_counters=dict(end_rec.counters),
                ))
        return deltas

    @staticmethod
    def _diff_dxt(before: Dict[int, DxtRecord], after: Dict[int, DxtRecord],
                  window_start: float, window_end: float
                  ) -> Dict[int, List[DxtSegment]]:
        out: Dict[int, List[DxtSegment]] = {}
        for record_id, end_rec in after.items():
            start_rec = before.get(record_id)
            skip_reads = len(start_rec.read_segments) if start_rec else 0
            skip_writes = len(start_rec.write_segments) if start_rec else 0
            segments = (end_rec.read_segments[skip_reads:]
                        + end_rec.write_segments[skip_writes:])
            segments = [s for s in segments
                        if s.end_time > window_start and s.start_time < window_end]
            if segments:
                out[record_id] = sorted(segments, key=lambda s: s.start_time)
        return out
