"""In-situ analysis of Darshan snapshot deltas.

This is the statistics layer tf-Darshan adds on top of raw counters: POSIX
bandwidth over the profiling window, operation counts, read-size and
file-size distributions, and the sequential/consecutive access pattern — the
quantities the paper's case studies read off the extended Input-Pipeline
Analysis page (Fig. 7a, Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.darshan.counters import SIZE_BUCKET_LABELS, size_bucket
from repro.core.config import TfDarshanCosts
from repro.core.wrapper import RecordDelta, SnapshotDelta


@dataclass
class FileIOStats:
    """Per-file statistics over the profiling window."""

    path: str
    record_id: int
    opens: int = 0
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seq_reads: int = 0
    consec_reads: int = 0
    zero_reads: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    meta_time: float = 0.0
    #: Highest byte touched plus one — a size estimate for staging decisions.
    observed_size: int = 0


@dataclass
class AccessPattern:
    """Classification of read accesses over the window."""

    total_reads: int = 0
    sequential: int = 0
    consecutive: int = 0

    @property
    def sequential_fraction(self) -> float:
        return self.sequential / self.total_reads if self.total_reads else 0.0

    @property
    def consecutive_fraction(self) -> float:
        return self.consecutive / self.total_reads if self.total_reads else 0.0

    @property
    def random_fraction(self) -> float:
        """Reads that were neither sequential nor consecutive."""
        if not self.total_reads:
            return 0.0
        return max(0.0, 1.0 - self.sequential_fraction)


@dataclass
class IOProfile:
    """Everything tf-Darshan derives from one profiling window."""

    window_start: float
    window_end: float
    posix_opens: int = 0
    posix_reads: int = 0
    posix_writes: int = 0
    posix_seeks: int = 0
    posix_stats: int = 0
    posix_bytes_read: int = 0
    posix_bytes_written: int = 0
    zero_byte_reads: int = 0
    read_size_histogram: Dict[str, int] = field(default_factory=dict)
    write_size_histogram: Dict[str, int] = field(default_factory=dict)
    file_size_histogram: Dict[str, int] = field(default_factory=dict)
    access_pattern: AccessPattern = field(default_factory=AccessPattern)
    read_time: float = 0.0
    write_time: float = 0.0
    meta_time: float = 0.0
    stdio_opens: int = 0
    stdio_reads: int = 0
    stdio_writes: int = 0
    stdio_bytes_read: int = 0
    stdio_bytes_written: int = 0
    files: List[FileIOStats] = field(default_factory=list)

    # -- derived quantities ---------------------------------------------------
    @property
    def duration(self) -> float:
        return max(1e-12, self.window_end - self.window_start)

    @property
    def posix_read_bandwidth(self) -> float:
        """Bytes/second read over the wall-clock profiling window.

        This is the paper's bandwidth definition: total bytes transferred
        during the profiling session divided by the elapsed session time.
        """
        return self.posix_bytes_read / self.duration

    @property
    def posix_write_bandwidth(self) -> float:
        return self.posix_bytes_written / self.duration

    @property
    def total_files(self) -> int:
        return len(self.files)

    @property
    def reads_per_open(self) -> float:
        return self.posix_reads / self.posix_opens if self.posix_opens else 0.0

    def top_files_by_bytes(self, n: int = 10) -> List[FileIOStats]:
        return sorted(self.files, key=lambda f: f.bytes_read + f.bytes_written,
                      reverse=True)[:n]

    def file_sizes(self) -> Dict[str, int]:
        """Observed per-file sizes (used by the staging advisor)."""
        return {f.path: f.observed_size for f in self.files}

    def summary(self) -> str:
        """The text the tf-Darshan TensorBoard panel shows."""
        mib = 1 << 20
        lines = [
            "tf-Darshan POSIX summary",
            "------------------------",
            f"profiling window      : {self.duration:.2f} s",
            f"files touched         : {self.total_files}",
            f"POSIX opens           : {self.posix_opens}",
            f"POSIX reads           : {self.posix_reads}"
            f" (zero-length: {self.zero_byte_reads})",
            f"POSIX writes          : {self.posix_writes}",
            f"bytes read            : {self.posix_bytes_read / mib:.1f} MiB",
            f"bytes written         : {self.posix_bytes_written / mib:.1f} MiB",
            f"read bandwidth        : {self.posix_read_bandwidth / 1e6:.2f} MB/s",
            f"sequential reads      : {self.access_pattern.sequential_fraction * 100:.0f} %",
            f"consecutive reads     : {self.access_pattern.consecutive_fraction * 100:.0f} %",
            "read size histogram   :",
        ]
        for label in SIZE_BUCKET_LABELS:
            count = self.read_size_histogram.get(label, 0)
            if count:
                lines.append(f"  {label:<10} {count}")
        if self.stdio_writes or self.stdio_reads:
            lines += [
                f"STDIO writes          : {self.stdio_writes}",
                f"STDIO bytes written   : {self.stdio_bytes_written / mib:.1f} MiB",
            ]
        return "\n".join(lines)


class InSituAnalyzer:
    """Turns a :class:`SnapshotDelta` into an :class:`IOProfile`."""

    def __init__(self, env, costs: Optional[TfDarshanCosts] = None):
        self.env = env
        self.costs = costs or TfDarshanCosts()

    def analyze(self, delta: SnapshotDelta) -> Generator:
        """Analyse the delta; cost scales with records and DXT segments."""
        profile = self._build_profile(delta)
        cost = (self.costs.analysis_per_record * (len(delta.posix) + len(delta.stdio))
                + self.costs.analysis_per_segment * delta.segment_count)
        if cost > 0:
            yield self.env.timeout(cost)
        return profile

    # -- pure computation (reused by tests without charging time) --------------
    def _build_profile(self, delta: SnapshotDelta) -> IOProfile:
        profile = IOProfile(window_start=delta.window_start,
                            window_end=delta.window_end)
        for record in delta.posix:
            self._accumulate_posix(profile, record)
        for record in delta.stdio:
            profile.stdio_opens += record.get("STDIO_OPENS")
            profile.stdio_reads += record.get("STDIO_READS")
            profile.stdio_writes += record.get("STDIO_WRITES")
            profile.stdio_bytes_read += record.get("STDIO_BYTES_READ")
            profile.stdio_bytes_written += record.get("STDIO_BYTES_WRITTEN")
        return profile

    def _accumulate_posix(self, profile: IOProfile, record: RecordDelta) -> None:
        reads = record.get("POSIX_READS")
        writes = record.get("POSIX_WRITES")
        opens = record.get("POSIX_OPENS")
        if not (reads or writes or opens or record.get("POSIX_STATS")):
            return
        profile.posix_opens += opens
        profile.posix_reads += reads
        profile.posix_writes += writes
        profile.posix_seeks += record.get("POSIX_SEEKS")
        profile.posix_stats += record.get("POSIX_STATS")
        profile.posix_bytes_read += record.get("POSIX_BYTES_READ")
        profile.posix_bytes_written += record.get("POSIX_BYTES_WRITTEN")
        profile.zero_byte_reads += max(0, record.get("POSIX_SIZE_READ_0_100"))
        profile.read_time += record.fcounters.get("POSIX_F_READ_TIME", 0.0)
        profile.write_time += record.fcounters.get("POSIX_F_WRITE_TIME", 0.0)
        profile.meta_time += record.fcounters.get("POSIX_F_META_TIME", 0.0)

        for label in SIZE_BUCKET_LABELS:
            read_count = record.get(f"POSIX_SIZE_READ_{label}")
            if read_count:
                profile.read_size_histogram[label] = (
                    profile.read_size_histogram.get(label, 0) + read_count)
            write_count = record.get(f"POSIX_SIZE_WRITE_{label}")
            if write_count:
                profile.write_size_histogram[label] = (
                    profile.write_size_histogram.get(label, 0) + write_count)

        profile.access_pattern.total_reads += reads
        profile.access_pattern.sequential += record.get("POSIX_SEQ_READS")
        profile.access_pattern.consecutive += record.get("POSIX_CONSEC_READS")

        observed_size = max(
            record.end_counters.get("POSIX_MAX_BYTE_READ", 0),
            record.end_counters.get("POSIX_MAX_BYTE_WRITTEN", 0)) + 1
        size_label = size_bucket(max(0, observed_size))
        profile.file_size_histogram[size_label] = (
            profile.file_size_histogram.get(size_label, 0) + 1)

        profile.files.append(FileIOStats(
            path=record.path or f"record-{record.record_id:#x}",
            record_id=record.record_id,
            opens=opens,
            reads=reads,
            writes=writes,
            bytes_read=record.get("POSIX_BYTES_READ"),
            bytes_written=record.get("POSIX_BYTES_WRITTEN"),
            seq_reads=record.get("POSIX_SEQ_READS"),
            consec_reads=record.get("POSIX_CONSEC_READS"),
            zero_reads=record.get("POSIX_SIZE_READ_0_100"),
            read_time=record.fcounters.get("POSIX_F_READ_TIME", 0.0),
            write_time=record.fcounters.get("POSIX_F_WRITE_TIME", 0.0),
            meta_time=record.fcounters.get("POSIX_F_META_TIME", 0.0),
            observed_size=observed_size,
        ))
