"""``DarshanTracer``: the tf-Darshan profiler plugged into TensorFlow.

The tracer implements the same ``ProfilerInterface`` the host and CUPTI
tracers implement, so the TensorFlow runtime starts and stops it with every
profiling session regardless of how the session was initiated (TensorBoard
callback, manual API, or the interactive server).  On start it makes sure
Darshan is attached and snapshots the live records; on stop it snapshots
again; at collection time it diffs the snapshots, runs the in-situ analysis
and (optionally) converts the DXT segments into TraceViewer timelines.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.tfmini.profiler.session import ProfilerOptions
from repro.tfmini.profiler.tracers import ProfilerInterface
from repro.tfmini.profiler.xplane import XSpace
from repro.core.analysis import InSituAnalyzer, IOProfile
from repro.core.attach import get_attachment
from repro.core.config import TfDarshanOptions
from repro.core.events import build_posix_plane, build_stdio_plane
from repro.core.wrapper import DarshanMiddleman, Snapshot


class DarshanTracer(ProfilerInterface):
    """tf-Darshan's tracer (one instance per profiling session)."""

    name = "tf_darshan"

    def __init__(self, runtime, profiler_options: Optional[ProfilerOptions] = None,
                 options: Optional[TfDarshanOptions] = None):
        self.runtime = runtime
        self.env = runtime.env
        self.options = options or getattr(runtime, "_tf_darshan_options",
                                          None) or TfDarshanOptions()
        self.profiler_options = profiler_options
        self.attachment = get_attachment(runtime, self.options)
        self.middleman = DarshanMiddleman(self.attachment, self.options.costs)
        self.analyzer = InSituAnalyzer(self.env, self.options.costs)
        self.start_snapshot: Optional[Snapshot] = None
        self.stop_snapshot: Optional[Snapshot] = None
        #: The profile produced at collection time (also stored on the runtime).
        self.last_collected: Optional[IOProfile] = None

    # -- ProfilerInterface ------------------------------------------------------
    def start(self) -> Generator:
        """Attach (first session only) and snapshot the module buffers."""
        yield from self.attachment.attach()
        self.start_snapshot = yield from self.middleman.take_snapshot()

    def stop(self) -> Generator:
        """Snapshot the module buffers again at the end of the window."""
        self.stop_snapshot = yield from self.middleman.take_snapshot()

    def collect_data(self, space: XSpace) -> Generator:
        """Diff, analyse and export into the shared XSpace."""
        if self.start_snapshot is None or self.stop_snapshot is None:
            return
        delta = self.middleman.diff(self.start_snapshot, self.stop_snapshot)
        profile = yield from self.analyzer.analyze(delta)
        self.last_collected = profile
        self.runtime.last_io_profile = profile
        self.runtime.last_io_delta = delta

        logdir = self.profiler_options.logdir if self.profiler_options else None
        mode = self.options.resolve_export_mode(logdir)
        costs = self.options.costs
        per_record = (costs.export_per_record_full if mode == "full"
                      else costs.export_per_record_lite)
        per_segment = (costs.export_per_segment_full if mode == "full"
                       else costs.export_per_segment_lite)
        n_records = len(delta.posix) + len(delta.stdio)
        export_cost = (costs.per_session + per_record * n_records
                       + per_segment * delta.segment_count)

        if self.options.export_trace_events and self.options.enable_dxt:
            posix_plane = build_posix_plane(delta, self.middleman.resolve_name)
            posix_plane.stats["summary"] = profile.summary()
            posix_plane.stats["read_bandwidth_mbps"] = (
                profile.posix_read_bandwidth / 1e6)
            space.planes[posix_plane.name] = posix_plane
            if delta.dxt_stdio:
                stdio_plane = build_stdio_plane(delta, self.middleman.resolve_name)
                space.planes[stdio_plane.name] = stdio_plane

        if export_cost > 0:
            yield self.env.timeout(export_cost)


def register_tf_darshan(runtime, options: Optional[TfDarshanOptions] = None):
    """Register the DarshanTracer factory with the runtime's profiler.

    After this call every profiling session — TensorBoard callback, manual
    start/stop or interactive capture — includes tf-Darshan, which is how
    the paper integrates with all three profiling modes.  Returns the
    factory so callers can unregister it again.
    """
    opts = options or TfDarshanOptions()
    runtime._tf_darshan_options = opts

    def factory(rt, profiler_options=None):
        return DarshanTracer(rt, profiler_options, opts)

    runtime.profiler_registry.register(factory)
    return factory
