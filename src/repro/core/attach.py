"""Runtime attachment of Darshan instrumentation (the paper's Fig. 2).

Stock Darshan relies on ``LD_PRELOAD``; tf-Darshan instead loads the Darshan
shared library at the moment the first profiling session starts, scans the
process's Global Offset Table for the I/O symbols it wants to interpose and
patches them to point into Darshan — all without restarting the process and
without modifying Darshan itself.  In the reproduction the "GOT" is the
:class:`~repro.posix.dispatch.SymbolTable` of the simulated process and
"loading libdarshan.so" instantiates the Darshan runtime objects.

Attachment is idempotent and reversible: ``detach`` restores every patched
symbol, which the paper lists as a capability difference against stock
Darshan (runtime start/stop in Table I).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.darshan.posix_module import PosixModule
from repro.darshan.runtime import DarshanCore
from repro.darshan.stdio_module import StdioModule
from repro.core.config import TfDarshanOptions


class RuntimeAttachment:
    """Loads Darshan into the running process and patches the symbol table."""

    def __init__(self, runtime, options: Optional[TfDarshanOptions] = None):
        self.runtime = runtime
        self.env = runtime.env
        self.options = options or TfDarshanOptions()
        self.symbols = runtime.os.symbols
        self.core: Optional[DarshanCore] = None
        self.posix_module: Optional[PosixModule] = None
        self.stdio_module: Optional[StdioModule] = None
        self.attached = False
        self.patched_symbols: List[str] = []
        #: Number of times attach() found itself already attached.
        self.reattach_requests = 0

    # -- lifecycle ----------------------------------------------------------
    def attach(self) -> Generator:
        """Load Darshan and patch the requested symbols (idempotent)."""
        if self.attached:
            self.reattach_requests += 1
            return self
        # "dlopen libdarshan.so": instantiate the Darshan runtime inside the
        # process.  DXT follows the tf-Darshan option.
        darshan_config = self.options.darshan
        darshan_config.enable_dxt = self.options.enable_dxt
        self.core = DarshanCore(self.env, darshan_config)
        self.posix_module = PosixModule(self.core)
        self.stdio_module = StdioModule(self.core)

        # "Scan the GOT": every registered I/O symbol we were asked to
        # interpose and that actually resolves in this process.
        available = set(self.symbols.symbols())
        wanted = [name for name in self.options.symbols if name in available]
        real: Dict[str, object] = {name: self.symbols.resolve(name)
                                   for name in wanted}

        # "Patch the GOT": redirect the symbols into the Darshan wrappers.
        for name, wrapper in self.posix_module.make_wrappers(real).items():
            self.symbols.patch(name, wrapper)
            self.patched_symbols.append(name)
        for name, wrapper in self.stdio_module.make_wrappers(real).items():
            self.symbols.patch(name, wrapper)
            self.patched_symbols.append(name)

        yield self.env.timeout(self.options.costs.attach)
        self.attached = True
        return self

    def detach(self) -> Generator:
        """Restore every symbol this attachment patched."""
        if not self.attached:
            return self
        for name in self.patched_symbols:
            self.symbols.restore(name)
        self.patched_symbols = []
        yield self.env.timeout(self.options.costs.detach)
        self.attached = False
        return self


def get_attachment(runtime, options: Optional[TfDarshanOptions] = None
                   ) -> RuntimeAttachment:
    """The per-process attachment singleton (one Darshan per process)."""
    existing = getattr(runtime, "_tf_darshan_attachment", None)
    if existing is None:
        existing = RuntimeAttachment(runtime, options)
        runtime._tf_darshan_attachment = existing
    return existing
