"""TensorBoard Profile-plugin extension.

The paper modifies the TensorBoard Profile plugin so the Input-Pipeline
Analysis page additionally shows tf-Darshan's POSIX statistics (bandwidth,
operation counts, read-size and file-size distributions) and the TraceViewer
shows one timeline per file.  There is no web UI in this reproduction; the
same content is produced as structured dictionaries, JSON files in the log
directory and terminal-renderable text panels (used by the examples and the
benchmark reports).
"""

from __future__ import annotations

import json
import os as host_os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.darshan.counters import SIZE_BUCKET_LABELS
from repro.tfmini.profiler.analysis import InputPipelineAnalysis
from repro.core.analysis import IOProfile


def _ascii_bar(value: int, max_value: int, width: int = 30) -> str:
    if max_value <= 0:
        return ""
    filled = int(round(width * value / max_value))
    return "#" * filled


def render_histogram(histogram: Dict[str, int], title: str) -> str:
    """ASCII rendering of a Darshan-style size histogram."""
    lines = [title]
    max_value = max(histogram.values(), default=0)
    for label in SIZE_BUCKET_LABELS:
        count = histogram.get(label, 0)
        if count:
            lines.append(f"  {label:<10} {count:>10}  {_ascii_bar(count, max_value)}")
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)


@dataclass
class ProfilePluginData:
    """Everything the extended Input-Pipeline Analysis page shows."""

    io_profile: IOProfile
    input_pipeline: Optional[InputPipelineAnalysis] = None
    title: str = "tf-Darshan profile"

    # -- structured view ---------------------------------------------------
    def to_dict(self) -> dict:
        profile = self.io_profile
        data = {
            "title": self.title,
            "window": {"start": profile.window_start, "end": profile.window_end,
                       "duration": profile.duration},
            "posix": {
                "opens": profile.posix_opens,
                "reads": profile.posix_reads,
                "writes": profile.posix_writes,
                "zero_byte_reads": profile.zero_byte_reads,
                "bytes_read": profile.posix_bytes_read,
                "bytes_written": profile.posix_bytes_written,
                "read_bandwidth_mbps": profile.posix_read_bandwidth / 1e6,
                "write_bandwidth_mbps": profile.posix_write_bandwidth / 1e6,
                "sequential_read_fraction": profile.access_pattern.sequential_fraction,
                "consecutive_read_fraction": profile.access_pattern.consecutive_fraction,
                "read_size_histogram": dict(profile.read_size_histogram),
                "write_size_histogram": dict(profile.write_size_histogram),
                "file_size_histogram": dict(profile.file_size_histogram),
                "files": profile.total_files,
            },
            "stdio": {
                "opens": profile.stdio_opens,
                "reads": profile.stdio_reads,
                "writes": profile.stdio_writes,
                "bytes_written": profile.stdio_bytes_written,
            },
        }
        if self.input_pipeline is not None:
            data["input_pipeline"] = {
                "num_steps": self.input_pipeline.num_steps,
                "avg_step_time": self.input_pipeline.avg_step_time,
                "input_percent": self.input_pipeline.input_percent,
                "classification": self.input_pipeline.classification,
            }
        return data

    # -- text view -------------------------------------------------------------
    def render(self) -> str:
        """Terminal rendering of the extended Input-Pipeline Analysis page."""
        parts: List[str] = [self.title, "=" * len(self.title)]
        if self.input_pipeline is not None:
            parts.append(self.input_pipeline.summary())
            parts.append("")
        parts.append(self.io_profile.summary())
        parts.append("")
        parts.append(render_histogram(self.io_profile.read_size_histogram,
                                      "POSIX read size distribution"))
        parts.append(render_histogram(self.io_profile.file_size_histogram,
                                      "File size distribution (observed)"))
        return "\n".join(parts)

    # -- export ------------------------------------------------------------------
    def write(self, logdir: str, filename: str = "darshan_io_analysis.json") -> str:
        """Write the structured panel data into the TensorBoard log dir."""
        host_os.makedirs(logdir, exist_ok=True)
        path = host_os.path.join(logdir, filename)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path


def build_plugin_data(io_profile: IOProfile,
                      input_pipeline: Optional[InputPipelineAnalysis] = None,
                      title: str = "tf-Darshan profile") -> ProfilePluginData:
    """Convenience constructor used by the session API and the benchmarks."""
    return ProfilePluginData(io_profile=io_profile,
                             input_pipeline=input_pipeline, title=title)
