"""High-level tf-Darshan session API.

``enable(runtime)`` is all a user needs: it registers the DarshanTracer with
the runtime's profiler registry so every subsequent profiling session —
Keras TensorBoard callback, manual ``profiler_start``/``profiler_stop`` or
the interactive server — transparently includes fine-grained I/O profiling.
:class:`TfDarshanSession` additionally offers the manual start/stop pattern
used by the STREAM validation experiment (profile a window, read the
bandwidth, repeat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.tfmini.profiler.session import (
    ProfilerOptions,
    profiler_start,
    profiler_stop,
)
from repro.core.analysis import IOProfile
from repro.core.config import TfDarshanOptions
from repro.core.tensorboard import ProfilePluginData, build_plugin_data
from repro.core.tracer import register_tf_darshan


def enable(runtime, options: Optional[TfDarshanOptions] = None):
    """Enable tf-Darshan on a runtime (idempotent); returns the options used."""
    if getattr(runtime, "_tf_darshan_enabled", False):
        return runtime._tf_darshan_options
    opts = options or TfDarshanOptions()
    register_tf_darshan(runtime, opts)
    runtime._tf_darshan_enabled = True
    return opts


def is_enabled(runtime) -> bool:
    """``True`` once :func:`enable` has been called on the runtime."""
    return bool(getattr(runtime, "_tf_darshan_enabled", False))


def last_profile(runtime) -> Optional[IOProfile]:
    """The I/O profile collected by the most recent profiling session."""
    return getattr(runtime, "last_io_profile", None)


@dataclass
class WindowResult:
    """One manually profiled window (used by the STREAM validation)."""

    index: int
    start: float
    end: float
    io_profile: Optional[IOProfile]

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def read_bandwidth(self) -> float:
        return self.io_profile.posix_read_bandwidth if self.io_profile else 0.0


class TfDarshanSession:
    """Manual profiling sessions on a tf-Darshan-enabled runtime."""

    def __init__(self, runtime, options: Optional[TfDarshanOptions] = None,
                 logdir: Optional[str] = None,
                 profiler_options: Optional[ProfilerOptions] = None):
        self.runtime = runtime
        self.options = enable(runtime, options)
        self.logdir = logdir
        self.profiler_options = profiler_options
        self.windows: List[WindowResult] = []
        self._window_start: Optional[float] = None

    # -- manual start / stop ----------------------------------------------------
    def start(self) -> Generator:
        """Start a profiling window (``tf.profiler.experimental.start``)."""
        options = self.profiler_options or ProfilerOptions(logdir=self.logdir)
        yield from profiler_start(self.runtime, logdir=self.logdir,
                                  options=options)
        self._window_start = self.runtime.env.now

    def stop(self) -> Generator:
        """Stop the window; returns the :class:`WindowResult`."""
        result = yield from profiler_stop(self.runtime)
        window = WindowResult(
            index=len(self.windows),
            start=result.start_time,
            end=result.end_time,
            io_profile=last_profile(self.runtime),
        )
        self.windows.append(window)
        self._window_start = None
        return window

    # -- reporting ----------------------------------------------------------------
    def bandwidth_series(self) -> List[tuple]:
        """(window end time, read bandwidth) pairs — the red dots of Fig. 3/4."""
        return [(w.end, w.read_bandwidth) for w in self.windows]

    def plugin_data(self, window: Optional[WindowResult] = None,
                    title: str = "tf-Darshan profile") -> ProfilePluginData:
        """The extended Input-Pipeline Analysis content for one window."""
        target = window or (self.windows[-1] if self.windows else None)
        if target is None or target.io_profile is None:
            raise ValueError("no profiled window available")
        analysis = self.runtime.input_pipeline_analysis(target.start, target.end)
        return build_plugin_data(target.io_profile, analysis, title=title)
