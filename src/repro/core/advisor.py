"""Optimization advisors driven by tf-Darshan profiles.

The paper's case studies use the collected I/O profile to decide two
optimizations by hand: increasing ``num_parallel_calls`` for the small-file
ImageNet workload (8x bandwidth) and staging every file smaller than 2 MB
onto the Optane tier for the malware workload (+19 % bandwidth from staging
only 8 % of the bytes).  The advisors encode that reasoning so it can be
applied programmatically — the "automated decision making and auto-tuning"
the discussion section points to as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import IOProfile

MIB = 1 << 20


@dataclass
class StagingRecommendation:
    """Which files to move to the fast tier and what that buys."""

    threshold_bytes: int
    files: List[str]
    staged_bytes: int
    total_bytes: int
    total_files: int

    @property
    def file_count(self) -> int:
        return len(self.files)

    @property
    def byte_fraction(self) -> float:
        return self.staged_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def file_fraction(self) -> float:
        return self.file_count / self.total_files if self.total_files else 0.0

    def summary(self) -> str:
        return (f"stage {self.file_count} files (< {self.threshold_bytes / MIB:.1f} MiB) "
                f"= {self.staged_bytes / (1 << 30):.2f} GiB, "
                f"{self.byte_fraction * 100:.1f} % of bytes, "
                f"{self.file_fraction * 100:.1f} % of files")


class StagingAdvisor:
    """Selects small files for staging onto a fast storage tier.

    The selection criterion follows the paper: files small enough to be read
    in a single POSIX read (below the read-buffer size / a user threshold)
    dominate the per-file overhead on a rotational device while contributing
    little to the total volume, so they give the best bandwidth return per
    staged byte.
    """

    def __init__(self, fast_tier_capacity: Optional[int] = None):
        self.fast_tier_capacity = fast_tier_capacity

    def recommend(self, file_sizes: Dict[str, int],
                  threshold_bytes: int = 2 * MIB) -> StagingRecommendation:
        """Recommend staging every file smaller than ``threshold_bytes``."""
        total_bytes = sum(file_sizes.values())
        candidates = sorted(
            (path for path, size in file_sizes.items() if size < threshold_bytes),
            key=lambda p: file_sizes[p])
        staged: List[str] = []
        staged_bytes = 0
        for path in candidates:
            size = file_sizes[path]
            if (self.fast_tier_capacity is not None
                    and staged_bytes + size > self.fast_tier_capacity):
                break
            staged.append(path)
            staged_bytes += size
        return StagingRecommendation(
            threshold_bytes=threshold_bytes,
            files=staged,
            staged_bytes=staged_bytes,
            total_bytes=total_bytes,
            total_files=len(file_sizes),
        )

    def recommend_from_profile(self, profile: IOProfile,
                               threshold_bytes: int = 2 * MIB
                               ) -> StagingRecommendation:
        """Recommendation based on the sizes tf-Darshan observed."""
        return self.recommend(profile.file_sizes(), threshold_bytes)

    def sweep(self, file_sizes: Dict[str, int],
              thresholds: Sequence[int]) -> List[StagingRecommendation]:
        """Evaluate several thresholds (used by the ablation benchmark)."""
        return [self.recommend(file_sizes, t) for t in thresholds]


@dataclass
class ThreadingRecommendation:
    """Suggested ``num_parallel_calls`` with the reasoning behind it."""

    recommended_threads: int
    current_threads: int
    reason: str

    @property
    def change(self) -> str:
        if self.recommended_threads > self.current_threads:
            return "increase"
        if self.recommended_threads < self.current_threads:
            return "decrease"
        return "keep"


class ThreadingAdvisor:
    """Recommends input-pipeline parallelism from the observed I/O profile.

    Heuristic distilled from the two case studies: latency-bound small-file
    workloads (low bandwidth, low sequential fraction, small median access)
    benefit from more parallel pipelines, while streaming large-file
    workloads on a rotational device lose aggregate bandwidth to seek
    thrashing when parallelism increases.
    """

    #: Access-size buckets considered "small" (metadata/latency bound).
    SMALL_BUCKETS = ("0_100", "100_1K", "1K_10K", "10K_100K")

    def __init__(self, max_threads: int = 32):
        self.max_threads = max_threads

    def recommend(self, profile: IOProfile, current_threads: int,
                  rotational_storage: bool = False) -> ThreadingRecommendation:
        non_zero_reads = max(1, profile.posix_reads - profile.zero_byte_reads)
        small_reads = sum(profile.read_size_histogram.get(b, 0)
                          for b in self.SMALL_BUCKETS)
        small_reads -= profile.zero_byte_reads
        small_fraction = max(0.0, small_reads) / non_zero_reads
        sequential = profile.access_pattern.sequential_fraction

        latency_bound = (small_fraction > 0.5
                         and (profile.posix_read_bandwidth < 50e6
                              or current_threads <= 2))
        if latency_bound:
            threads = min(self.max_threads, max(current_threads * 8, 8))
            reason = ("small reads dominate: each sample costs a metadata "
                      "round trip, the pipeline is latency bound, add "
                      "parallel calls")
            return ThreadingRecommendation(threads, current_threads, reason)
        if rotational_storage and sequential > 0.5 and small_fraction < 0.5:
            reason = ("large sequential reads on a rotational device: "
                      "parallel streams would cause seek thrashing")
            return ThreadingRecommendation(min(current_threads, 1) or 1,
                                           current_threads, reason)
        reason = "access pattern does not indicate a clear win from re-threading"
        return ThreadingRecommendation(current_threads, current_threads, reason)
