"""Conversion of DXT segments into TraceViewer timelines.

tf-Darshan adds a plane to the collected profile in which every file Darshan
saw becomes one timeline and every POSIX read/write segment becomes one
event — the view used in Fig. 8 (zero-length reads terminating every file)
and Fig. 10 (the POSIX segments belonging to one TensorFlow ReadFile op).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.darshan.dxt import DxtSegment
from repro.tfmini.profiler.xplane import XEvent, XPlane
from repro.core.wrapper import SnapshotDelta

#: Name of the plane tf-Darshan adds to the XSpace.
DARSHAN_PLANE_NAME = "/host:tf-Darshan POSIX"
DARSHAN_STDIO_PLANE_NAME = "/host:tf-Darshan STDIO"


def segment_to_event(segment: DxtSegment) -> XEvent:
    """One DXT segment becomes one TraceViewer event."""
    name = "pread" if segment.op == "read" else "pwrite"
    if segment.op == "read" and segment.length == 0:
        name = "pread (zero-length)"
    return XEvent(
        name=name,
        start=segment.start_time,
        duration=segment.duration,
        metadata={"offset": segment.offset, "length": segment.length,
                  "op": segment.op},
    )


def build_posix_plane(delta: SnapshotDelta,
                      resolve_name: Callable[[int], Optional[str]],
                      plane_name: str = DARSHAN_PLANE_NAME) -> XPlane:
    """Build the per-file POSIX timeline plane from a snapshot delta."""
    plane = XPlane(plane_name)
    for record_id, segments in sorted(delta.dxt_posix.items()):
        path = resolve_name(record_id) or f"record-{record_id:#x}"
        line = plane.line(path)
        for segment in segments:
            line.add(segment_to_event(segment))
    plane.stats["num_files"] = len(delta.dxt_posix)
    plane.stats["num_events"] = plane.event_count
    return plane


def build_stdio_plane(delta: SnapshotDelta,
                      resolve_name: Callable[[int], Optional[str]]) -> XPlane:
    """Build the STDIO (checkpoint traffic) timeline plane."""
    plane = XPlane(DARSHAN_STDIO_PLANE_NAME)
    for record_id, segments in sorted(delta.dxt_stdio.items()):
        path = resolve_name(record_id) or f"record-{record_id:#x}"
        line = plane.line(path)
        for segment in segments:
            event = segment_to_event(segment)
            event.name = "fread" if segment.op == "read" else "fwrite"
            line.add(event)
    plane.stats["num_files"] = len(delta.dxt_stdio)
    plane.stats["num_events"] = plane.event_count
    return plane


def zero_length_read_files(delta: SnapshotDelta,
                           resolve_name: Callable[[int], Optional[str]]
                           ) -> List[str]:
    """Paths whose final traced read was a zero-length read (Fig. 8)."""
    out: List[str] = []
    for record_id, segments in delta.dxt_posix.items():
        reads = [s for s in segments if s.op == "read"]
        if reads and reads[-1].length == 0:
            out.append(resolve_name(record_id) or f"record-{record_id:#x}")
    return sorted(out)


def reads_overlapping(delta: SnapshotDelta, start: float, end: float
                      ) -> Dict[int, List[DxtSegment]]:
    """Segments overlapping a host-op window (how Fig. 10 relates a
    TensorFlow ReadFile op to its POSIX segments by time range)."""
    out: Dict[int, List[DxtSegment]] = {}
    for record_id, segments in delta.dxt_posix.items():
        hits = [s for s in segments if s.end_time > start and s.start_time < end]
        if hits:
            out[record_id] = hits
    return out
