"""Configuration of tf-Darshan."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.darshan.runtime import DarshanConfig
from repro.posix.dispatch import IO_SYMBOLS


@dataclass
class TfDarshanCosts:
    """Simulated cost model of tf-Darshan's own work.

    The paper attributes most of tf-Darshan's 10-20 % overhead to the trace
    collection and in-situ analysis performed *after profiling stops* rather
    than to the per-operation instrumentation (Section IV-C, Fig. 5 and
    Fig. 12).  The cost model therefore has a small per-operation component
    (inherited from Darshan, see
    :class:`~repro.darshan.runtime.DarshanConfig`) and the following
    stop-time components.
    """

    #: One-off cost of the runtime attachment (dlopen + GOT scan and patch).
    attach: float = 6e-3
    #: Cost of restoring the patched symbols.
    detach: float = 1.5e-3
    #: Copying the live module buffers at profile start/stop, per record.
    snapshot_per_record: float = 20e-6
    #: In-situ statistics (bandwidth, histograms, access pattern), per record.
    analysis_per_record: float = 80e-6
    #: In-situ statistics per DXT segment in the profiling window.
    analysis_per_segment: float = 12e-6
    #: Full TensorBoard export (per-file panels + protobuf), per record.
    export_per_record_full: float = 0.75e-3
    #: Full TensorBoard export, per DXT segment (TraceViewer timelines).
    export_per_segment_full: float = 0.68e-3
    #: Lightweight in-situ reporting (no TensorBoard export), per record.
    export_per_record_lite: float = 0.55e-3
    #: Lightweight in-situ reporting, per DXT segment.
    export_per_segment_lite: float = 30e-6
    #: Fixed cost of wrapping up one profiling session.
    per_session: float = 40e-3


@dataclass
class TfDarshanOptions:
    """User-facing options of the tf-Darshan tracer."""

    #: Record and export individual I/O segments (DXT + TraceViewer lines).
    enable_dxt: bool = True
    #: Convert DXT segments into TraceViewer timelines at collection time.
    export_trace_events: bool = True
    #: Symbols to interpose.  Defaults to every known I/O symbol.
    symbols: Sequence[str] = tuple(IO_SYMBOLS)
    #: Darshan runtime configuration used when attaching.
    darshan: DarshanConfig = field(default_factory=DarshanConfig)
    #: Cost model (exposed for the ablation benchmarks).
    costs: TfDarshanCosts = field(default_factory=TfDarshanCosts)
    #: Force full/lite export regardless of whether a logdir is set
    #: (None = decide from the profiler session's logdir).
    export_mode: Optional[str] = None

    def resolve_export_mode(self, logdir: Optional[str]) -> str:
        """'full' when exporting to TensorBoard, 'lite' for in-situ only."""
        if self.export_mode in ("full", "lite"):
            return self.export_mode
        return "full" if logdir else "lite"
