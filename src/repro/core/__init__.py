"""tf-Darshan: fine-grained I/O profiling inside the TensorFlow profiler.

This package is the paper's contribution: the ``DarshanTracer`` profiler
plugin, the runtime attachment that patches the process's I/O symbols, the
middle-man snapshot/extraction layer, the in-situ analysis, the TensorBoard
Profile-plugin extension and the optimization advisors used in the case
studies.
"""

from repro.core.analysis import AccessPattern, FileIOStats, InSituAnalyzer, IOProfile
from repro.core.advisor import (
    StagingAdvisor,
    StagingRecommendation,
    ThreadingAdvisor,
    ThreadingRecommendation,
)
from repro.core.attach import RuntimeAttachment, get_attachment
from repro.core.config import TfDarshanCosts, TfDarshanOptions
from repro.core.events import (
    DARSHAN_PLANE_NAME,
    DARSHAN_STDIO_PLANE_NAME,
    build_posix_plane,
    build_stdio_plane,
    reads_overlapping,
    zero_length_read_files,
)
from repro.core.session import (
    TfDarshanSession,
    WindowResult,
    enable,
    is_enabled,
    last_profile,
)
from repro.core.tensorboard import ProfilePluginData, build_plugin_data, render_histogram
from repro.core.tracer import DarshanTracer, register_tf_darshan
from repro.core.wrapper import (
    DarshanMiddleman,
    RecordDelta,
    Snapshot,
    SnapshotDelta,
)

__all__ = [
    "AccessPattern",
    "DARSHAN_PLANE_NAME",
    "DARSHAN_STDIO_PLANE_NAME",
    "DarshanMiddleman",
    "DarshanTracer",
    "FileIOStats",
    "IOProfile",
    "InSituAnalyzer",
    "ProfilePluginData",
    "RecordDelta",
    "RuntimeAttachment",
    "Snapshot",
    "SnapshotDelta",
    "StagingAdvisor",
    "StagingRecommendation",
    "TfDarshanCosts",
    "TfDarshanOptions",
    "TfDarshanSession",
    "ThreadingAdvisor",
    "ThreadingRecommendation",
    "WindowResult",
    "build_plugin_data",
    "build_posix_plane",
    "build_stdio_plane",
    "enable",
    "get_attachment",
    "is_enabled",
    "last_profile",
    "reads_overlapping",
    "register_tf_darshan",
    "render_histogram",
    "zero_length_read_files",
]
