"""Fluid fair-sharing bandwidth resource.

Storage devices and CPU pools are modelled as *fluid* resources: every
active flow receives an equal share of the aggregate rate, optionally capped
per flow and degraded as a function of the number of concurrent flows (an
``efficiency`` curve — this is how HDD seek-thrashing under concurrent
streams is expressed).  Whenever the set of active flows changes, the
remaining work of every flow is re-evaluated and the next completion is
rescheduled.  The model is the standard progress-based flow model used by
network/storage simulators and gives deterministic, closed-form sharing
without simulating individual requests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.sim.environment import Environment
from repro.sim.events import Event

#: Relative tolerance used to decide that a flow has completed.
_EPS = 1e-9


@dataclass
class TransferRecord:
    """Completed transfer returned as the value of a transfer event."""

    amount: float
    start: float
    end: float
    tag: Any = None

    @property
    def duration(self) -> float:
        """Elapsed time of the transfer in simulated seconds."""
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Average achieved rate (amount / duration); ``inf`` for instant."""
        if self.duration <= 0:
            return math.inf
        return self.amount / self.duration


@dataclass
class _Flow:
    event: Event
    remaining: float
    amount: float
    start: float
    tag: Any = None
    weight: float = 1.0


class SharedBandwidth:
    """A rate-limited resource shared fairly among concurrent flows.

    Parameters
    ----------
    env:
        The simulation environment.
    rate:
        Aggregate rate in units/second (bytes/s for devices, core-seconds/s
        for CPU pools).
    per_flow_rate:
        Optional cap on the rate a single flow may receive (e.g. the
        single-stream bandwidth of one Lustre OST, or 1.0 core for a CPU).
    efficiency:
        Optional callable ``n_flows -> factor`` in ``(0, 1]`` scaling the
        aggregate rate when ``n_flows`` flows are active.  Used to express
        devices whose total throughput *drops* under concurrency (HDDs).
    name:
        Label used in repr/debugging output.
    """

    def __init__(
        self,
        env: Environment,
        rate: float,
        per_flow_rate: Optional[float] = None,
        efficiency: Optional[Callable[[int], float]] = None,
        name: str = "",
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if per_flow_rate is not None and per_flow_rate <= 0:
            raise ValueError("per_flow_rate must be positive")
        self.env = env
        self.rate = float(rate)
        self.per_flow_rate = per_flow_rate
        self.efficiency = efficiency
        self.name = name
        self._flows: List[_Flow] = []
        self._last_update = env.now
        self._wake_generation = 0
        #: total units completed through this resource (monotonic)
        self.total_transferred = 0.0

    # -- public API ------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Number of flows currently in progress."""
        return len(self._flows)

    def current_per_flow_rate(self) -> float:
        """Rate each active flow currently receives (0 if no flows)."""
        return self._share(len(self._flows))

    def transfer(self, amount: float, tag: Any = None, weight: float = 1.0) -> Event:
        """Start a transfer of ``amount`` units.

        Returns an event whose value is a :class:`TransferRecord` once the
        transfer completes.  A zero/negative ``amount`` completes
        immediately.
        """
        event = Event(self.env)
        if amount <= 0:
            event.succeed(TransferRecord(0.0, self.env.now, self.env.now, tag))
            return event
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._advance()
        self._flows.append(_Flow(event, float(amount), float(amount),
                                 self.env.now, tag, weight))
        self._reschedule()
        return event

    # -- sharing model -----------------------------------------------------
    def _share(self, n_flows: int, weight: float = 1.0, total_weight: Optional[float] = None) -> float:
        if n_flows <= 0:
            return 0.0
        aggregate = self.rate
        if self.efficiency is not None:
            factor = self.efficiency(n_flows)
            if factor <= 0:
                raise ValueError("efficiency() must return a positive factor")
            aggregate *= factor
        if total_weight is None:
            total_weight = float(n_flows) * weight
        share = aggregate * (weight / total_weight)
        if self.per_flow_rate is not None:
            share = min(share, self.per_flow_rate)
        return share

    def _flow_rates(self) -> List[float]:
        n = len(self._flows)
        total_weight = sum(f.weight for f in self._flows)
        return [self._share(n, f.weight, total_weight) for f in self._flows]

    # -- internal bookkeeping ---------------------------------------------
    def _time_quantum(self) -> float:
        """Smallest meaningful time step at the current simulation time.

        Completion checks and wake-ups are quantised to this value so that
        floating-point residue (a few ulps of ``now`` times a very high
        rate) can never leave a flow with an un-transferable remainder that
        would stall progress.
        """
        return max(1e-12, abs(self.env.now) * 1e-12)

    def _advance(self) -> None:
        """Account for progress made since the last update."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._flows:
            return
        rates = self._flow_rates()
        for flow, rate in zip(self._flows, rates):
            flow.remaining = max(0.0, flow.remaining - rate * elapsed)

    def _complete_finished(self) -> None:
        # A flow counts as finished when its remainder could be moved within
        # one time quantum at the aggregate rate (sub-nanosecond error) or is
        # a pure floating-point residue of its own size.
        threshold = self.rate * self._time_quantum()
        finished = [
            f for f in self._flows
            if f.remaining <= max(threshold, _EPS * max(1.0, f.amount))
        ]
        if not finished:
            return
        self._flows = [f for f in self._flows if f not in finished]
        now = self.env.now
        for flow in finished:
            self.total_transferred += flow.amount
            flow.event.succeed(
                TransferRecord(flow.amount, flow.start, now, flow.tag))

    def _reschedule(self) -> None:
        self._wake_generation += 1
        generation = self._wake_generation
        if not self._flows:
            return
        rates = self._flow_rates()
        time_to_next = min(
            flow.remaining / rate if rate > 0 else math.inf
            for flow, rate in zip(self._flows, rates)
        )
        if math.isinf(time_to_next):  # pragma: no cover - defensive
            return
        time_to_next = max(time_to_next, self._time_quantum())
        wake = self.env.timeout(time_to_next)
        wake.callbacks.append(lambda _ev, gen=generation: self._on_wake(gen))

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a newer flow-set change
        self._advance()
        self._complete_finished()
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SharedBandwidth {self.name or id(self):#x} rate={self.rate} "
                f"flows={len(self._flows)}>")


class CPUPool(SharedBandwidth):
    """A pool of CPU cores modelled as a shared-rate resource.

    A "transfer" of ``w`` units corresponds to ``w`` seconds of
    single-threaded CPU work; with ``cores`` cores, up to ``cores`` such
    tasks can proceed at full speed concurrently, and more than that degrade
    gracefully by sharing.
    """

    def __init__(self, env: Environment, cores: int, name: str = "cpu"):
        if cores <= 0:
            raise ValueError("cores must be positive")
        super().__init__(env, rate=float(cores), per_flow_rate=1.0, name=name)
        self.cores = int(cores)

    def compute(self, seconds: float, tag: Any = None) -> Event:
        """Perform ``seconds`` of single-threaded CPU work."""
        return self.transfer(seconds, tag=tag)
