"""The simulation :class:`Environment`: event queues and virtual clock.

The seed kernel kept a single binary heap of ``(time, priority, eid,
event)`` tuples.  The optimized environment splits scheduling into two
structures:

* ``_queue`` — a binary heap of ``(time, key, event)`` for events in the
  *future* (and for the rare URGENT events), where ``key`` folds the
  priority and a monotonic sequence number into one integer
  (``priority << 52 | seq``);
* ``_imm`` — a FIFO deque of NORMAL-priority events scheduled for the
  *current* timestamp.  Triggering an event (``succeed`` / ``fail`` /
  ``trigger``) and zero-delay timeouts are the hottest operations in the
  resource, store and bandwidth layers, and a deque append/popleft is O(1)
  with no tuple comparisons.

The merge rule in :meth:`step`/:meth:`run` preserves the seed order
exactly.  Two invariants make it cheap:

1. every entry in ``_imm`` was scheduled *at* the current time, and the
   clock only advances when ``_imm`` is empty — so ``_imm`` always holds
   events for ``now`` in FIFO (= ascending key) order;
2. heap entries are never in the past, so the head of ``_imm`` loses only
   to a heap entry at exactly ``now`` with a smaller key (an URGENT event
   such as a process initializer or an interrupt, or a timeout whose float
   fire-time collapsed onto ``now``).

Hence one float comparison against the heap top decides almost every pop.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Generator, Iterable, Optional, Union

from repro.sim.errors import EmptySchedule, SimulationError, StopSimulation
from repro.sim.events import (
    NORMAL,
    PRIORITY_STRIDE,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)


class Environment:
    """Execution environment of a simulation.

    The environment owns the virtual clock (:attr:`now`, in **seconds**) and
    the event queues.  All simulated components — storage devices, POSIX
    syscalls, the tf.data pipeline, the profiler — share one environment so
    their timestamps are mutually consistent, exactly like wall-clock
    timestamps shared between Darshan and the TensorFlow runtime in the
    paper.
    """

    __slots__ = ("_now", "_queue", "_imm", "_eid", "_active_process")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._imm: deque = deque()
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between steps)."""
        return self._active_process

    # -- event creation ----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed after ``delay`` seconds."""
        self._eid = eid = self._eid + 1
        key = priority * PRIORITY_STRIDE + eid
        if delay == 0.0 and priority == NORMAL:
            event._key = key
            self._imm.append(event)
        else:
            heappush(self._queue, (self._now + delay, key, event))

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if the queue is empty)."""
        if self._imm:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def _pop(self) -> Event:
        """Remove and return the next event in seed-scheduler order."""
        imm = self._imm
        queue = self._queue
        if imm and (not queue or queue[0][0] > self._now
                    or queue[0][1] > imm[0]._key):
            return imm.popleft()
        if not queue:
            raise EmptySchedule("no scheduled events")
        self._now, _, event = heappop(queue)
        return event

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events are queued, and re-raises
        the exception of any failed event that nobody waited on (mirroring
        SimPy's behaviour so programming errors inside processes surface).
        """
        event = self._pop()

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event.defused:
            raise event._value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the event queue drains), a
        number (run until that simulated time), or an :class:`Event` (run
        until the event fires, returning its value).
        """
        target_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                target_event = until
                if target_event.callbacks is None:
                    # Already processed.
                    return target_event.value
                target_event.callbacks.append(self._stop_on)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before the current time ({self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop.callbacks.append(self._stop_on)
                self.schedule(stop, delay=at - self._now)

        # Inlined event loop: identical to repeated step() calls, but with
        # the queue bookkeeping in local variables.  This loop dispatches
        # every event of every simulation, so each saved attribute lookup
        # is worth its weight.
        queue = self._queue
        imm = self._imm
        pop_imm = imm.popleft
        now = self._now
        try:
            while True:
                if imm and (not queue or queue[0][0] > now
                            or queue[0][1] > imm[0]._key):
                    event = pop_imm()
                elif queue:
                    entry = heappop(queue)
                    self._now = now = entry[0]
                    event = entry[2]
                else:
                    break
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event.defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value

        if target_event is not None and not target_event.triggered:
            raise SimulationError(
                "the event queue drained before the target event was triggered"
            )
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        # Propagate failures of the target event to the caller of run().
        event.defused = True
        raise event._value
