"""The simulation :class:`Environment`: event queue and virtual clock."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, Optional, Union

from repro.sim.errors import EmptySchedule, SimulationError, StopSimulation
from repro.sim.events import (
    NORMAL,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)


class Environment:
    """Execution environment of a simulation.

    The environment owns the virtual clock (:attr:`now`, in **seconds**) and
    the event queue.  All simulated components — storage devices, POSIX
    syscalls, the tf.data pipeline, the profiler — share one environment so
    their timestamps are mutually consistent, exactly like wall-clock
    timestamps shared between Darshan and the TensorFlow runtime in the
    paper.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between steps)."""
        return self._active_process

    # -- event creation ----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed after ``delay`` seconds."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if the queue is empty)."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events are queued, and re-raises
        the exception of any failed event that nobody waited on (mirroring
        SimPy's behaviour so programming errors inside processes surface).
        """
        if not self._queue:
            raise EmptySchedule("no scheduled events")
        self._now, _, _, event = heapq.heappop(self._queue)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            exc = event._value
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the event queue drains), a
        number (run until that simulated time), or an :class:`Event` (run
        until the event fires, returning its value).
        """
        target_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                target_event = until
                if target_event.callbacks is None:
                    # Already processed.
                    return target_event.value
                target_event.callbacks.append(self._stop_on)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before the current time ({self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop.callbacks.append(self._stop_on)
                self.schedule(stop, delay=at - self._now)

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:  # pragma: no cover - defensive
            pass

        if target_event is not None and not target_event.triggered:
            raise SimulationError(
                "the event queue drained before the target event was triggered"
            )
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        # Propagate failures of the target event to the caller of run().
        event.defused = True
        raise event._value
