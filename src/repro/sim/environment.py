"""The simulation :class:`Environment`: event queues and virtual clock.

The seed kernel kept a single binary heap of ``(time, priority, eid,
event)`` tuples.  The optimized environment splits scheduling three ways:

* ``_imm`` — a FIFO deque of NORMAL-priority events scheduled for the
  *current* timestamp.  Triggering an event (``succeed`` / ``fail`` /
  ``trigger``) and zero-delay timeouts are the hottest operations in the
  resource, store and bandwidth layers, and a deque append/popleft is O(1)
  with no tuple comparisons.
* ``_wheel`` — a :class:`~repro.sim.timerwheel.TimerWheel` (calendar
  queue) for *near-future* NORMAL events: fire times are bucketed into
  power-of-two ticks (``2**-tick_bits`` seconds), an accepted event is an
  O(1) append into its tick's slot, and a slot is sorted once when the
  clock reaches it.  Strictly-future timeouts — the simulated I/O
  latencies, device service times and profiler sampling intervals that
  dominate campaign jobs — stop paying the heap's O(log n) sift.
* ``_queue`` — a binary heap of ``(time, key, event)`` for everything
  else: URGENT events, events beyond the wheel horizon, and events
  landing on the tick currently being drained.  ``key`` folds the
  priority and a monotonic sequence number into one integer
  (``priority << 52 | seq``).

The merge rule in :meth:`step`/:meth:`run` preserves the seed order
exactly.  Three invariants make it cheap:

1. every entry in ``_imm`` was scheduled *at* the current time, and the
   clock only advances when ``_imm`` is empty — so ``_imm`` always holds
   events for ``now`` in FIFO (= ascending key) order;
2. wheel and heap entries are never in the past (``schedule`` rejects
   negative and NaN delays), so the head of ``_imm`` loses only to a
   scheduled entry at exactly ``now`` with a smaller key (an URGENT event
   such as a process initializer or an interrupt, or a timeout whose float
   fire-time collapsed onto ``now``);
3. the wheel serves entries in ``(time, key)`` order and the heap top is
   compared against the wheel head on every pop, so the earlier of the
   two is always the global minimum of the strictly-future schedule.

Hence one float comparison against the wheel head (or heap top) decides
almost every pop, and ``(time, key)`` tie-breaks reproduce the seed
kernel's ``(time, priority, eid)`` order bit for bit — property/differential
tests pin this against the frozen :mod:`repro.sim.seedref`.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Generator, Iterable, Optional, Union

from repro.sim.errors import EmptySchedule, SimulationError, StopSimulation
from repro.sim.events import (
    NORMAL,
    PRIORITY_STRIDE,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)
from repro.sim.timerwheel import TimerWheel

#: Pre-bound allocator for the fused Timeout construction in
#: :meth:`Environment.timeout` (skips one class-attribute lookup per event).
_new_timeout = Timeout.__new__


class Environment:
    """Execution environment of a simulation.

    The environment owns the virtual clock (:attr:`now`, in **seconds**) and
    the event queues.  All simulated components — storage devices, POSIX
    syscalls, the tf.data pipeline, the profiler — share one environment so
    their timestamps are mutually consistent, exactly like wall-clock
    timestamps shared between Darshan and the TensorFlow runtime in the
    paper.

    ``tick_bits`` and ``wheel_slots`` size the timer wheel: the tick is
    ``2**-tick_bits`` seconds (default ~0.98 ms) and the wheel covers
    ``wheel_slots`` ticks (default 1024, i.e. a 1 s horizon); events beyond
    the horizon spill to the heap.  The knobs change only *where* an event
    waits, never the order it fires in — the differential tests run with
    deliberately tiny wheels to prove it.
    """

    __slots__ = ("_now", "_queue", "_imm", "_wheel", "_eid", "_active_process")

    def __init__(self, initial_time: float = 0.0, tick_bits: int = 10,
                 wheel_slots: int = 1024):
        self._now = float(initial_time)
        self._queue: list = []
        self._imm: deque = deque()
        self._wheel = TimerWheel(self._now, tick_bits=tick_bits,
                                 nslots=wheel_slots)
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between steps)."""
        return self._active_process

    # -- event creation ----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        This is the hottest constructor in the kernel — every simulated
        latency of every campaign job passes through here — so the body of
        :class:`Timeout.__init__ <repro.sim.events.Timeout>` is fused in
        via ``__new__`` (no type-call dispatch, no second frame).  The two
        bodies must stay behaviourally identical; the differential tests
        exercise both (``env.timeout`` here, ``Timeout(env, ...)``
        directly).
        """
        if not delay >= 0:
            raise ValueError(f"negative or NaN delay {delay!r}")
        event = _new_timeout(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event.defused = False
        event.delay = delay
        self._eid = eid = self._eid + 1
        if delay == 0.0:
            event._key = PRIORITY_STRIDE + eid
            self._imm.append(event)
        else:
            t = self._now + delay
            key = PRIORITY_STRIDE + eid
            wheel = self._wheel
            tn = int(t * wheel.tick_inv)
            d = tn - wheel.cur_tick
            if 0 < d < wheel.nslots:
                wheel.slots[tn & wheel.mask].append((t, key, event))
                wheel.count += 1
            elif not wheel.push(t, key, event, self._now):
                heappush(self._queue, (t, key, event))
        return event

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed after ``delay`` seconds.

        ``delay`` must be a non-negative number: a negative delay would
        plant an entry in the *past*, silently violating the merge
        invariant that ``_imm`` always beats the schedule at strictly
        earlier times (and NaN, which compares false against everything,
        would corrupt the heap ordering outright).
        """
        if not delay >= 0.0:
            raise ValueError(f"delay must be non-negative, not NaN (got {delay!r})")
        self._eid = eid = self._eid + 1
        key = priority * PRIORITY_STRIDE + eid
        if delay == 0.0 and priority == NORMAL:
            event._key = key
            self._imm.append(event)
        else:
            t = self._now + delay
            if not self._wheel.push(t, key, event, self._now):
                heappush(self._queue, (t, key, event))

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if the queue is empty)."""
        if self._imm:
            return self._now
        head = self._wheel.head()
        t = head[0] if head is not None else float("inf")
        if self._queue and self._queue[0][0] < t:
            t = self._queue[0][0]
        return t

    def _pop(self) -> Event:
        """Remove and return the next event in seed-scheduler order."""
        imm = self._imm
        queue = self._queue
        wheel = self._wheel
        entry = wheel.head()
        from_wheel = True
        if queue and (entry is None or queue[0] < entry):
            entry = queue[0]
            from_wheel = False
        if entry is None:
            if imm:
                return imm.popleft()
            raise EmptySchedule("no scheduled events")
        if imm and (entry[0] > self._now or entry[1] > imm[0]._key):
            return imm.popleft()
        if from_wheel:
            wheel.ci += 1
        else:
            heappop(queue)
        self._now = entry[0]
        return entry[2]

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events are queued, and re-raises
        the exception of any failed event that nobody waited on (mirroring
        SimPy's behaviour so programming errors inside processes surface).
        """
        event = self._pop()

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event.defused:
            raise event._value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the event queue drains), a
        number (run until that simulated time), or an :class:`Event` (run
        until the event fires, returning its value).  If the target event
        *failed* — whether it is processed already or fires during this
        run — its exception is raised, exactly like the :meth:`_stop_on`
        path.
        """
        target_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                target_event = until
                if target_event.callbacks is None:
                    # Already processed: mirror _stop_on for both outcomes.
                    if target_event._ok:
                        return target_event._value
                    target_event.defused = True
                    raise target_event._value
                target_event.callbacks.append(self._stop_on)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before the current time ({self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop.callbacks.append(self._stop_on)
                self.schedule(stop, delay=at - self._now)

        # Inlined event loop: identical to repeated step() calls, but with
        # the queue bookkeeping in local variables.  This loop dispatches
        # every event of every simulation, so each saved attribute lookup
        # is worth its weight.  ``cur``/``ci`` shadow the wheel's sorted
        # slot buffer; only step()/run() consume it, and push() never
        # touches it, so the locals stay valid across callbacks — they are
        # written back in the ``finally`` so step()/peek() stay correct
        # after an exception or a StopSimulation unwind.
        queue = self._queue
        imm = self._imm
        pop_imm = imm.popleft
        wheel = self._wheel
        cur = wheel.cur
        ci = wheel.ci
        ncur = len(cur)  # cur never grows while draining: push() refuses its tick
        now = self._now
        try:
            while True:
                # Head of the strictly-future schedule (wheel ∪ heap).
                if ci < ncur:
                    entry = cur[ci]
                    if queue and queue[0] < entry:
                        entry = None
                elif wheel.count:
                    entry = wheel._advance()
                    cur = wheel.cur
                    ci = 0
                    ncur = len(cur)
                    if queue and queue[0] < entry:
                        entry = None
                else:
                    if ncur:
                        # Exhausted buffer: normalize so push() can resync.
                        wheel.cur = cur = []
                        wheel.ci = ci = ncur = 0
                    entry = None

                if entry is not None:
                    if imm and (entry[0] > now or entry[1] > imm[0]._key):
                        event = pop_imm()
                    else:
                        ci += 1
                        self._now = now = entry[0]
                        event = entry[2]
                elif queue:
                    entry = queue[0]
                    if imm and (entry[0] > now or entry[1] > imm[0]._key):
                        event = pop_imm()
                    else:
                        heappop(queue)
                        self._now = now = entry[0]
                        event = entry[2]
                elif imm:
                    event = pop_imm()
                else:
                    break
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event.defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            wheel.cur = cur
            wheel.ci = ci

        if target_event is not None and not target_event.triggered:
            raise SimulationError(
                "the event queue drained before the target event was triggered"
            )
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        # Propagate failures of the target event to the caller of run().
        event.defused = True
        raise event._value
