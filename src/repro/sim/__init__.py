"""Discrete-event simulation kernel used by every substrate in ``repro``.

The kernel provides the virtual clock, process-style concurrency
(generators yielding events), counted resources, bounded stores, a fluid
fair-sharing bandwidth resource and simulated worker pools.  It is a small,
dependency-free re-implementation of the classic process-interaction model
(the subset of SimPy semantics the reproduction needs).
"""

from repro.sim.bandwidth import CPUPool, SharedBandwidth, TransferRecord
from repro.sim.environment import Environment
from repro.sim.errors import EmptySchedule, Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout
from repro.sim.resources import Container, Request, Resource, Store
from repro.sim.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.sim.threads import Job, WorkerPool
from repro.sim.timerwheel import TimerWheel

__all__ = [
    "AllOf",
    "AnyOf",
    "CPUPool",
    "Container",
    "DEFAULT_SEED",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "Job",
    "Process",
    "Request",
    "Resource",
    "SharedBandwidth",
    "SimulationError",
    "Store",
    "Timeout",
    "TimerWheel",
    "TransferRecord",
    "WorkerPool",
    "derive_seed",
    "make_rng",
]
