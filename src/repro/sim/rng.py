"""Deterministic random-number helpers.

Every stochastic component of the reproduction (dataset size distributions,
per-request latency jitter, shuffling) draws from a generator created here so
results are reproducible from a single seed, and sub-seeds for independent
components do not interact.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

#: Seed used throughout the repository when none is supplied.
DEFAULT_SEED = 20200812  # arXiv submission date of the paper (2020-08-12)


def derive_seed(base: int, *names: Union[str, int]) -> int:
    """Derive a stable sub-seed from ``base`` and a sequence of labels.

    The derivation hashes the labels so independent components (e.g. the
    ImageNet size distribution and the malware size distribution) receive
    uncorrelated streams even when built from the same base seed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "little")


def make_rng(seed: Optional[int] = None, *names: Union[str, int]) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for a named component."""
    base = DEFAULT_SEED if seed is None else int(seed)
    if names:
        base = derive_seed(base, *names)
    return np.random.default_rng(base)
