"""Frozen snapshot of the seed simulation kernel (reference implementation).

This module is a verbatim merge of the original ``repro.sim.events`` and
``repro.sim.environment`` as they shipped in the seed revision, kept as a
*behavioural reference*:

* the differential property tests in ``tests/sim/test_properties.py`` run
  randomized process graphs on both kernels and require identical traces;
* the micro-benchmark ``benchmarks/test_kernel_throughput.py`` measures the
  optimized kernel's event throughput against this baseline.

Do **not** optimize or otherwise modify this module — its whole value is
that it does not change when the production kernel does.  It shares the
exception types with the live kernel so the two can be compared with the
same assertions.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional, Union

from repro.sim.errors import (
    EmptySchedule,
    Interrupt,
    SimulationError,
    StopSimulation,
)

#: Sentinel used for the value of an event that has not been triggered yet.
PENDING = object()

#: Priority of internally generated "initialize process" events.
URGENT = 0
#: Priority of normal events.
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        if self.triggered:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time."""

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    def __init__(self, env, process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A simulation process wrapping a Python generator."""

    def __init__(self, env, generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError("Process() requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        event.callbacks = [self._resume]
        self.env.schedule(event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                self.env._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                self._target = None
                self.env._active_process = None
                self.fail(SimulationError(
                    f"process yielded a non-event: {next_event!r}"))
                return

            if next_event.callbacks is not None:
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            event = next_event

        self.env._active_process = None


class Condition(Event):
    """Base class for events composed of several sub-events."""

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._completed = 0
        self._fired: List[Event] = []
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _evaluate(self) -> bool:
        raise NotImplementedError

    def _collect_values(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event in self._fired and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        self._completed += 1
        if self._evaluate():
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Condition that fires once *all* sub-events have fired."""

    def _evaluate(self) -> bool:
        return self._completed >= len(self.events)


class AnyOf(Condition):
    """Condition that fires once *any* sub-event has fired."""

    def _evaluate(self) -> bool:
        return self._completed >= 1


class Environment:
    """The seed execution environment: binary heap only, 4-tuple entries."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        if not self._queue:
            raise EmptySchedule("no scheduled events")
        self._now, _, _, event = heapq.heappop(self._queue)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            exc = event._value
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        target_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                target_event = until
                if target_event.callbacks is None:
                    return target_event.value
                target_event.callbacks.append(self._stop_on)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before the current time ({self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop.callbacks.append(self._stop_on)
                self.schedule(stop, delay=at - self._now)

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:  # pragma: no cover - defensive
            pass

        if target_event is not None and not target_event.triggered:
            raise SimulationError(
                "the event queue drained before the target event was triggered"
            )
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event.defused = True
        raise event._value
