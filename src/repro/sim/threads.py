"""Simulated worker thread pools.

The tf.data runtime executes the user's map function on a private thread
pool whose size is ``num_parallel_calls``.  :class:`WorkerPool` reproduces
that structure inside the simulation: tasks are generator factories, each
worker runs one task at a time, and the pool can be drained and shut down.
CPU contention between workers is modelled separately by
:class:`repro.sim.bandwidth.CPUPool`, which the tasks themselves use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.resources import Store

#: Sentinel job used to ask a worker to exit.
_SHUTDOWN = object()


@dataclass
class Job:
    """A unit of work submitted to a :class:`WorkerPool`."""

    factory: Callable[[], Generator]
    done: Event
    tag: Any = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    worker: Optional[int] = None

    @property
    def queue_delay(self) -> float:
        """Time the job spent waiting for a free worker."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at


class WorkerPool:
    """A fixed-size pool of simulated worker threads.

    Parameters
    ----------
    env:
        Simulation environment.
    workers:
        Number of worker threads.
    name:
        Label used for debugging and trace annotation.
    """

    def __init__(self, env: Environment, workers: int, name: str = "pool"):
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.env = env
        self.workers = int(workers)
        self.name = name
        self._queue: Store = Store(env)
        self._worker_procs = [
            env.process(self._worker_loop(i)) for i in range(self.workers)
        ]
        self._closed = False
        self.completed_jobs: int = 0
        self.jobs: List[Job] = []

    # -- public API ------------------------------------------------------
    def submit(self, factory: Callable[[], Generator], tag: Any = None) -> Job:
        """Submit a task; returns the :class:`Job` whose ``done`` event fires
        with the task's return value."""
        if self._closed:
            raise RuntimeError(f"WorkerPool {self.name!r} is closed")
        job = Job(factory=factory, done=Event(self.env), tag=tag,
                  submitted_at=self.env.now)
        self.jobs.append(job)
        self._queue.put(job)
        return job

    def close(self) -> Event:
        """Stop accepting work and shut workers down after the queue drains.

        Returns an event that fires when every worker has exited.
        """
        if not self._closed:
            self._closed = True
            for _ in range(self.workers):
                self._queue.put(_SHUTDOWN)
        return self.env.all_of(self._worker_procs)

    @property
    def pending(self) -> int:
        """Jobs waiting in the queue (not yet picked up by a worker)."""
        return sum(1 for item in self._queue.items if item is not _SHUTDOWN)

    def interrupt_workers(self, cause: object = "pool-cancelled") -> None:
        """Interrupt every live worker (used when a pipeline is cancelled)."""
        self._closed = True
        for proc in self._worker_procs:
            if proc.is_alive:
                proc.interrupt(cause)

    # -- worker loop -------------------------------------------------------
    def _worker_loop(self, index: int) -> Generator:
        from repro.sim.errors import Interrupt

        while True:
            try:
                job = yield self._queue.get()
            except Interrupt:
                return
            if job is _SHUTDOWN:
                return
            job.worker = index
            job.started_at = self.env.now
            try:
                result = yield self.env.process(job.factory())
            except Interrupt:
                # The pool is being torn down; the in-flight task keeps
                # running on its own but this worker exits.
                return
            except BaseException as exc:  # propagate failures to the waiter
                job.finished_at = self.env.now
                job.done.fail(exc)
                continue
            job.finished_at = self.env.now
            self.completed_jobs += 1
            job.done.succeed(result)
