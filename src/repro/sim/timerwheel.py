"""Calendar-queue timer wheel for strictly-future NORMAL events.

The optimized :class:`~repro.sim.environment.Environment` splits its
schedule three ways: a FIFO deque for events triggered *at* the current
time, this wheel for near-future events, and a binary heap for everything
else (URGENT events, far-future timeouts beyond the wheel horizon, and
events landing on the tick currently being drained).  The wheel turns the
hot ``Timeout`` path — the paper's simulated I/O latencies, device service
times and profiler sampling intervals — from an O(log n) heap sift into an
O(1) slot append plus an amortized near-linear sort at drain time.

Design
------

Simulated time is bucketed into **ticks** of ``2**-tick_bits`` seconds.  A
power-of-two tick makes ``t * tick_inv`` an exact float scaling, so two
times bucket identically regardless of magnitude.  The wheel keeps
``nslots`` (power of two) slot lists covering the tick range
``(cur_tick, cur_tick + nslots)``; an event whose fire time falls in that
window is appended to ``slots[tick & mask]`` in O(1).  Everything outside
the window — including the *current* tick, so a slot is never appended to
after it started draining — is refused and the caller falls back to the
environment's heap, where correctness never depends on the wheel at all.

Draining is lazy: :meth:`head` walks the cursor to the next non-empty
slot, sorts it **once** by ``(time, key)`` into the ``cur`` buffer, and
serves entries by index.  Keys are unique (they fold the priority and a
monotonic sequence number), so the sort never compares event objects and
FIFO-within-a-tick is exactly the seed scheduler's ``(time, priority,
eid)`` order.  Timer-driven workloads append each slot in nearly sorted
order, which Timsort drains in ~n comparisons.

The environment merges the wheel with its heap by comparing ``head()``
against the heap top on every pop — the wheel never has to *contain* all
future events to be correct, it only has to order the ones it accepted.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: A scheduled entry: ``(fire_time, key, event)``.  ``key`` folds priority
#: and sequence number (see :mod:`repro.sim.events`) and is unique per
#: environment, so tuple comparisons never reach the event object.
Entry = Tuple[float, int, object]


class TimerWheel:
    """One-level calendar queue with a power-of-two tick.

    The wheel is deliberately *incomplete*: :meth:`push` refuses entries
    outside its horizon (returning ``False``) instead of cascading
    hierarchical levels, because the caller already owns a heap that
    handles arbitrary times.  That keeps every accepted operation O(1)
    and the merge rule a single tuple comparison.
    """

    __slots__ = ("tick_inv", "nslots", "mask", "slots", "cur", "ci",
                 "cur_tick", "count")

    def __init__(self, start_time: float = 0.0, tick_bits: int = 10,
                 nslots: int = 1024):
        if nslots < 2 or nslots & (nslots - 1):
            raise ValueError(f"nslots must be a power of two >= 2, got {nslots}")
        #: Ticks per second; a power of two so bucketing is exact.
        self.tick_inv = float(2 ** tick_bits)
        self.nslots = nslots
        self.mask = nslots - 1
        self.slots: List[List[Entry]] = [[] for _ in range(nslots)]
        #: Sorted buffer of the slot currently being drained.
        self.cur: List[Entry] = []
        #: Consumption index into :attr:`cur`.
        self.ci = 0
        #: Tick number of the slot last sorted into :attr:`cur`.
        self.cur_tick = int(start_time * self.tick_inv)
        #: Entries sitting in undrained slots (excludes :attr:`cur`).
        self.count = 0

    def push(self, t: float, key: int, event: object, now: float) -> bool:
        """Accept ``(t, key, event)`` into a slot, or return ``False``.

        ``False`` means the caller must heap-push instead: the entry is on
        the currently-draining tick (appending would race the sorted
        buffer), beyond the horizon, or in the past relative to the
        cursor.  When the wheel is completely idle the cursor snaps
        forward to ``now`` first, so a simulation that ran heap-only for a
        long virtual span regains the wheel for its next burst of timers.
        """
        tn = int(t * self.tick_inv)
        d = tn - self.cur_tick
        if d >= self.nslots and not self.count and self.ci >= len(self.cur):
            self.cur_tick = ct = int(now * self.tick_inv)
            d = tn - ct
        if 0 < d < self.nslots:
            self.slots[tn & self.mask].append((t, key, event))
            self.count += 1
            return True
        return False

    def head(self) -> Optional[Entry]:
        """The earliest pending entry, or ``None`` if the wheel is empty.

        Advances the cursor (sorting at most one slot) as a side effect;
        that is semantically invisible because new entries for ticks at or
        behind the cursor are refused by :meth:`push` and go to the heap,
        where the environment's merge comparison orders them anyway.
        """
        if self.ci < len(self.cur):
            return self.cur[self.ci]
        if self.count:
            return self._advance()
        if self.cur:
            # Normalize the exhausted buffer so the idle-resync test in
            # push() (``ci >= len(cur)`` with ci reset to 0) stays true.
            self.cur = []
            self.ci = 0
        return None

    def pop(self) -> Entry:
        """Consume and return the entry :meth:`head` just reported."""
        entry = self.cur[self.ci]
        self.ci += 1
        return entry

    def _advance(self) -> Entry:
        """Walk to the next non-empty slot, sort it, return its head.

        Only called with ``count > 0``; every counted entry lives within
        ``nslots`` ticks of the cursor, so the walk terminates.
        """
        slots = self.slots
        mask = self.mask
        tick = self.cur_tick
        while True:
            tick += 1
            slot = slots[tick & mask]
            if slot:
                break
        self.cur_tick = tick
        slots[tick & mask] = []
        slot.sort()
        self.cur = slot
        self.ci = 0
        self.count -= len(slot)
        return slot[0]

    def __len__(self) -> int:
        return self.count + len(self.cur) - self.ci

    def __bool__(self) -> bool:
        return self.count > 0 or self.ci < len(self.cur)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TimerWheel tick=1/{self.tick_inv:g}s slots={self.nslots} "
                f"pending={len(self)} cur_tick={self.cur_tick}>")
