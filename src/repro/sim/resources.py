"""Countable resources with waiting queues.

Two classic resource types are provided:

:class:`Resource`
    A resource with a fixed number of slots (e.g. a metadata server that can
    serve a bounded number of RPCs concurrently, a GPU, a CPU core pool used
    for exclusive sections).

:class:`Container`
    A homogeneous bulk resource with a level between 0 and a capacity (used
    for modelling bounded byte budgets such as the page-cache size).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.environment import Environment
from repro.sim.errors import SimulationError
from repro.sim.events import Event


class Request(Event):
    """Request for one slot of a :class:`Resource`.

    The event succeeds once the slot has been granted.  The request object
    itself is the token passed back to :meth:`Resource.release`.
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    # Support "with"-less usage from generators; explicit release required.


class Resource:
    """A resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = int(capacity)
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Request a slot; yield the returned event to wait for it."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Release a previously granted slot."""
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that does not hold the resource")
        self._grant_next()

    def cancel(self, request: Request) -> None:
        """Withdraw a queued (not yet granted) request."""
        try:
            self.queue.remove(request)
        except ValueError:
            raise SimulationError("request is not queued")

    # -- internals -----------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed(request)
        else:
            self.queue.append(request)

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.popleft()
            self.users.append(request)
            request.succeed(request)


class Container:
    """A bulk resource holding an amount between ``0`` and ``capacity``."""

    def __init__(self, env: Environment, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._get_waiters: Deque[tuple] = deque()
        self._put_waiters: Deque[tuple] = deque()

    @property
    def level(self) -> float:
        """Current amount stored in the container."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; the event fires when it fits under the capacity."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._put_waiters.append((event, amount))
        self._trigger()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; the event fires when that much is available."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._get_waiters.append((event, amount))
        self._trigger()
        return event

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters:
                event, amount = self._put_waiters[0]
                if self._level + amount <= self.capacity:
                    self._put_waiters.popleft()
                    self._level += amount
                    event.succeed(amount)
                    progress = True
            if self._get_waiters:
                event, amount = self._get_waiters[0]
                if self._level >= amount:
                    self._get_waiters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progress = True


class Store:
    """A FIFO store of Python objects with a bounded capacity.

    Used to model the bounded buffers of the tf.data pipeline: the prefetch
    buffer and the inter-stage handoff queues.  ``put`` blocks (its event
    stays pending) while the store is full; ``get`` blocks while it is empty.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: Deque[tuple] = deque()
        self._get_waiters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires once it was stored."""
        event = Event(self.env)
        self._put_waiters.append((event, item))
        self._trigger()
        return event

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item."""
        event = Event(self.env)
        self._get_waiters.append(event)
        self._trigger()
        return event

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters and len(self.items) < self.capacity:
                event, item = self._put_waiters.popleft()
                self.items.append(item)
                event.succeed(item)
                progress = True
            if self._get_waiters and self.items:
                event = self._get_waiters.popleft()
                item = self.items.pop(0)
                event.succeed(item)
                progress = True
