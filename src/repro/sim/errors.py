"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by :mod:`repro.sim`."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a target event.

    The exception carries the value of the event that terminated the run so
    that ``Environment.run(until=event)`` can return it.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class EmptySchedule(SimulationError):
    """Raised when :meth:`Environment.step` is called with no queued events."""


class Interrupt(Exception):
    """Delivered into a process generator when another process interrupts it.

    The ``cause`` attribute carries an arbitrary object describing why the
    interrupt happened (for example the profiler asking an I/O worker to
    wind down).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause
