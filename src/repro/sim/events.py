"""Core event types of the discrete-event simulation kernel.

The kernel follows the classic process-interaction style popularised by
SimPy: simulation *processes* are Python generators that ``yield`` events;
the :class:`~repro.sim.environment.Environment` resumes a process when the
event it is waiting on fires.  Only the features needed by the tf-Darshan
reproduction are implemented, but they are implemented completely: event
success/failure, timeouts, process completion values, interrupts, and
``AllOf`` / ``AnyOf`` condition events.

This is the *optimized* kernel (the seed implementation is preserved in
:mod:`repro.sim.seedref`).  Every simulated byte of every campaign job
flows through these classes, so they are written for the interpreter
rather than for elegance:

* every event class declares ``__slots__`` — no per-instance ``__dict__``;
* constructors of hot event types (:class:`Timeout`, the internal process
  initializer) assign all slots inline instead of chaining ``__init__``
  calls, and schedule themselves directly onto the environment's queues;
* events that fire *now* at NORMAL priority are appended to a FIFO deque
  (O(1)) and strictly-future timeouts land in a calendar-queue timer wheel
  (:mod:`repro.sim.timerwheel`, O(1) slot append) instead of the binary
  heap (O(log n)) — see :class:`~repro.sim.environment.Environment` for
  the three-way merge rule that keeps the combined order identical to the
  seed scheduler;
* :class:`Process` caches the generator's bound ``send``/``throw`` and
  fast-paths the overwhelmingly common case of a process yielding one
  pending event.

Scheduling order is encoded in a single integer sort key,
``priority << 52 | sequence``: the sequence number increases monotonically
per environment, so among events scheduled for the same simulated time
URGENT events fire before NORMAL events and ties within a priority are
FIFO — exactly the ``(time, priority, eid)`` order of the seed kernel.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.errors import Interrupt, SimulationError

#: Sentinel used for the value of an event that has not been triggered yet.
PENDING = object()

#: Priority of internally generated "initialize process" events.
URGENT = 0
#: Priority of normal events.
NORMAL = 1

#: Offset folding the priority into the integer sort key.  Sequence numbers
#: stay far below 2**52 (at ~10^6 events/s that is >100 years of simulated
#: churn), so ``URGENT`` keys always sort before ``NORMAL`` keys.
PRIORITY_STRIDE = 1 << 52


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *pending*; it becomes *triggered* when it has been
    scheduled with a value (or an exception), and *processed* once its
    callbacks have run.  Processes wait for events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "_key")

    def __init__(self, env: "Environment"):  # noqa: F821 - forward ref
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set by the environment when a failed event's exception was
        #: delivered to at least one waiter (so ``run`` does not re-raise).
        self.defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the callbacks of the event have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        For failed events this is the exception instance.
        """
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        self._key = PRIORITY_STRIDE + eid
        env._imm.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid = eid = env._eid + 1
        self._key = PRIORITY_STRIDE + eid
        env._imm.append(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (used by conditions)."""
        if self._value is not PENDING:
            return
        self._ok = event._ok
        self._value = event._value
        env = self.env
        env._eid = eid = env._eid + 1
        self._key = PRIORITY_STRIDE + eid
        env._imm.append(self)

    # -- chaining ------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        if not delay >= 0:
            # One comparison rejects both negative delays and NaN (which
            # compares false against everything and would otherwise corrupt
            # the heap/wheel ordering instead of failing loudly).
            raise ValueError(f"negative or NaN delay {delay!r}")
        # Inlined Event.__init__ + Environment.schedule: a Timeout is
        # created for every simulated latency in every job of a campaign.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self.delay = delay
        env._eid = eid = env._eid + 1
        if delay == 0.0:
            self._key = PRIORITY_STRIDE + eid
            env._imm.append(self)
        else:
            t = env._now + delay
            key = PRIORITY_STRIDE + eid
            # Inlined TimerWheel.push fast path (one method call per
            # simulated latency is measurable): in-horizon ticks append
            # straight into their slot; everything else goes through the
            # canonical push() for the idle-resync, then the heap.
            wheel = env._wheel
            tn = int(t * wheel.tick_inv)
            d = tn - wheel.cur_tick
            if 0 < d < wheel.nslots:
                wheel.slots[tn & wheel.mask].append((t, key, self))
                wheel.count += 1
            elif not wheel.push(t, key, self, env._now):
                heappush(env._queue, (t, key, self))


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env, process: "Process"):
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self.defused = False
        # URGENT events always go through the heap: the immediate deque is
        # reserved for NORMAL-priority events so it stays FIFO-sorted.
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now, eid, self))


class Process(Event):
    """A simulation process wrapping a Python generator.

    The process itself is an event that fires when the generator terminates;
    its value is the generator's return value.  Processes can be interrupted
    with :meth:`interrupt`, which raises :class:`~repro.sim.errors.Interrupt`
    inside the generator.
    """

    __slots__ = ("_generator", "_target", "_send", "_throw", "_resume_cb")

    def __init__(self, env, generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError("Process() requires a generator")
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self.defused = False
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        #: The bound ``_resume`` callback, created once: appending
        #: ``self._resume`` would allocate a fresh bound method per yield,
        #: which is measurable on the million-event hot path.
        self._resume_cb = self._resume
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (``None`` if done)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the wrapped generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process by raising :class:`Interrupt` inside it."""
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        # Jump the queue: deliver before any other pending callback resumes
        # the process, and detach from the original target.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        event.callbacks = [self._resume_cb]
        self.env.schedule(event, priority=URGENT)

    # -- generator stepping ---------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The exception was delivered; mark it as handled.
                    event.defused = True
                    next_event = self._throw(event._value)
            except StopIteration as stop:
                self._target = None
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self.fail(exc)
                return

            # The fast path assumes an Event was yielded and reads its
            # callback list directly; anything else (int, None, a plain
            # generator...) lacks the slot and fails the process exactly
            # like the seed kernel's isinstance() check did.
            try:
                cbs = next_event.callbacks
            except AttributeError:
                self._target = None
                env._active_process = None
                self.fail(SimulationError(
                    f"process yielded a non-event: {next_event!r}"))
                return

            if cbs is not None:
                # Event not yet processed: wait for it.
                cbs.append(self._resume_cb)
                self._target = next_event
                break
            # Event already processed: feed its value back in immediately.
            event = next_event

        env._active_process = None


class Condition(Event):
    """Base class for events composed of several sub-events."""

    __slots__ = ("events", "_completed", "_fired")

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._completed = 0
        #: Sub-events that fired, as a set: ``_collect_values`` probes
        #: membership once per sub-event, which would be quadratic for
        #: wide ``AllOf`` grids with a list (events hash by identity).
        self._fired = set()
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _evaluate(self) -> bool:
        raise NotImplementedError

    def _collect_values(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event in self._fired and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            # A sub-event failing *after* the condition fired (e.g. the
            # second failure reaching an AnyOf) was still consumed by this
            # condition: defuse it so Environment.run does not re-raise an
            # exception the condition's waiter already handled.
            if event._ok is False:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._fired.add(event)
        self._completed += 1
        if self._evaluate():
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Condition that fires once *all* sub-events have fired."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._completed >= len(self.events)


class AnyOf(Condition):
    """Condition that fires once *any* sub-event has fired."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._completed >= 1
