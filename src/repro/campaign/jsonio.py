"""Shared crash-consistent JSON helpers for the campaign layer.

Every durable artifact of the campaign stack — cache entries, work-queue
tickets/leases/results, the cost model — is a small JSON document written
with the same two rules: writes are atomic (temp file in the same
directory + ``os.replace``, so a reader never observes a torn write), and
reads treat unreadable or garbage content as absent rather than fatal (a
crash can leave stray bytes; it must never wedge the system).

Two layers live here:

* file helpers (:func:`atomic_write_json` / :func:`read_json_or_none` and
  their ``bytes`` twins) used by the filesystem transport and path-mode
  cost models;
* byte-level codecs (:func:`json_dumps_bytes` / :func:`json_loads_or_none`)
  shared by every :class:`~repro.campaign.dist.transport.QueueTransport`
  implementation, the HTTP broker, the result cache and the cost model,
  so all transports agree on one canonical encoding (sorted keys, UTF-8)
  — which keeps content-derived ETags identical no matter which transport
  produced a record, and lets two workers racing the same cache key
  produce byte-identical payloads their conditional create converges on.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from threading import get_ident
from typing import Any, Dict, Optional


def json_dumps_bytes(payload: Dict[str, Any]) -> bytes:
    """Encode a JSON object canonically (sorted keys, UTF-8 bytes).

    The canonical form matters: queue transports derive ETags from the
    encoded bytes, so two processes writing the same logical record must
    produce the same bytes.

    >>> json_dumps_bytes({"b": 1, "a": 2})
    b'{"a": 2, "b": 1}'
    """
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def json_loads_or_none(data: Optional[bytes]) -> Optional[Dict[str, Any]]:
    """Decode JSON object bytes; ``None``/garbage/non-dict content is ``None``.

    The tolerant twin of :func:`json_dumps_bytes`: a truncated or corrupt
    record reads as absent, mirroring :func:`read_json_or_none`.

    >>> json_loads_or_none(b'{"a": 2}')
    {'a': 2}
    >>> json_loads_or_none(b'{"a": 2') is None
    True
    >>> json_loads_or_none(None) is None
    True
    """
    if data is None:
        return None
    try:
        payload = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def atomic_write_bytes(path: Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns ``path``.

    The temp name carries the pid *and* thread id so concurrent writers —
    processes on a shared filesystem, threads of one fleet — never
    collide on the staging file.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}.{get_ident()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)
    return path


def read_bytes_or_none(path: Path) -> Optional[bytes]:
    """Read a file's bytes; a missing or unreadable file is ``None``."""
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except OSError:
        return None


def atomic_write_json(path: Path, payload: Dict[str, Any]) -> Path:
    """Write ``payload`` to ``path`` atomically; returns ``path``.

    Composes :func:`json_dumps_bytes` with :func:`atomic_write_bytes`, so
    file-backed records share the transports' canonical encoding.
    """
    return atomic_write_bytes(Path(path), json_dumps_bytes(payload))


def read_json_or_none(path: Path) -> Optional[Dict[str, Any]]:
    """Parse a JSON object file; missing/garbage/non-dict content is ``None``."""
    return json_loads_or_none(read_bytes_or_none(Path(path)))
