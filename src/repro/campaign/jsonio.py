"""Shared crash-consistent JSON file helpers for the campaign layer.

Every durable artifact of the campaign stack — cache entries, work-queue
tickets/leases/results, the cost model — is a small JSON file written with
the same two rules: writes are atomic (temp file in the same directory +
``os.replace``, so a reader never observes a torn write), and reads treat
unreadable or garbage content as absent rather than fatal (a crash can
leave stray bytes; it must never wedge the system).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional


def atomic_write_json(path: Path, payload: Dict[str, Any]) -> Path:
    """Write ``payload`` to ``path`` atomically; returns ``path``.

    The temp name carries the pid so concurrent writers on a shared
    filesystem never collide on the staging file.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, path)
    return path


def read_json_or_none(path: Path) -> Optional[Dict[str, Any]]:
    """Parse a JSON object file; missing/garbage/non-dict content is ``None``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None
