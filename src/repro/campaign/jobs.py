"""Job execution: the case registry and the worker-side entry point.

A *case* is a named function ``(params, seed) -> metrics`` where ``params``
is a flat dict of JSON scalars and ``metrics`` is a flat-ish JSON-able dict
of measurements.  The heavyweight cases ("imagenet", "malware", "stream",
"overhead") are registered by :mod:`repro.workloads.runner`, which adapts
the paper's experiment runners; the "synthetic" case defined here runs a
small pure-kernel simulation and exists so campaign mechanics can be
exercised (and tested) in milliseconds.

:func:`execute_job` is the function executors ship to worker processes; it
is importable at module scope (picklable by reference) and returns a
:class:`JobResult` that serializes losslessly through the disk cache.
"""

from __future__ import annotations

import importlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.campaign.spec import JobSpec

CaseRunner = Callable[[Dict[str, Any], int], Dict[str, Any]]

_CASES: Dict[str, CaseRunner] = {}

#: Modules imported on demand when a case name is not yet registered.
#: Keeping the workload adapters out of this module avoids importing the
#: full tfmini/darshan stack for campaigns over lightweight cases.
_CASE_PROVIDERS = ("repro.workloads.runner",)

#: Environment variable naming extra provider modules (colon-separated).
#: Distributed worker processes use it to load custom cases that were
#: registered by the orchestrator's own imports rather than by a module
#: in the default provider list.
CASE_PROVIDERS_ENV = "REPRO_CASE_PROVIDERS"


def _providers() -> Tuple[str, ...]:
    extra = os.environ.get(CASE_PROVIDERS_ENV, "")
    return _CASE_PROVIDERS + tuple(
        module for module in extra.split(":") if module)


class UnknownCaseError(KeyError):
    """Raised when a job references a case nobody registered."""


def register_case(name: str) -> Callable[[CaseRunner], CaseRunner]:
    """Decorator: register ``fn`` as the runner for case ``name``."""

    def decorator(fn: CaseRunner) -> CaseRunner:
        _CASES[name] = fn
        return fn

    return decorator


def get_case(name: str) -> CaseRunner:
    """Look up a case runner, importing the workload adapters on demand."""
    if name not in _CASES:
        for module in _providers():
            importlib.import_module(module)
    try:
        return _CASES[name]
    except KeyError:
        raise UnknownCaseError(
            f"unknown case {name!r}; registered: {sorted(_CASES)}") from None


def available_cases() -> List[str]:
    """Every registered case name, after importing all provider modules
    (the defaults plus ``REPRO_CASE_PROVIDERS`` entries)."""
    for module in _providers():
        importlib.import_module(module)
    return sorted(_CASES)


@dataclass
class JobResult:
    """Outcome of one executed (or cache-served) job."""

    job_id: str
    case: str
    params: Mapping[str, Any]
    seed: int
    metrics: Dict[str, Any] = field(default_factory=dict)
    wall_time: float = 0.0
    cached: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the job ran (or was served) without a captured error."""
        return self.error is None

    def to_record(self) -> Dict[str, Any]:
        """JSON-able dict that :meth:`from_record` round-trips losslessly
        (``cached`` is transport state, not content, and is excluded)."""
        return {
            "job_id": self.job_id,
            "case": self.case,
            "params": dict(self.params),
            "seed": self.seed,
            "metrics": self.metrics,
            "wall_time": self.wall_time,
            "error": self.error,
        }

    @staticmethod
    def from_record(record: Mapping[str, Any], cached: bool = False) -> "JobResult":
        """Rebuild a result from :meth:`to_record` output; raises
        ``KeyError`` on a foreign schema (see
        :func:`result_from_record_or_none` for the tolerant path)."""
        return JobResult(job_id=record["job_id"], case=record["case"],
                         params=dict(record["params"]), seed=record["seed"],
                         metrics=dict(record["metrics"]),
                         wall_time=record.get("wall_time", 0.0),
                         cached=cached, error=record.get("error"))


def result_from_record_or_none(record: Optional[Mapping[str, Any]],
                               cached: bool = False) -> Optional[JobResult]:
    """Decode a persisted ``{"result": ...}`` record, or ``None``.

    The single tolerant-decode path shared by every consumer of stored
    results (cache probes in the orchestrator and workers, the work
    queue's results directory): a record from a stale or foreign schema
    is "absent" — recompute — never a crash.
    """
    if not record:
        return None
    payload = record.get("result")
    if not payload:
        return None
    try:
        return JobResult.from_record(payload, cached=cached)
    except (KeyError, TypeError, ValueError):
        return None


def execute_job(job: JobSpec) -> JobResult:
    """Run one job to completion.  Importable at module scope (picklable).

    Workload exceptions are captured into ``JobResult.error`` instead of
    killing the executor: one diverging configuration must not take down a
    whole campaign (failed jobs are reported, never cached).
    """
    runner = get_case(job.case)
    start = time.perf_counter()
    try:
        metrics = runner(dict(job.params), job.seed)
    except Exception as exc:  # noqa: BLE001 - isolate per-job failures
        return JobResult(job_id=job.job_id, case=job.case, params=job.params,
                         seed=job.seed, wall_time=time.perf_counter() - start,
                         error=f"{type(exc).__name__}: {exc}")
    return JobResult(job_id=job.job_id, case=job.case, params=job.params,
                     seed=job.seed, metrics=dict(metrics),
                     wall_time=time.perf_counter() - start)


# ---------------------------------------------------------------------------
# Built-in lightweight case
# ---------------------------------------------------------------------------

@register_case("synthetic")
def _synthetic_case(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A milliseconds-scale pure-kernel workload for tests and demos.

    Simulates ``tasks`` jobs of deterministic pseudo-random durations on a
    ``workers``-wide pool feeding a shared link of rate ``rate`` — enough
    structure (timeouts, handoffs, fair sharing) to exercise the scheduler
    while staying independent of the heavyweight workload stack.
    """
    from repro.sim import Environment, SharedBandwidth, WorkerPool
    from repro.sim.rng import make_rng

    workers = int(params.get("workers", 2))
    tasks = int(params.get("tasks", 10))
    rate = float(params.get("rate", 100.0))
    env = Environment()
    pool = WorkerPool(env, workers=workers)
    link = SharedBandwidth(env, rate=rate)
    rng = make_rng(seed, "synthetic")
    sizes = rng.uniform(1.0, 50.0, size=tasks)

    def make_task(amount):
        def task():
            yield env.timeout(float(amount) / 1000.0)
            yield link.transfer(float(amount))
            return float(amount)
        return task

    jobs = [pool.submit(make_task(amount)) for amount in sizes]
    env.run(until=env.all_of([j.done for j in jobs]))
    pool.close()
    env.run()
    return {
        "makespan": env.now,
        "transferred": link.total_transferred,
        "completed": pool.completed_jobs,
        "mean_task": float(sizes.mean()),
    }
