"""Pluggable queue transports: one storage contract, many backends.

The distributed work queue (:class:`~repro.campaign.dist.queue.WorkQueue`)
is a state machine over *opaque keys* holding small JSON documents, and
the result cache (:class:`~repro.campaign.cache.TransportResultCache`) and
persisted cost model ride the same seam — one storage contract carries a
whole campaign's durable state.  This module defines that contract —
point operations modelled on an S3-style object store, plus batch and
pagination primitives for throughput — and three implementations:

* :class:`FsTransport` — keys are files under a root directory (the
  original shared-filesystem queue; any number of processes/hosts sharing
  the directory can participate);
* :class:`MemoryTransport` — keys in a lock-protected dict (fast tests and
  single-process thread fleets; truly atomic CAS);
* :class:`HttpTransport` — keys served by the
  :mod:`repro.campaign.dist.server` broker over a minimal S3-style REST
  dialect (``GET``/``PUT``/``DELETE`` plus ``?prefix=`` listing), with
  conditional ``PUT``/``DELETE`` via ``ETag``/``If-Match`` headers, over
  a pooled keep-alive connection per thread.

The contract
------------

``get(key)``
    Return ``(data, etag)`` or ``None`` if the key is absent.
``put(key, data)``
    Unconditional atomic write; returns the new ETag.
``cas(key, data, if_match)``
    Conditional write.  ``if_match=None`` means *create: the key must not
    exist* (HTTP ``If-None-Match: *``) — this is the primitive every
    mutual-exclusion decision in the queue (claiming a job, creating the
    queue config) rests on, and all three transports implement it
    atomically.  A string ``if_match`` means *the current ETag must equal
    it* (HTTP ``If-Match``).  Returns the new ETag, or ``None`` on
    conflict.
``delete(key, if_match=None)``
    Remove a key, optionally only if its ETag still matches.  Returns
    ``True`` if the key was removed.
``list(prefix)``
    Sorted keys beginning with ``prefix``.

Batch and pagination primitives (defaulted on the base class as loops
over the point operations, so third-party transports that implement only
those keep working; overridden where a backend has something faster —
``MemoryTransport`` runs each batch under one lock acquisition,
``HttpTransport`` ships each batch as one ``/batch`` request and each
listing as bounded pages, ``FsTransport`` batches directory creation in
``put_many`` while its point-op loops are already native for a local
filesystem):

``get_many(keys)``
    One ``get`` outcome per key, in order.  Over HTTP this is a single
    ``/batch`` request instead of a round trip per key.
``put_many(items)``
    Each item is ``(key, data, condition)`` where ``condition`` carries
    its own write condition: ``None`` → conditional create (the key must
    not exist), an ETag string → conditional update, :data:`ANY` →
    unconditional write.  Returns one ETag-or-``None`` (conflict) per
    item, in order; items apply *in order*, so a caller's commit-point
    sequencing survives batching.
``delete_many(items)``
    Each item is ``(key, if_match_or_None)``; returns one bool per item.
``mutate_many(ops)``
    A *mixed* ordered batch of writes and deletes: each op is
    ``("put", key, data, condition)`` (condition as in ``put_many``) or
    ``("delete", key, if_match_or_None)``.  Returns one outcome per op —
    ETag-or-``None`` for puts, bool for deletes.  This is what lets the
    queue settle a finished job (write result + done marker, delete
    pending ticket + claim) in *one* broker round trip instead of a
    ``put_many`` followed by a ``delete_many``.
``list_page(prefix, max_keys, start_after="")``
    One page of the sorted listing: ``(keys, next_token)`` with at most
    ``max_keys`` keys strictly greater than ``start_after``.
    ``next_token`` is ``None`` on the final page, else the value to pass
    as the next ``start_after``.  Continuation is *keyset*-based (the
    token is the last key returned), so keys deleted or inserted between
    pages never skip or repeat survivors.

ETags are content-derived (:func:`etag_of`, a SHA-256 of the bytes): two
writes of identical bytes share an ETag on every transport, and a broker
restart cannot invalidate leases held by workers — the satellite property
the crash tests pin down.

Atomicity fine print: ``FsTransport`` implements conditional *create*
atomically (hard-link or ``O_EXCL`` tricks), but ``If-Match`` updates and
deletes are read-check-write — racy by nature of POSIX.  The queue is
designed so that every ``If-Match`` race degrades to a re-executed job
(results are content-derived, so re-execution is harmless), never to a
lost one.  ``MemoryTransport`` and the HTTP broker serialize mutations
under a lock (striped by key prefix on the broker), so for them every
conditional operation is exact.  Batches are *not* transactions: each
item succeeds or conflicts individually.
"""

from __future__ import annotations

import base64
import binascii
import http.client
import hashlib
import os
import random
import socket
import threading
import time
import urllib.parse
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.jsonio import (
    atomic_write_bytes,
    json_dumps_bytes,
    json_loads_or_none,
    read_bytes_or_none,
)
from repro.campaign.obs import MetricsRegistry, get_registry

#: ``put_many`` condition meaning *unconditional write* (no If-Match /
#: If-None-Match).  A plain ``"*"`` so it survives JSON serialization in
#: the ``/batch`` wire format; it can never collide with a real ETag
#: (ETags are 32 lowercase hex characters).
ANY = "*"

#: Operations shipped per ``/batch`` request.  Bounds request bodies (a
#: 10k-job enqueue is a handful of requests, not one giant one) while
#: keeping the round-trip count two orders below per-key operations.
_BATCH_CHUNK = 256

#: Page size :meth:`HttpTransport.list` uses when reassembling a full
#: listing from ``/list`` pages.
_LIST_PAGE = 1000


class TransportError(Exception):
    """A transport could not reach its backing store.

    Raised after retries are exhausted (connection refused, broker down,
    unwritable directory).  ``address`` names the failing store when the
    raising transport knows it, so a worker holding two transports (queue
    and cache) can blame the right one exactly.  Workers surface this as
    a clean exit code instead of a traceback — see
    :mod:`repro.campaign.dist.worker`.
    """

    def __init__(self, message: str, address: Optional[str] = None):
        super().__init__(message)
        self.address = address


class DegradedResult(list):
    """A partial scatter-gather result: a plain ``list`` tagged with the
    shards that could not answer.

    Returned by :class:`~repro.campaign.dist.sharding.ShardedTransport`
    reads under ``degraded_reads=True`` instead of raising on the first
    unreachable shard.  Being a ``list`` subclass, every existing
    consumer keeps working unchanged; callers that must *not* act on a
    partial view (e.g. ``WorkQueue.drained``) check
    :func:`is_degraded` and refuse.  ``missing_shards`` lists the
    identities of the shards whose data is absent.
    """

    def __init__(self, items: Sequence = (),
                 missing_shards: Sequence[str] = ()):
        super().__init__(items)
        self.missing_shards = list(missing_shards)

    def __repr__(self) -> str:
        return (f"DegradedResult({list(self)!r}, "
                f"missing_shards={self.missing_shards!r})")


def is_degraded(value) -> bool:
    """True when ``value`` is a partial (degraded) scatter-gather result.

    >>> is_degraded([1, 2])
    False
    >>> is_degraded(DegradedResult([1], missing_shards=["http://b2"]))
    True
    >>> is_degraded(DegradedResult([1], missing_shards=[]))
    False
    """
    return bool(getattr(value, "missing_shards", None))


class ClaimUnsupported(Exception):
    """The transport's backend cannot run the claim scan server-side.

    Raised by :meth:`HttpTransport.claim_first` when the broker answers
    ``POST /claim`` with 404 — an older broker that predates the
    endpoint.  :meth:`~repro.campaign.dist.queue.WorkQueue.claim` catches
    this once, memoizes it, and falls back to the client-side
    scan-probe-CAS sequence for the rest of the process, so new workers
    interoperate with old brokers at the old (slower) wire cost.
    """


def etag_of(data: bytes) -> str:
    """Content-derived ETag shared by every transport.

    >>> etag_of(b"x") == etag_of(b"x")
    True
    >>> etag_of(b"x") == etag_of(b"y")
    False
    """
    return hashlib.sha256(data).hexdigest()[:32]


class QueueTransport:
    """Abstract storage contract; see the module docstring for semantics.

    Subclasses must implement the five point operations and may advertise
    an ``address`` — a string another *process* can use to reach the same
    store (a directory path, an ``http://`` URL).  ``address`` is ``None``
    for in-process-only transports, which tells
    :class:`~repro.campaign.dist.executor.DistributedExecutor` to run its
    fleet as threads instead of spawned worker processes.

    The batch/pagination methods have loop-based defaults here, so a
    third-party transport that predates them keeps working; the built-in
    transports override them with native implementations (one lock
    acquisition, one HTTP request, one directory walk).
    """

    #: How a separate worker process addresses this store (``--queue`` arg);
    #: ``None`` when the store is reachable only from this process.
    address: Optional[str] = None

    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        """``(data, etag)`` for ``key``, or ``None`` if absent."""
        raise NotImplementedError

    def put(self, key: str, data: bytes) -> str:
        """Unconditional atomic write; returns the new ETag."""
        raise NotImplementedError

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        """Conditional write: create-if-absent (``if_match=None``) or
        update-if-ETag-matches.  Returns the new ETag, ``None`` on
        conflict."""
        raise NotImplementedError

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        """Remove ``key`` (optionally only at a matching ETag); ``True``
        when something was removed."""
        raise NotImplementedError

    def list(self, prefix: str) -> List[str]:
        """Sorted keys beginning with ``prefix``."""
        raise NotImplementedError

    # -- batch / pagination defaults ---------------------------------------
    def get_many(self, keys: Sequence[str]
                 ) -> List[Optional[Tuple[bytes, str]]]:
        """One :meth:`get` outcome per key, in order."""
        return [self.get(key) for key in keys]

    def put_many(self, items: Sequence[Tuple[str, bytes, Optional[str]]]
                 ) -> List[Optional[str]]:
        """Apply ``(key, data, condition)`` writes *in order*; one
        ETag-or-``None`` per item.  ``condition`` is ``None`` (create),
        an ETag (update) or :data:`ANY` (unconditional)."""
        out: List[Optional[str]] = []
        for key, data, condition in items:
            if condition == ANY:
                out.append(self.put(key, data))
            else:
                out.append(self.cas(key, data, if_match=condition))
        return out

    def delete_many(self, items: Sequence[Tuple[str, Optional[str]]]
                    ) -> List[bool]:
        """Apply ``(key, if_match)`` deletes in order; one bool per item."""
        return [self.delete(key, if_match=if_match)
                for key, if_match in items]

    def mutate_many(self, ops: Sequence[Tuple]) -> List[object]:
        """Apply a mixed ordered batch of writes and deletes.

        Each op is ``("put", key, data, condition)`` — condition as in
        :meth:`put_many` — or ``("delete", key, if_match)``.  Returns one
        outcome per op, in order: ETag-or-``None`` for puts, bool for
        deletes.  Like the other batches this is not a transaction; each
        op succeeds or conflicts individually, in order.
        """
        out: List[object] = []
        for op in ops:
            if op[0] == "put":
                _, key, data, condition = op
                if condition == ANY:
                    out.append(self.put(key, data))
                else:
                    out.append(self.cas(key, data, if_match=condition))
            elif op[0] == "delete":
                _, key, if_match = op
                out.append(self.delete(key, if_match=if_match))
            else:
                raise ValueError(f"unknown mutate_many op: {op[0]!r}")
        return out

    def list_page(self, prefix: str, max_keys: int,
                  start_after: str = "") -> Tuple[List[str], Optional[str]]:
        """One sorted page of at most ``max_keys`` keys after
        ``start_after``; ``(keys, next_token)`` with ``next_token=None``
        on the final page."""
        max_keys = max(1, int(max_keys))
        keys = [key for key in self.list(prefix) if key > start_after]
        page = keys[:max_keys]
        if len(keys) > max_keys:
            return page, page[-1]
        return page, None


class MemoryTransport(QueueTransport):
    """In-process store: a dict under a lock.

    The reference implementation of the contract — every conditional
    operation is exact, and every batch runs under *one* lock acquisition
    — and the fastest one, for unit tests and single-process thread
    fleets (``DistributedExecutor`` runs worker threads when the
    transport has no ``address``).

    >>> t = MemoryTransport()
    >>> tag = t.put("a/1", b"one")
    >>> t.get("a/1") == (b"one", tag)
    True
    >>> t.cas("a/1", b"two", if_match=None) is None  # exists: create fails
    True
    >>> t.cas("a/1", b"two", if_match=tag) == etag_of(b"two")
    True
    >>> t.list("a/")
    ['a/1']
    >>> t.delete("a/1", if_match="stale")
    False
    >>> t.delete("a/1")
    True

    Batch primitives carry a per-item condition (``None`` create, ETag
    update, :data:`ANY` unconditional) and apply in order:

    >>> tags = t.put_many([("b/1", b"x", None), ("b/1", b"y", None),
    ...                    ("b/2", b"z", ANY)])
    >>> [tag is not None for tag in tags]
    [True, False, True]
    >>> t.get_many(["b/1", "b/2", "b/3"]) == [
    ...     (b"x", etag_of(b"x")), (b"z", etag_of(b"z")), None]
    True
    >>> t.list_page("b/", max_keys=1)
    (['b/1'], 'b/1')
    >>> t.list_page("b/", max_keys=1, start_after="b/1")
    (['b/2'], None)
    >>> t.delete_many([("b/1", "stale"), ("b/2", None)])
    [False, True]

    ``mutate_many`` mixes writes and deletes in one ordered batch:

    >>> out = t.mutate_many([("put", "c/1", b"r", ANY),
    ...                      ("delete", "b/1", None)])
    >>> out == [etag_of(b"r"), True]
    True
    """

    address = None

    def __init__(self):
        self._data: Dict[str, bytes] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        with self._lock:
            data = self._data.get(key)
        return None if data is None else (data, etag_of(data))

    def put(self, key: str, data: bytes) -> str:
        with self._lock:
            self._data[key] = data
        return etag_of(data)

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        with self._lock:
            return self._cas_locked(key, data, if_match)

    def _cas_locked(self, key: str, data: bytes,
                    if_match: Optional[str]) -> Optional[str]:
        current = self._data.get(key)
        if if_match is None:
            if current is not None:
                return None
        elif current is None or etag_of(current) != if_match:
            return None
        self._data[key] = data
        return etag_of(data)

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        with self._lock:
            return self._delete_locked(key, if_match)

    def _delete_locked(self, key: str, if_match: Optional[str]) -> bool:
        current = self._data.get(key)
        if current is None:
            return False
        if if_match is not None and etag_of(current) != if_match:
            return False
        del self._data[key]
        return True

    def list(self, prefix: str) -> List[str]:
        with self._lock:
            return sorted(k for k in self._data if k.startswith(prefix))

    # -- native batches: one lock acquisition each -------------------------
    def get_many(self, keys: Sequence[str]
                 ) -> List[Optional[Tuple[bytes, str]]]:
        with self._lock:
            found = [self._data.get(key) for key in keys]
        return [None if data is None else (data, etag_of(data))
                for data in found]

    def put_many(self, items: Sequence[Tuple[str, bytes, Optional[str]]]
                 ) -> List[Optional[str]]:
        out: List[Optional[str]] = []
        with self._lock:
            for key, data, condition in items:
                if condition == ANY:
                    self._data[key] = data
                    out.append(etag_of(data))
                else:
                    out.append(self._cas_locked(key, data, condition))
        return out

    def delete_many(self, items: Sequence[Tuple[str, Optional[str]]]
                    ) -> List[bool]:
        with self._lock:
            return [self._delete_locked(key, if_match)
                    for key, if_match in items]

    def mutate_many(self, ops: Sequence[Tuple]) -> List[object]:
        out: List[object] = []
        with self._lock:
            for op in ops:
                if op[0] == "put":
                    _, key, data, condition = op
                    if condition == ANY:
                        self._data[key] = data
                        out.append(etag_of(data))
                    else:
                        out.append(self._cas_locked(key, data, condition))
                elif op[0] == "delete":
                    _, key, if_match = op
                    out.append(self._delete_locked(key, if_match))
                else:
                    raise ValueError(f"unknown mutate_many op: {op[0]!r}")
        return out

    def list_page(self, prefix: str, max_keys: int,
                  start_after: str = "") -> Tuple[List[str], Optional[str]]:
        max_keys = max(1, int(max_keys))
        with self._lock:
            keys = sorted(k for k in self._data
                          if k.startswith(prefix) and k > start_after)
        page = keys[:max_keys]
        if len(keys) > max_keys:
            return page, page[-1]
        return page, None

    def __repr__(self) -> str:
        return f"MemoryTransport(keys={len(self._data)})"


class FsTransport(QueueTransport):
    """Keys as files under a root directory on a (possibly shared) filesystem.

    Key segments map to subdirectories (``pending/x.json`` →
    ``<root>/pending/x.json``).  Writes are atomic (staged temp file +
    ``os.replace``); conditional *create* is atomic via a hard link (one
    concurrent creator wins), with an ``O_CREAT|O_EXCL`` fallback on
    filesystems without hard links.  ``If-Match`` updates/deletes are
    read-check-write — see the module docstring for why that is sufficient
    for the queue.  Batches are loops with per-batch bookkeeping (parent
    directories created once); there is no syscall-level batching to
    exploit.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            # Unwritable/invalid store locations (queue or cache dirs)
            # surface through the same clean error path as an unreachable
            # broker (worker exit 3).
            raise TransportError(
                f"cannot create directory {self.root}: {exc}",
                address=str(self.root)) from exc
        self.address = str(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key

    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        data = read_bytes_or_none(self._path(key))
        return None if data is None else (data, etag_of(data))

    def put(self, key: str, data: bytes) -> str:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, data)
        except OSError as exc:
            raise TransportError(f"cannot write {path}: {exc}",
                                 address=self.address) from exc
        return etag_of(data)

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if if_match is None:
                return self._create_exclusive(path, data)
            current = read_bytes_or_none(path)
            if current is None or etag_of(current) != if_match:
                return None
            atomic_write_bytes(path, data)
        except OSError as exc:
            raise TransportError(f"cannot write {path}: {exc}",
                                 address=self.address) from exc
        return etag_of(data)

    def _create_exclusive(self, path: Path, data: bytes) -> Optional[str]:
        # Stage the full content, then hard-link into place: creation is
        # both exclusive and atomic in content, so a concurrent reader can
        # never observe a partially written key.  The staging name carries
        # pid *and* thread id — two threads of one process racing the same
        # key (a thread-fleet cache put) must not share a staging file.
        tmp = path.parent / (f".{path.name}.create.{os.getpid()}"
                             f".{threading.get_ident()}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
            try:
                os.link(tmp, path)
                return etag_of(data)
            except FileExistsError:
                return None
            except OSError:
                pass  # filesystem without hard links: O_EXCL fallback
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        except OSError as exc:
            raise TransportError(f"cannot create {path}: {exc}",
                                 address=self.address) from exc
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        return etag_of(data)

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        path = self._path(key)
        if if_match is not None:
            current = read_bytes_or_none(path)
            if current is None or etag_of(current) != if_match:
                return False
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def list(self, prefix: str) -> List[str]:
        # A true recursive prefix scan, like the in-memory and broker
        # stores: queue listings are directory-shaped ("pending/") and see
        # one level, while cache listings (prefix "") see the two-level
        # entry fan-out.  Hidden names are staging files (atomic_write /
        # _create_exclusive temps), never keys.
        directory, _, stem = prefix.rpartition("/")
        base = self.root / directory if directory else self.root
        head = f"{directory}/" if directory else ""
        keys: List[str] = []
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            rel = os.path.relpath(dirpath, base)
            rel_head = "" if rel == "." else rel.replace(os.sep, "/") + "/"
            for name in filenames:
                if name.startswith("."):
                    continue
                key = head + rel_head + name
                if key.startswith(prefix):
                    keys.append(key)
        return sorted(keys)

    # -- batches -----------------------------------------------------------
    # There is no syscall-level batching to exploit: the base-class loops
    # over get/delete *are* the native filesystem implementation.  Only
    # put_many is overridden, to create each parent directory once per
    # batch instead of once per op.
    def put_many(self, items: Sequence[Tuple[str, bytes, Optional[str]]]
                 ) -> List[Optional[str]]:
        out: List[Optional[str]] = []
        made_dirs = set()
        for key, data, condition in items:
            path = self._path(key)
            try:
                if path.parent not in made_dirs:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    made_dirs.add(path.parent)
                if condition == ANY:
                    atomic_write_bytes(path, data)
                    out.append(etag_of(data))
                elif condition is None:
                    out.append(self._create_exclusive(path, data))
                else:
                    current = read_bytes_or_none(path)
                    if current is None or etag_of(current) != condition:
                        out.append(None)
                    else:
                        atomic_write_bytes(path, data)
                        out.append(etag_of(data))
            except OSError as exc:
                raise TransportError(f"cannot write {path}: {exc}",
                                     address=self.address) from exc
        return out

    def __repr__(self) -> str:
        return f"FsTransport({str(self.root)!r})"


class _ConnectionDropped(Exception):
    """A pooled HTTP connection failed mid-exchange (internal signal).

    ``reused`` distinguishes a *stale keep-alive socket* — the server
    closed an idle pooled connection between our requests, the normal
    hazard of connection reuse — from a connection that failed on its
    very first use (a genuinely unreachable broker)."""

    def __init__(self, error: Exception, reused: bool):
        super().__init__(str(error))
        self.error = error
        self.reused = reused


class HttpTransport(QueueTransport):
    """Client of the :mod:`repro.campaign.dist.server` broker.

    Speaks a minimal S3-style REST dialect over a **pooled keep-alive**
    ``http.client.HTTPConnection`` (one per thread, reconnected
    transparently when it goes stale — the broker speaks HTTP/1.1, so the
    same TCP connection carries the whole campaign instead of paying a
    connect/teardown per request):

    * ``GET /k/<key>`` → body + ``ETag`` header (404 when absent);
    * ``PUT /k/<key>`` with ``If-None-Match: *`` (create) or
      ``If-Match: <etag>`` (update) → 412 on conflict;
    * ``DELETE /k/<key>`` with optional ``If-Match``;
    * ``GET /list?prefix=<p>[&max-keys=<n>&start-after=<k>]`` → JSON
      ``{"keys": [...], "truncated": bool, "next": <token>}``;
    * ``POST /batch`` → per-op statuses (see :meth:`get_many` /
      :meth:`put_many` / :meth:`delete_many`), one round trip for up to
      ``_BATCH_CHUNK`` conditional operations.

    A request that fails on a *reused* pooled socket (the server closed
    an idle keep-alive connection — e.g. a broker restart between
    requests) is retried once on a fresh connection without consuming a
    retry attempt; transient connection failures beyond that are retried
    with exponential backoff, and once ``retries`` are exhausted a
    :class:`TransportError` is raised, which workers turn into a clean
    exit code.  Because ETags are content hashes, leases held across a
    broker restart remain valid — the broker's disk-backed store restores
    identical ETags.
    """

    def __init__(self, base_url: str, retries: int = 5,
                 retry_delay: float = 0.2, timeout: float = 10.0,
                 retry_max_delay: float = 5.0,
                 registry: Optional[MetricsRegistry] = None):
        self.base_url = base_url.rstrip("/")
        self.retries = max(0, int(retries))
        self.retry_delay = retry_delay
        self.retry_max_delay = retry_max_delay
        self.timeout = timeout
        self.address = self.base_url
        self._claim_unsupported = False
        parsed = urllib.parse.urlsplit(self.base_url)
        self._https = parsed.scheme == "https"
        self._host = parsed.hostname or ""
        self._port = parsed.port
        self._prefix = parsed.path.rstrip("/")
        self._local = threading.local()
        # Client-side telemetry (defaults to the process-wide registry —
        # one snapshot describes a whole worker process): per-op latency,
        # retry pressure, and pooled-connection reuse.  The increments
        # are nanoseconds next to an HTTP round trip; the BENCH_obs.json
        # benchmark pins the overhead and the transport bench floor
        # (250 cycles/s per core) still gates CI with these on.
        registry = registry if registry is not None else get_registry()
        self._ops = registry.counter(
            "transport_ops_total", "HTTP exchanges issued, by op")
        self._op_seconds = registry.histogram(
            "transport_op_seconds", "end-to-end op latency incl. retries")
        self._retries = registry.counter(
            "transport_retries_total",
            "re-sent requests: free (stale pooled socket) vs backoff")
        self._connections = registry.counter(
            "transport_connections_total",
            "pooled connections opened vs exchanges that reused one")

    # -- connection pooling ------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        """This thread's pooled connection, created on first use."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            maker = (http.client.HTTPSConnection if self._https
                     else http.client.HTTPConnection)
            conn = maker(self._host, self._port, timeout=self.timeout)
            conn.connect()
            # TCP_NODELAY: a PUT's headers and body leave as two writes;
            # under Nagle the body would stall behind the peer's delayed
            # ACK (~40ms), erasing everything connection reuse buys.
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.conn = conn
            self._local.used = False
            self._connections.inc(event="opened")
        else:
            self._connections.inc(event="reused")
        return conn

    def _discard_connection(self) -> None:
        """Drop this thread's pooled connection (stale or poisoned)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._local.conn = None

    def _exchange(self, method: str, path: str, data: Optional[bytes],
                  headers: Optional[Dict[str, str]]):
        """One request/response on the pooled connection.

        Returns ``(status, body, etag)``; raises :class:`_ConnectionDropped`
        on any connection-level failure (the connection is discarded)."""
        reused = getattr(self._local, "conn", None) is not None \
            and bool(getattr(self._local, "used", False))
        try:
            conn = self._connection()
            conn.request(method, path, body=data, headers=dict(headers or {}))
            response = conn.getresponse()
            body = response.read()
        except (http.client.HTTPException, ConnectionError, TimeoutError,
                OSError) as exc:
            self._discard_connection()
            raise _ConnectionDropped(exc, reused) from exc
        self._local.used = True
        etag = response.headers.get("ETag", "") or ""
        if response.will_close:
            # The server announced Connection: close — do not pool a
            # connection the peer is about to tear down.
            self._discard_connection()
        return response.status, body, etag

    def _request(self, method: str, path: str, data: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None,
                 idempotent: Optional[bool] = None):
        """One HTTP exchange with stale-socket reconnect and retries.

        Returns ``(status, body, etag)``.  4xx responses are returned (the
        caller maps 404/412 to contract results).  An *idempotent* request
        (GET/LIST, or a ``/batch`` of gets — defaulting to "method is
        GET", overridable per call) that fails on a reused keep-alive
        socket gets one immediate free retry on a fresh connection: the
        server closing an idle pooled connection is the normal hazard of
        reuse, not a down broker.  Non-idempotent requests never get the
        free retry — a conditional PUT whose response was lost may have
        been applied, and silently re-sending it would misreport the
        outcome as a conflict; they (like all remaining connection-level
        failures) consume backoff retries, whose semantics callers
        already handle (see :meth:`~repro.campaign.dist.queue.WorkQueue.
        claim`'s own-write check).  Exhausted retries raise
        :class:`TransportError`.
        """
        if idempotent is None:
            idempotent = method == "GET"
        op = self._op_of(method, path)
        self._ops.inc(op=op)
        start = time.perf_counter()
        try:
            last_error: Optional[Exception] = None
            for attempt in range(self.retries + 1):
                try:
                    return self._exchange(method, path, data, headers)
                except _ConnectionDropped as dropped:
                    last_error = dropped.error
                    if dropped.reused and idempotent:
                        # Stale pooled socket, not a down broker: the
                        # retry on a fresh connection is free (does not
                        # burn a backoff attempt), so even retries=0
                        # transports survive keep-alive churn on their
                        # read paths.
                        self._retries.inc(kind="free")
                        try:
                            return self._exchange(method, path, data,
                                                  headers)
                        except _ConnectionDropped as again:
                            last_error = again.error
                if attempt < self.retries:
                    self._retries.inc(kind="backoff")
                    time.sleep(self._backoff_delay(attempt))
            raise TransportError(
                f"broker unreachable at {self.base_url} after "
                f"{self.retries + 1} attempts: {last_error}",
                address=self.base_url)
        finally:
            self._op_seconds.observe(time.perf_counter() - start, op=op)

    @staticmethod
    def _op_of(method: str, path: str) -> str:
        """Bounded op label for a request path (keys collapse to one
        label — metric cardinality must not grow with the keyspace)."""
        if "/k/" in path:
            return method.lower()
        for route in ("batch", "claim", "list", "stats"):
            if f"/{route}" in path:
                return route
        return "other"

    def _backoff_delay(self, attempt: int) -> float:
        """Full-jitter exponential backoff, clamped to ``retry_max_delay``.

        A broker blip hits every worker in a fleet at once; if they all
        slept the same deterministic ``retry_delay * 2**attempt`` they
        would come back in lockstep and re-create the very thundering
        herd the backoff exists to dissipate.  Drawing uniformly from
        ``[0, min(cap, base * 2**attempt)]`` spreads the retries across
        the whole window (AWS-style "full jitter"), and the cap keeps the
        worst-case stall bounded no matter how many retries are
        configured.
        """
        ceiling = min(self.retry_max_delay,
                      self.retry_delay * (2 ** attempt))
        return random.uniform(0.0, max(0.0, ceiling))

    def _key_path(self, key: str) -> str:
        return f"{self._prefix}/k/{urllib.parse.quote(key)}"

    # -- the contract ------------------------------------------------------
    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        status, body, etag = self._request("GET", self._key_path(key))
        if status == 404:
            return None
        if status != 200:
            raise TransportError(f"GET {key}: unexpected status {status}",
                                 address=self.base_url)
        return body, etag

    def put(self, key: str, data: bytes) -> str:
        status, _, etag = self._request("PUT", self._key_path(key), data=data)
        if status not in (200, 201):
            raise TransportError(f"PUT {key}: unexpected status {status}",
                                 address=self.base_url)
        return etag

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        headers = ({"If-None-Match": "*"} if if_match is None
                   else {"If-Match": if_match})
        status, _, etag = self._request("PUT", self._key_path(key), data=data,
                                        headers=headers)
        if status == 412:
            return None
        if status not in (200, 201):
            raise TransportError(f"PUT {key}: unexpected status {status}",
                                 address=self.base_url)
        return etag

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        headers = {} if if_match is None else {"If-Match": if_match}
        status, _, _ = self._request("DELETE", self._key_path(key),
                                     headers=headers)
        if status in (404, 412):
            return False
        if status not in (200, 204):
            raise TransportError(f"DELETE {key}: unexpected status {status}",
                                 address=self.base_url)
        return True

    def list(self, prefix: str) -> List[str]:
        """Full listing, reassembled from bounded ``/list`` pages so one
        giant keyspace never ships as one giant response."""
        keys: List[str] = []
        start_after = ""
        while True:
            page, token = self.list_page(prefix, _LIST_PAGE,
                                         start_after=start_after)
            keys.extend(page)
            if token is None:
                return keys
            start_after = token

    def list_page(self, prefix: str, max_keys: int,
                  start_after: str = "") -> Tuple[List[str], Optional[str]]:
        query = {"prefix": prefix, "max-keys": max(1, int(max_keys))}
        if start_after:
            query["start-after"] = start_after
        status, body, _ = self._request(
            "GET", f"{self._prefix}/list?{urllib.parse.urlencode(query)}")
        if status != 200:
            raise TransportError(f"LIST {prefix}: unexpected status {status}",
                                 address=self.base_url)
        payload = json_loads_or_none(body) or {}
        keys = [str(key) for key in payload.get("keys", [])]
        if not payload.get("truncated"):
            return keys, None
        token = payload.get("next") or (keys[-1] if keys else None)
        return keys, (str(token) if token is not None else None)

    # -- native batches: one /batch request per _BATCH_CHUNK ops -----------
    def _batch(self, ops: List[Dict[str, object]]) -> List[Dict[str, object]]:
        # A batch of nothing but gets is idempotent and earns the free
        # stale-socket retry (get_many is the claim scan's hot probe);
        # any mutation in the batch forfeits it.
        reads_only = all(op.get("op") == "get" for op in ops)
        results: List[Dict[str, object]] = []
        for start in range(0, len(ops), _BATCH_CHUNK):
            chunk = ops[start:start + _BATCH_CHUNK]
            status, body, _ = self._request(
                "POST", f"{self._prefix}/batch",
                data=json_dumps_bytes({"ops": chunk}),
                headers={"Content-Type": "application/json"},
                idempotent=reads_only)
            if status != 200:
                raise TransportError(
                    f"BATCH: unexpected status {status}",
                    address=self.base_url)
            payload = json_loads_or_none(body) or {}
            outcomes = payload.get("results")
            if not isinstance(outcomes, list) or len(outcomes) != len(chunk):
                raise TransportError(
                    "BATCH: malformed response (op/result count mismatch)",
                    address=self.base_url)
            results.extend(outcomes)
        return results

    def get_many(self, keys: Sequence[str]
                 ) -> List[Optional[Tuple[bytes, str]]]:
        keys = list(keys)
        if not keys:
            return []
        outcomes = self._batch([{"op": "get", "key": key} for key in keys])
        out: List[Optional[Tuple[bytes, str]]] = []
        for key, res in zip(keys, outcomes):
            status = res.get("status") if isinstance(res, dict) else None
            if status == 404:
                out.append(None)
            elif status == 200:
                try:
                    data = base64.b64decode(str(res.get("data", "")))
                except (binascii.Error, ValueError) as exc:
                    raise TransportError(
                        f"batch GET {key}: undecodable payload",
                        address=self.base_url) from exc
                out.append((data, str(res.get("etag", ""))))
            else:
                raise TransportError(
                    f"batch GET {key}: unexpected status {status}",
                    address=self.base_url)
        return out

    def put_many(self, items: Sequence[Tuple[str, bytes, Optional[str]]]
                 ) -> List[Optional[str]]:
        items = list(items)
        if not items:
            return []
        ops: List[Dict[str, object]] = []
        for key, data, condition in items:
            op: Dict[str, object] = {
                "op": "put", "key": key,
                "data": base64.b64encode(data).decode("ascii")}
            if condition is None:
                op["if_none_match"] = "*"
            elif condition != ANY:
                op["if_match"] = condition
            ops.append(op)
        outcomes = self._batch(ops)
        out: List[Optional[str]] = []
        for (key, _, _), res in zip(items, outcomes):
            status = res.get("status") if isinstance(res, dict) else None
            if status == 412:
                out.append(None)
            elif status in (200, 201):
                out.append(str(res.get("etag", "")))
            else:
                raise TransportError(
                    f"batch PUT {key}: unexpected status {status}",
                    address=self.base_url)
        return out

    def delete_many(self, items: Sequence[Tuple[str, Optional[str]]]
                    ) -> List[bool]:
        items = list(items)
        if not items:
            return []
        ops = []
        for key, if_match in items:
            op: Dict[str, object] = {"op": "delete", "key": key}
            if if_match is not None:
                op["if_match"] = if_match
            ops.append(op)
        outcomes = self._batch(ops)
        out: List[bool] = []
        for (key, _), res in zip(items, outcomes):
            status = res.get("status") if isinstance(res, dict) else None
            if status in (200, 204):
                out.append(True)
            elif status in (404, 412):
                out.append(False)
            else:
                raise TransportError(
                    f"batch DELETE {key}: unexpected status {status}",
                    address=self.base_url)
        return out

    def mutate_many(self, ops: Sequence[Tuple]) -> List[object]:
        ops = list(ops)
        if not ops:
            return []
        wire: List[Dict[str, object]] = []
        for op in ops:
            if op[0] == "put":
                _, key, data, condition = op
                encoded: Dict[str, object] = {
                    "op": "put", "key": key,
                    "data": base64.b64encode(data).decode("ascii")}
                if condition is None:
                    encoded["if_none_match"] = "*"
                elif condition != ANY:
                    encoded["if_match"] = condition
            elif op[0] == "delete":
                _, key, if_match = op
                encoded = {"op": "delete", "key": key}
                if if_match is not None:
                    encoded["if_match"] = if_match
            else:
                raise ValueError(f"unknown mutate_many op: {op[0]!r}")
            wire.append(encoded)
        outcomes = self._batch(wire)
        out: List[object] = []
        for op, res in zip(ops, outcomes):
            status = res.get("status") if isinstance(res, dict) else None
            if op[0] == "put":
                if status == 412:
                    out.append(None)
                elif status in (200, 201):
                    out.append(str(res.get("etag", "")))
                else:
                    raise TransportError(
                        f"batch PUT {op[1]}: unexpected status {status}",
                        address=self.base_url)
            else:
                if status in (200, 204):
                    out.append(True)
                elif status in (404, 412):
                    out.append(False)
                else:
                    raise TransportError(
                        f"batch DELETE {op[1]}: unexpected status {status}",
                        address=self.base_url)
        return out

    # -- server-side claim -------------------------------------------------
    def claim_first(self, prefix: str = "pending/", worker: str = "",
                    now: Optional[float] = None,
                    lease_seconds: Optional[float] = None
                    ) -> Optional[dict]:
        """Ask the broker to run one scan-probe-CAS claim pass server-side.

        ``POST /claim`` collapses the whole client-side claim sequence —
        page the pending listing, batch-probe results/pending/claims,
        CAS-create the claim document, read the job record — into a
        single round trip, decided under the broker's locks.  Returns the
        claim outcome document (``name``/``key``/``etag``/``attempts``/
        ``cost``/``record``/``lease``), ``None`` when the queue is
        drained (204), and raises :class:`ClaimUnsupported` against
        brokers that predate the endpoint (404) — the caller falls back
        to the client-side scan.  ``now`` and ``lease_seconds`` are
        passed through for callers driving fake clocks; the broker
        defaults them to its wall clock and the queue config.

        The request is **not** idempotent: a retried POST whose first
        response was lost may have claimed a ticket whose lease the
        caller never learns about.  That degrades to a lease-expiry
        retry (the queue's normal at-least-once path), never a lost job.
        """
        if self._claim_unsupported:
            raise ClaimUnsupported(self.base_url)
        query: Dict[str, str] = {"prefix": prefix, "worker": worker}
        if now is not None:
            query["now"] = repr(float(now))
        if lease_seconds is not None:
            query["lease"] = repr(float(lease_seconds))
        status, body, _ = self._request(
            "POST", f"{self._prefix}/claim?{urllib.parse.urlencode(query)}",
            idempotent=False)
        if status == 404:
            self._claim_unsupported = True
            raise ClaimUnsupported(self.base_url)
        if status == 204:
            return None
        if status != 200:
            raise TransportError(
                f"CLAIM {prefix}: unexpected status {status}",
                address=self.base_url)
        outcome = json_loads_or_none(body)
        if not isinstance(outcome, dict) or "name" not in outcome:
            raise TransportError(
                "CLAIM: malformed response body", address=self.base_url)
        return outcome

    def stats(self) -> Optional[dict]:
        """The broker's ``GET /stats`` telemetry snapshot.

        Returns the decoded ``{"server": ..., "metrics": ...}`` document,
        or ``None`` against a broker that predates the endpoint (404) —
        the ``dist.stats`` dashboard degrades to queue-state-only output
        rather than failing.
        """
        status, body, _ = self._request("GET", f"{self._prefix}/stats")
        if status == 404:
            return None
        if status != 200:
            raise TransportError(
                f"STATS: unexpected status {status}", address=self.base_url)
        payload = json_loads_or_none(body)
        return payload if isinstance(payload, dict) else None

    def close(self) -> None:
        """Release this thread's pooled connection (other threads' pooled
        connections are dropped when their threads exit)."""
        self._discard_connection()

    def __repr__(self) -> str:
        return f"HttpTransport({self.base_url!r})"


def transport_from_address(address: os.PathLike, retries: int = 5,
                           retry_delay: float = 0.2) -> QueueTransport:
    """Build the right transport for an address string.

    ``http://`` / ``https://`` URLs get an :class:`HttpTransport` pointed
    at a broker; a comma-separated list of such URLs gets a
    :class:`~repro.campaign.dist.sharding.ShardedTransport` routing
    across all of them (``--queue http://b1:8123,http://b2:8123``);
    anything else is treated as a queue directory on a (possibly shared)
    filesystem.  This is how the worker CLI's ``--queue`` argument
    accepts all three.
    """
    text = str(address)
    if "," in text:
        # Imported lazily: sharding builds on this module.
        from repro.campaign.dist.sharding import (
            ShardedTransport,
            split_shard_urls,
        )

        urls = split_shard_urls(text)
        if urls is not None:
            return ShardedTransport(
                [HttpTransport(url, retries=retries,
                               retry_delay=retry_delay) for url in urls])
    if text.startswith("http://") or text.startswith("https://"):
        return HttpTransport(text, retries=retries, retry_delay=retry_delay)
    return FsTransport(Path(text))
