"""Pluggable queue transports: one storage contract, many backends.

The distributed work queue (:class:`~repro.campaign.dist.queue.WorkQueue`)
is a state machine over *opaque keys* holding small JSON documents, and
the result cache (:class:`~repro.campaign.cache.TransportResultCache`) and
persisted cost model ride the same seam — one storage contract carries a
whole campaign's durable state.  This module defines that contract — five
operations, modelled on an S3-style object store — and three
implementations:

* :class:`FsTransport` — keys are files under a root directory (the
  original shared-filesystem queue; any number of processes/hosts sharing
  the directory can participate);
* :class:`MemoryTransport` — keys in a lock-protected dict (fast tests and
  single-process thread fleets; truly atomic CAS);
* :class:`HttpTransport` — keys served by the
  :mod:`repro.campaign.dist.server` broker over a minimal S3-style REST
  dialect (``GET``/``PUT``/``DELETE`` plus ``?prefix=`` listing), with
  conditional ``PUT``/``DELETE`` via ``ETag``/``If-Match`` headers.

The contract
------------

``get(key)``
    Return ``(data, etag)`` or ``None`` if the key is absent.
``put(key, data)``
    Unconditional atomic write; returns the new ETag.
``cas(key, data, if_match)``
    Conditional write.  ``if_match=None`` means *create: the key must not
    exist* (HTTP ``If-None-Match: *``) — this is the primitive every
    mutual-exclusion decision in the queue (claiming a job, creating the
    queue config) rests on, and all three transports implement it
    atomically.  A string ``if_match`` means *the current ETag must equal
    it* (HTTP ``If-Match``).  Returns the new ETag, or ``None`` on
    conflict.
``delete(key, if_match=None)``
    Remove a key, optionally only if its ETag still matches.  Returns
    ``True`` if the key was removed.
``list(prefix)``
    Sorted keys beginning with ``prefix``.

ETags are content-derived (:func:`etag_of`, a SHA-256 of the bytes): two
writes of identical bytes share an ETag on every transport, and a broker
restart cannot invalidate leases held by workers — the satellite property
the crash tests pin down.

Atomicity fine print: ``FsTransport`` implements conditional *create*
atomically (hard-link or ``O_EXCL`` tricks), but ``If-Match`` updates and
deletes are read-check-write — racy by nature of POSIX.  The queue is
designed so that every ``If-Match`` race degrades to a re-executed job
(results are content-derived, so re-execution is harmless), never to a
lost one.  ``MemoryTransport`` and the HTTP broker serialize mutations
under a lock, so for them every conditional operation is exact.
"""

from __future__ import annotations

import hashlib
import http.client
import os
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.campaign.jsonio import atomic_write_bytes, read_bytes_or_none


class TransportError(Exception):
    """A transport could not reach its backing store.

    Raised after retries are exhausted (connection refused, broker down,
    unwritable directory).  ``address`` names the failing store when the
    raising transport knows it, so a worker holding two transports (queue
    and cache) can blame the right one exactly.  Workers surface this as
    a clean exit code instead of a traceback — see
    :mod:`repro.campaign.dist.worker`.
    """

    def __init__(self, message: str, address: Optional[str] = None):
        super().__init__(message)
        self.address = address


def etag_of(data: bytes) -> str:
    """Content-derived ETag shared by every transport.

    >>> etag_of(b"x") == etag_of(b"x")
    True
    >>> etag_of(b"x") == etag_of(b"y")
    False
    """
    return hashlib.sha256(data).hexdigest()[:32]


class QueueTransport:
    """Abstract storage contract; see the module docstring for semantics.

    Subclasses must implement the five operations and may advertise an
    ``address`` — a string another *process* can use to reach the same
    store (a directory path, an ``http://`` URL).  ``address`` is ``None``
    for in-process-only transports, which tells
    :class:`~repro.campaign.dist.executor.DistributedExecutor` to run its
    fleet as threads instead of spawned worker processes.
    """

    #: How a separate worker process addresses this store (``--queue`` arg);
    #: ``None`` when the store is reachable only from this process.
    address: Optional[str] = None

    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        """``(data, etag)`` for ``key``, or ``None`` if absent."""
        raise NotImplementedError

    def put(self, key: str, data: bytes) -> str:
        """Unconditional atomic write; returns the new ETag."""
        raise NotImplementedError

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        """Conditional write: create-if-absent (``if_match=None``) or
        update-if-ETag-matches.  Returns the new ETag, ``None`` on
        conflict."""
        raise NotImplementedError

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        """Remove ``key`` (optionally only at a matching ETag); ``True``
        when something was removed."""
        raise NotImplementedError

    def list(self, prefix: str) -> List[str]:
        """Sorted keys beginning with ``prefix``."""
        raise NotImplementedError


class MemoryTransport(QueueTransport):
    """In-process store: a dict under a lock.

    The reference implementation of the contract — every conditional
    operation is exact — and the fastest one, for unit tests and
    single-host thread fleets (``DistributedExecutor`` runs worker threads
    when the transport has no ``address``).

    >>> t = MemoryTransport()
    >>> tag = t.put("a/1", b"one")
    >>> t.get("a/1") == (b"one", tag)
    True
    >>> t.cas("a/1", b"two", if_match=None) is None  # exists: create fails
    True
    >>> t.cas("a/1", b"two", if_match=tag) == etag_of(b"two")
    True
    >>> t.list("a/")
    ['a/1']
    >>> t.delete("a/1", if_match="stale")
    False
    >>> t.delete("a/1")
    True
    """

    address = None

    def __init__(self):
        self._data: Dict[str, bytes] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        with self._lock:
            data = self._data.get(key)
        return None if data is None else (data, etag_of(data))

    def put(self, key: str, data: bytes) -> str:
        with self._lock:
            self._data[key] = data
        return etag_of(data)

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        with self._lock:
            current = self._data.get(key)
            if if_match is None:
                if current is not None:
                    return None
            elif current is None or etag_of(current) != if_match:
                return None
            self._data[key] = data
        return etag_of(data)

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        with self._lock:
            current = self._data.get(key)
            if current is None:
                return False
            if if_match is not None and etag_of(current) != if_match:
                return False
            del self._data[key]
        return True

    def list(self, prefix: str) -> List[str]:
        with self._lock:
            return sorted(k for k in self._data if k.startswith(prefix))

    def __repr__(self) -> str:
        return f"MemoryTransport(keys={len(self._data)})"


class FsTransport(QueueTransport):
    """Keys as files under a root directory on a (possibly shared) filesystem.

    Key segments map to subdirectories (``pending/x.json`` →
    ``<root>/pending/x.json``).  Writes are atomic (staged temp file +
    ``os.replace``); conditional *create* is atomic via a hard link (one
    concurrent creator wins), with an ``O_CREAT|O_EXCL`` fallback on
    filesystems without hard links.  ``If-Match`` updates/deletes are
    read-check-write — see the module docstring for why that is sufficient
    for the queue.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            # Unwritable/invalid store locations (queue or cache dirs)
            # surface through the same clean error path as an unreachable
            # broker (worker exit 3).
            raise TransportError(
                f"cannot create directory {self.root}: {exc}",
                address=str(self.root)) from exc
        self.address = str(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key

    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        data = read_bytes_or_none(self._path(key))
        return None if data is None else (data, etag_of(data))

    def put(self, key: str, data: bytes) -> str:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, data)
        except OSError as exc:
            raise TransportError(f"cannot write {path}: {exc}",
                                 address=self.address) from exc
        return etag_of(data)

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if if_match is None:
                return self._create_exclusive(path, data)
            current = read_bytes_or_none(path)
            if current is None or etag_of(current) != if_match:
                return None
            atomic_write_bytes(path, data)
        except OSError as exc:
            raise TransportError(f"cannot write {path}: {exc}",
                                 address=self.address) from exc
        return etag_of(data)

    def _create_exclusive(self, path: Path, data: bytes) -> Optional[str]:
        # Stage the full content, then hard-link into place: creation is
        # both exclusive and atomic in content, so a concurrent reader can
        # never observe a partially written key.  The staging name carries
        # pid *and* thread id — two threads of one process racing the same
        # key (a thread-fleet cache put) must not share a staging file.
        tmp = path.parent / (f".{path.name}.create.{os.getpid()}"
                             f".{threading.get_ident()}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
            try:
                os.link(tmp, path)
                return etag_of(data)
            except FileExistsError:
                return None
            except OSError:
                pass  # filesystem without hard links: O_EXCL fallback
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        except OSError as exc:
            raise TransportError(f"cannot create {path}: {exc}",
                                 address=self.address) from exc
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        return etag_of(data)

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        path = self._path(key)
        if if_match is not None:
            current = read_bytes_or_none(path)
            if current is None or etag_of(current) != if_match:
                return False
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def list(self, prefix: str) -> List[str]:
        # A true recursive prefix scan, like the in-memory and broker
        # stores: queue listings are directory-shaped ("pending/") and see
        # one level, while cache listings (prefix "") see the two-level
        # entry fan-out.  Hidden names are staging files (atomic_write /
        # _create_exclusive temps), never keys.
        directory, _, stem = prefix.rpartition("/")
        base = self.root / directory if directory else self.root
        head = f"{directory}/" if directory else ""
        keys: List[str] = []
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            rel = os.path.relpath(dirpath, base)
            rel_head = "" if rel == "." else rel.replace(os.sep, "/") + "/"
            for name in filenames:
                if name.startswith("."):
                    continue
                key = head + rel_head + name
                if key.startswith(prefix):
                    keys.append(key)
        return sorted(keys)

    def __repr__(self) -> str:
        return f"FsTransport({str(self.root)!r})"


class HttpTransport(QueueTransport):
    """Client of the :mod:`repro.campaign.dist.server` broker.

    Speaks a minimal S3-style REST dialect over stdlib ``urllib``:

    * ``GET /k/<key>`` → body + ``ETag`` header (404 when absent);
    * ``PUT /k/<key>`` with ``If-None-Match: *`` (create) or
      ``If-Match: <etag>`` (update) → 412 on conflict;
    * ``DELETE /k/<key>`` with optional ``If-Match``;
    * ``GET /list?prefix=<p>`` → JSON ``{"keys": [...]}``.

    Transient connection failures (broker restarting, network blip) are
    retried with exponential backoff; once ``retries`` are exhausted a
    :class:`TransportError` is raised, which workers turn into a clean
    exit code.  Because ETags are content hashes, leases held across a
    broker restart remain valid — the broker's disk-backed store restores
    identical ETags.
    """

    def __init__(self, base_url: str, retries: int = 5,
                 retry_delay: float = 0.2, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.retries = max(0, int(retries))
        self.retry_delay = retry_delay
        self.timeout = timeout
        self.address = self.base_url

    # -- request plumbing --------------------------------------------------
    def _url(self, key: str) -> str:
        return f"{self.base_url}/k/{urllib.parse.quote(key)}"

    def _request(self, method: str, url: str, data: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None):
        """One HTTP exchange with retry-on-connection-failure.

        Returns ``(status, body, etag)``.  4xx responses are returned (the
        caller maps 404/412 to contract results); connection-level
        failures retry, then raise :class:`TransportError`.
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(url, data=data, method=method,
                                             headers=dict(headers or {}))
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as response:
                    body = response.read()
                    return (response.status, body,
                            response.headers.get("ETag", ""))
            except urllib.error.HTTPError as exc:
                # A well-formed broker response (404, 412, ...) — not a
                # connectivity problem, no retry.
                body = exc.read()
                return exc.code, body, exc.headers.get("ETag", "")
            except (urllib.error.URLError, http.client.HTTPException,
                    ConnectionError, TimeoutError, OSError) as exc:
                last_error = exc
                if attempt < self.retries:
                    time.sleep(self.retry_delay * (2 ** attempt))
        raise TransportError(
            f"broker unreachable at {self.base_url} after "
            f"{self.retries + 1} attempts: {last_error}",
            address=self.base_url)

    # -- the contract ------------------------------------------------------
    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        status, body, etag = self._request("GET", self._url(key))
        if status == 404:
            return None
        if status != 200:
            raise TransportError(f"GET {key}: unexpected status {status}",
                                 address=self.base_url)
        return body, etag

    def put(self, key: str, data: bytes) -> str:
        status, _, etag = self._request("PUT", self._url(key), data=data)
        if status not in (200, 201):
            raise TransportError(f"PUT {key}: unexpected status {status}",
                                 address=self.base_url)
        return etag

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        headers = ({"If-None-Match": "*"} if if_match is None
                   else {"If-Match": if_match})
        status, _, etag = self._request("PUT", self._url(key), data=data,
                                        headers=headers)
        if status == 412:
            return None
        if status not in (200, 201):
            raise TransportError(f"PUT {key}: unexpected status {status}",
                                 address=self.base_url)
        return etag

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        headers = {} if if_match is None else {"If-Match": if_match}
        status, _, _ = self._request("DELETE", self._url(key),
                                     headers=headers)
        if status in (404, 412):
            return False
        if status not in (200, 204):
            raise TransportError(f"DELETE {key}: unexpected status {status}",
                                 address=self.base_url)
        return True

    def list(self, prefix: str) -> List[str]:
        url = (f"{self.base_url}/list?"
               f"{urllib.parse.urlencode({'prefix': prefix})}")
        status, body, _ = self._request("GET", url)
        if status != 200:
            raise TransportError(f"LIST {prefix}: unexpected status {status}",
                                 address=self.base_url)
        from repro.campaign.jsonio import json_loads_or_none

        payload = json_loads_or_none(body) or {}
        keys = payload.get("keys", [])
        return sorted(str(key) for key in keys)

    def __repr__(self) -> str:
        return f"HttpTransport({self.base_url!r})"


def transport_from_address(address: os.PathLike, retries: int = 5,
                           retry_delay: float = 0.2) -> QueueTransport:
    """Build the right transport for an address string.

    ``http://`` / ``https://`` URLs get an :class:`HttpTransport` pointed
    at a broker; anything else is treated as a queue directory on a
    (possibly shared) filesystem.  This is how the worker CLI's
    ``--queue`` argument accepts both.
    """
    text = str(address)
    if text.startswith("http://") or text.startswith("https://"):
        return HttpTransport(text, retries=retries, retry_delay=retry_delay)
    return FsTransport(Path(text))
