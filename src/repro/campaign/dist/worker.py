"""The distributed-campaign worker: claim, deduplicate, execute, heartbeat.

Runnable as a module::

    python -m repro.campaign.dist.worker --queue DIR_OR_URL \
        [--cache DIR_OR_URL] [--worker-id ID] [--exit-when-drained] \
        [--max-jobs N] [--idle-timeout SECONDS]

``--queue`` and ``--cache`` each accept a *directory* (shared-filesystem
transport) or an ``http://host:port`` broker URL (see
:mod:`repro.campaign.dist.server`); any number of workers may point at the
same queue and cache — a fleet sharing nothing but a broker URL
(``--queue http://b:8123 --cache http://b:8123``) deduplicates exactly
like one sharing a filesystem.  Each loop iteration scavenges expired
leases, claims the highest-priority ticket (against a current broker the
whole claim scan runs server-side as one ``POST /claim`` round trip; the
queue falls back to the client-side scan for directory queues and older
brokers), probes the shared result
cache (:func:`~repro.campaign.cache.open_cache`) *before* running
(another worker may have computed the job already — results are
content-derived, so serving the cached record is exact), executes via
:func:`~repro.campaign.jobs.execute_job` while a daemon thread heartbeats
the lease, stores the fresh result back into the cache, and settles the
claim.  Workload exceptions settle as completed-with-error results (the
same contract as the in-process executors); only infrastructure failures —
the job could not be run at all — consume a retry attempt.

A *transient* transport failure mid-loop (a broker restarting, one
dropped request, a sharded fleet's partition window) does **not** kill
the worker: the loop retries with bounded, jittered backoff until the
outage has lasted ``--max-outage`` seconds (default 30; ``0`` fails
fast), mirroring the per-beat tolerance of the lease-heartbeat thread.
A settle interrupted by such a failure is retried in place (the settle
batch is conditional, so replaying it is safe) rather than abandoning
the executed result to a lease expiry.  A *cache* transport that dies
mid-run only degrades deduplication — probes/stores are skipped with a
``cache-degraded`` event and the job executes anyway — while an
unreachable cache at startup is a config error (exit 3, probed once).
Only a *sustained* queue outage — or an unreachable store at startup —
surfaces as exit code 3.

Exit codes (documented in ``docs/distributed.md``): **0** — clean exit
(drained, idle timeout, or job budget reached); **2** — bad command line
(argparse); **3** — the queue or cache transport is unreachable for
longer than the outage budget (broker down, unwritable directory),
reported as a one-line message rather than a traceback.

Workers with custom (non-built-in) cases set ``REPRO_CASE_PROVIDERS`` to a
colon-separated list of modules to import before execution (see
:mod:`repro.campaign.jobs`).
"""

from __future__ import annotations

import argparse
import os
import random
import socket
import sys
import threading
import time
from typing import Optional, Tuple

from repro.campaign.cache import TransportResultCache, open_cache
from repro.campaign.dist.queue import WorkItem, WorkQueue
from repro.campaign.dist.transport import TransportError, transport_from_address
from repro.campaign.jobs import (
    JobResult,
    execute_job,
    result_from_record_or_none,
)
from repro.campaign.obs import StructLogger, get_registry

#: Exit code for an unreachable queue transport (see module docstring).
EXIT_TRANSPORT_ERROR = 3


class WorkerCrash(Exception):
    """Injected crash for in-process (thread-fleet) workers.

    Raised by the ``crash_after_claims`` test hook under
    ``crash_mode="abandon"``: the worker abandons its claim without
    settling it — the thread-fleet analogue of a process hard-exit — and
    the dangling lease must expire and requeue, exactly like a real crash.
    """


class _LeaseHeartbeat(threading.Thread):
    """Daemon thread renewing a claim's lease while the job executes.

    Each renewal carries the worker's metrics snapshot (when a provider
    is given) into the claim document, so the orchestrator's autoscale
    tick sees per-worker throughput through the queue itself — see
    :meth:`~repro.campaign.dist.queue.WorkQueue.worker_metrics`.

    A transient :class:`TransportError` (or ``OSError``) during a renewal
    must never escape this thread or kill the work loop: the beat is
    logged, counted (``worker_heartbeat_errors_total``), and retried on
    the next tick — renewals fire at lease/4, so one lost beat leaves
    the lease comfortably live, and a *persistently* dead transport
    surfaces through the executing job's settle path with a clean exit
    code instead of an unraisable thread exception.
    """

    def __init__(self, queue: WorkQueue, item: WorkItem,
                 metrics=None, log: Optional[StructLogger] = None):
        super().__init__(daemon=True, name=f"heartbeat-{item.key}")
        self._queue = queue
        self._item = item
        self._metrics = metrics
        self._log = log
        # NB: named _halt because threading.Thread reserves _stop internally.
        self._halt = threading.Event()
        #: Renew well inside the lease so one missed beat is survivable.
        self.interval = max(0.05, queue.lease_seconds / 4.0)
        #: Renewals that failed on a transport error (telemetry + tests).
        self.errors = 0

    def run(self) -> None:
        """Renew until :meth:`stop`; transient transport errors are retried
        on the next beat rather than surfaced (the settle path reports)."""
        while not self._halt.wait(self.interval):
            try:
                snapshot = self._metrics() if self._metrics else None
                self._queue.heartbeat(self._item, metrics=snapshot)
            except (OSError, TransportError) as exc:
                self.errors += 1
                get_registry().counter(
                    "worker_heartbeat_errors_total").inc()
                if self._log is not None:
                    self._log.event("heartbeat-error", key=self._item.key,
                                    error=f"{type(exc).__name__}: {exc}")

    def stop(self) -> None:
        """Stop renewing and join the thread (bounded wait)."""
        self._halt.set()
        self.join(timeout=2.0)


class Worker:
    """One worker's claim-execute-settle loop (process- or thread-hosted).

    Parameters
    ----------
    exit_when_drained:
        Stop as soon as the queue has no pending *and* no claimed work —
        how executor-spawned fleets shut down.  A standing worker (the
        default) keeps polling for new jobs forever, bounded by
        ``idle_timeout`` / ``max_jobs`` when given.
    idle_timeout:
        Exit after this many consecutive seconds without a claimable job.
        Autoscaled fleets use this as their scale-*down* path: surplus
        workers starve and exit; nothing ever preempts a running job.
    max_outage:
        Transient-failure budget: a :class:`TransportError` (or
        ``OSError``) in the claim/settle loop is retried with bounded
        jittered backoff until the outage has lasted this many
        consecutive seconds, then re-raised (the CLI maps it to exit
        code 3).  ``0`` fails fast on the first error; ``None`` retries
        forever.  Any successful operation resets the budget.
    crash_after_claims:
        Test hook: simulate a worker crash immediately after the N-th
        successful claim, *before* settling it, leaving a dangling lease.
    crash_mode:
        How the injected crash manifests: ``"exit"`` hard-exits the
        process (``os._exit``, for spawned worker processes);
        ``"abandon"`` raises :class:`WorkerCrash` (for thread-hosted
        workers, where ``os._exit`` would take the whole fleet down).
    """

    def __init__(self, queue: WorkQueue,
                 cache: Optional[TransportResultCache] = None,
                 worker_id: Optional[str] = None,
                 poll_interval: float = 0.2,
                 idle_timeout: Optional[float] = None,
                 max_jobs: Optional[int] = None,
                 exit_when_drained: bool = False,
                 deadline: Optional[float] = None,
                 max_outage: Optional[float] = 30.0,
                 crash_after_claims: Optional[int] = None,
                 crash_mode: str = "exit",
                 log=None):
        if crash_mode not in ("exit", "abandon"):
            raise ValueError("crash_mode must be 'exit' or 'abandon'")
        self.queue = queue
        self.cache = cache
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_interval = poll_interval
        self.idle_timeout = idle_timeout
        self.max_jobs = max_jobs
        self.exit_when_drained = exit_when_drained
        #: ``time.monotonic()`` value after which no *new* claim is made
        #: (a job already executing runs to completion — claims are not
        #: preemptible, exactly like SerialExecutor).
        self.deadline = deadline
        self.max_outage = max_outage
        self.crash_after_claims = crash_after_claims
        self.crash_mode = crash_mode
        self._log = log or (lambda _line: None)
        # Structured stderr events for the paths a line logger cannot
        # reach (heartbeat-thread errors); quiet by design otherwise.
        self._events = StructLogger("worker")
        self.processed = 0
        self.cache_served = 0
        self.claims = 0
        self.started_at = time.time()

    def metrics_snapshot(self) -> dict:
        """This worker's throughput counters as a JSON-safe dict.

        Rides every heartbeat renewal into the claim document (see
        :meth:`~repro.campaign.dist.queue.WorkQueue.heartbeat`), where
        :meth:`~repro.campaign.dist.queue.WorkQueue.worker_metrics` —
        and through it the executor's autoscale tick — reads per-worker
        throughput with no side channel.  ``at`` stamps the snapshot so
        readers can prefer the freshest one.
        """
        now = time.time()
        uptime = max(1e-9, now - self.started_at)
        return {
            "at": now,
            "worker": self.worker_id,
            "uptime_seconds": uptime,
            "processed": self.processed,
            "cache_served": self.cache_served,
            "claims": self.claims,
            "jobs_per_second": self.processed / uptime,
        }

    def run(self) -> int:
        """Process jobs until a stop condition holds; returns jobs settled.

        Transient :class:`TransportError` / ``OSError`` anywhere in the
        scavenge-claim-settle loop is absorbed with bounded jittered
        backoff (see ``max_outage``) — a worker must ride out a broker
        restart or a sharded fleet's partition window rather than dying
        on the first dropped request.  A job whose settle was interrupted
        is *safe either way*: its lease expires and the ticket requeues,
        and the result cache deduplicates any re-execution.

        Raises
        ------
        TransportError:
            The queue's backing store stayed unreachable past the
            ``max_outage`` budget.  The CLI maps this to exit code 3.
        WorkerCrash:
            Only under the ``crash_mode="abandon"`` test hook.
        """
        idle_since: Optional[float] = None
        next_scavenge = 0.0
        outage_since: Optional[float] = None
        outage_retries = 0
        while True:
            if self.max_jobs is not None and self.processed >= self.max_jobs:
                break
            if (self.deadline is not None
                    and time.monotonic() >= self.deadline):
                break
            try:
                # Scavenging scans every claim document; leases cannot
                # expire faster than lease_seconds, so once per half-lease
                # per worker gives identical recovery latency at a
                # fraction of the (possibly NFS or HTTP) metadata traffic.
                now = time.monotonic()
                if now >= next_scavenge:
                    self.queue.requeue_expired()
                    next_scavenge = now + self.queue.lease_seconds / 2.0
                item = self.queue.claim(self.worker_id)
                if (item is None and self.exit_when_drained
                        and self.queue.drained()):
                    break
            except (OSError, TransportError) as exc:
                outage_since, outage_retries = self._outage_pause(
                    exc, outage_since, outage_retries)
                continue
            if outage_since is not None:
                self._events.event(
                    "transport-recovered", retries=outage_retries,
                    outage_seconds=round(time.monotonic() - outage_since, 3))
                outage_since, outage_retries = None, 0
            if item is None:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if (self.idle_timeout is not None
                        and now - idle_since >= self.idle_timeout):
                    break
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            self.claims += 1
            if (self.crash_after_claims is not None
                    and self.claims >= self.crash_after_claims):
                self._log(f"{self.worker_id}: injected crash after claim "
                          f"#{self.claims} ({item.key})")
                if self.crash_mode == "exit":
                    os._exit(42)
                raise WorkerCrash(f"abandoned {item.key} after claim "
                                  f"#{self.claims}")
            try:
                self._run_item(item)
            except (OSError, TransportError) as exc:
                # The cache probe/store failed, or the settle's own retry
                # budget ran out — the claim is either already settled (a
                # torn write) or will expire and requeue, and the cache
                # dedups a re-execution.  Either way the job is not lost,
                # so ride out the outage.
                outage_since, outage_retries = self._outage_pause(
                    exc, outage_since, outage_retries)
                continue
            self.processed += 1
        return self.processed

    def _outage_pause(self, exc: BaseException,
                      outage_since: Optional[float],
                      retries: int) -> Tuple[float, int]:
        """Sleep out one transient transport failure, or give up.

        Re-raises the active exception once the outage has lasted
        ``max_outage`` consecutive seconds; otherwise sleeps a
        full-jitter exponential delay (capped at 2s and at the remaining
        budget — the same idiom as ``HttpTransport``'s retry backoff)
        and returns the updated ``(outage_since, retries)``.
        """
        now = time.monotonic()
        started = now if outage_since is None else outage_since
        elapsed = now - started
        if self.max_outage is not None and elapsed >= self.max_outage:
            raise
        base = max(0.05, self.poll_interval)
        ceiling = min(max(base, 2.0), base * (2 ** min(retries, 6)))
        delay = random.uniform(0.0, ceiling)
        if self.max_outage is not None:
            delay = min(delay, max(0.0, self.max_outage - elapsed))
        get_registry().counter(
            "worker_transport_retries_total",
            "transient transport errors absorbed by the worker loop").inc()
        self._events.event(
            "transport-retry", error=f"{type(exc).__name__}: {exc}",
            elapsed=round(elapsed, 3), delay=round(delay, 3),
            budget=self.max_outage)
        time.sleep(delay)
        return started, retries + 1

    def _complete(self, item: WorkItem, result: JobResult,
                  timing: Optional[dict] = None) -> None:
        """Settle a claim, retrying transient transport errors in place.

        An executed result is the expensive half of the loop — abandoning
        it to one dropped settle reply forces a full re-execution after
        the lease expires.  The settle batch is conditional end to end
        (content-derived result overwrite, create-only done marker,
        etag-guarded claim delete), so replaying it is safe: an
        already-applied settle is a no-op, a lost one is applied.  The
        retry shares the same ``max_outage`` budget/backoff idiom as the
        outer loop and re-raises once it is exhausted.
        """
        outage_since: Optional[float] = None
        retries = 0
        while True:
            try:
                self.queue.complete(item, result, timing=timing)
                return
            except (OSError, TransportError) as exc:
                outage_since, retries = self._outage_pause(
                    exc, outage_since, retries)

    # -- one claim ---------------------------------------------------------
    def _timing(self, item: WorkItem, **stamps: float) -> dict:
        """The per-job timing document settled into the result record.

        Unix-second stamps for the queue-wait → run → store trace spans
        (:func:`repro.campaign.obs.spans.spans_from_result_records`);
        ``None`` stamps — records enqueued by pre-telemetry orchestrators
        — are simply omitted, and the affected span is skipped.
        """
        timing = {"enqueued_at": item.enqueued_at,
                  "claimed_at": item.claimed_at}
        timing.update(stamps)
        return {key: float(value) for key, value in timing.items()
                if value is not None}

    def _cache_get(self, job) -> Optional[JobResult]:
        """Probe the shared cache, degrading to a miss on a dead cache.

        The cache is a *dedup optimization* — results are content-derived,
        so executing without it is always correct.  Letting a cache-broker
        outage abort the claim would be strictly worse: each abort burns a
        lease cycle and a retry attempt until the job dead-letters.  (An
        unreachable cache at *startup* is still a config error: the CLI
        probes it once and exits 3.)
        """
        try:
            return result_from_record_or_none(self.cache.get(job),
                                              cached=True)
        except (OSError, TransportError) as exc:
            self._cache_degraded(exc, "probe")
            return None

    def _cache_put(self, job, record: dict) -> None:
        """Store into the shared cache; a dead cache only costs dedup."""
        try:
            self.cache.put(job, record)
        except (OSError, TransportError) as exc:
            self._cache_degraded(exc, "store")

    def _cache_degraded(self, exc: BaseException, op: str) -> None:
        get_registry().counter(
            "worker_cache_degraded_total",
            "cache probes/stores skipped because the cache transport "
            "was unreachable").inc(op=op)
        self._events.event("cache-degraded", op=op,
                           error=f"{type(exc).__name__}: {exc}")

    def _run_item(self, item: WorkItem) -> JobResult:
        job = item.job
        if self.cache is not None:
            result = self._cache_get(job)
            if result is not None:
                now = time.time()
                self._complete(item, result, timing=self._timing(
                    item, started_at=now, finished_at=now,
                    stored_at=time.time()))
                self.cache_served += 1
                self._log(f"{self.worker_id}: {item.key} served from cache")
                return result

        heartbeat = _LeaseHeartbeat(self.queue, item,
                                    metrics=self.metrics_snapshot,
                                    log=self._events)
        heartbeat.start()
        started_at = time.time()
        try:
            try:
                result = execute_job(job)
            finally:
                # Always stopped before any settle/cache write: a failure
                # below must not leak a daemon renewing the lease forever
                # (which would make the job unrequeueable).
                heartbeat.stop()
        except Exception as exc:  # noqa: BLE001 - infrastructure failure
            # execute_job captures *workload* exceptions itself; reaching
            # here means the job could not run at all (unknown case, broken
            # provider import, ...) — consume a retry attempt.
            outcome = self.queue.fail(
                item, f"{type(exc).__name__}: {exc}")
            self._log(f"{self.worker_id}: {item.key} failed to start "
                      f"({outcome}): {exc}")
            return JobResult(job_id=job.job_id, case=job.case,
                             params=job.params, seed=job.seed,
                             error=f"{type(exc).__name__}: {exc}")
        finished_at = time.time()
        if self.cache is not None and result.ok:
            self._cache_put(job, {"result": result.to_record()})
        self._complete(item, result, timing=self._timing(
            item, started_at=started_at, finished_at=finished_at,
            stored_at=time.time()))
        status = "ok" if result.ok else f"error: {result.error}"
        self._log(f"{self.worker_id}: {item.key} done in "
                  f"{result.wall_time:.2f}s ({status})")
        return result


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.dist.worker",
        description="Claim and execute campaign jobs from a durable work "
                    "queue (a shared directory or an HTTP broker).",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "environment:\n"
            "  REPRO_CASE_PROVIDERS   colon-separated modules imported "
            "before execution,\n"
            "                         so workers can run cases registered "
            "outside repro.workloads\n"
            "                         (e.g. REPRO_CASE_PROVIDERS=my.cases "
            "registers @register_case\n"
            "                         decorators in my/cases.py)\n"
            "\n"
            "caveats:\n"
            "  The result cache's hits/misses counters are per-process: "
            "each worker\n"
            "  counts only the probes it made itself, whichever transport "
            "backs the\n"
            "  cache.  For per-campaign accounting read "
            "CampaignResult.meta['cache']\n"
            "  on the orchestrator side (docs/distributed.md).\n"
            "\n"
            "exit codes:\n"
            "  0  clean exit (queue drained, idle timeout, or --max-jobs "
            "reached)\n"
            "  2  bad command line\n"
            "  3  queue or cache transport unreachable at startup, or "
            "unreachable\n"
            "     mid-loop for longer than --max-outage seconds\n"))
    parser.add_argument("--queue", required=True,
                        help="work-queue directory or broker URL "
                             "(http://host:port), as created by the "
                             "orchestrator / DistributedExecutor / "
                             "python -m repro.campaign.dist.server")
    parser.add_argument("--cache", default=None,
                        help="shared result cache for cross-worker "
                             "deduplication: a directory or a broker URL "
                             "(http://host:port) — fleets without any "
                             "shared filesystem deduplicate through the "
                             "broker")
    parser.add_argument("--worker-id", default=None,
                        help="stable identity recorded in leases/results "
                             "(default: <hostname>-<pid>)")
    parser.add_argument("--poll-interval", type=float, default=0.2,
                        help="seconds between claim attempts when idle")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="exit after this many consecutive idle seconds "
                             "(autoscaled fleets use this to shrink)")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="exit after settling this many jobs")
    parser.add_argument("--exit-when-drained", action="store_true",
                        help="exit once the queue has no pending or claimed "
                             "work (fleet mode)")
    parser.add_argument("--transport-retries", type=int, default=5,
                        help="connection retries before giving up on an "
                             "unreachable broker (exit code 3)")
    parser.add_argument("--max-outage", type=float, default=30.0,
                        help="keep retrying transient transport errors "
                             "mid-loop with jittered backoff until the "
                             "outage has lasted this many seconds, then "
                             "exit 3 (default: 30; 0 fails fast on the "
                             "first error)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    # Test hook: simulate a worker crash (hard exit) mid-job.
    parser.add_argument("--crash-after-claims", type=int, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    # Per-job progress is *diagnostics*, not program output: it goes to
    # stderr through the structured logger (one "[worker] progress ..."
    # line per event), leaving stdout clean for whatever wraps the CLI.
    events = StructLogger("worker", enabled=not args.quiet)
    log = (lambda _line: None) if args.quiet else (
        lambda line: events.event("progress", detail=line))
    queue = cache = None
    try:
        queue = WorkQueue(transport=transport_from_address(
            args.queue, retries=args.transport_retries))
        cache = (open_cache(args.cache, retries=args.transport_retries)
                 if args.cache else None)
        if cache is not None:
            # Probe the cache once up front: pointing a fleet at a dead
            # cache broker is a config error and fails fast (exit 3),
            # while a cache that dies *mid-run* merely degrades dedup
            # (see Worker._cache_get/_cache_put).
            probe = getattr(cache, "transport", None)
            if probe is not None:
                probe.list_page("", 1)
        worker = Worker(queue, cache=cache, worker_id=args.worker_id,
                        poll_interval=args.poll_interval,
                        idle_timeout=args.idle_timeout,
                        max_jobs=args.max_jobs,
                        exit_when_drained=args.exit_when_drained,
                        max_outage=args.max_outage,
                        crash_after_claims=args.crash_after_claims,
                        log=log)
        processed = worker.run()
    except TransportError as exc:
        # One clean line blaming the store that actually failed.  The
        # exception carries the failing transport's own address, compared
        # *exactly* against the constructed transports' addresses (never
        # substring-matched — nested paths would misblame).  A sharded
        # store's address is a comma-joined URL list while the error
        # names the one failing shard, so membership in the split list
        # is the exact comparison.  The queue is the default: it is
        # built first, so with the queue up the only other store a
        # TransportError can name is the cache — whether the cache was
        # still being opened or already serving probes.
        def _addresses(address):
            return set(str(address).split(",")) if address else set()

        where = f"queue {args.queue!r}"
        failed = getattr(exc, "address", None)
        if (args.cache and queue is not None
                and failed is not None
                and failed not in _addresses(queue.address)
                and (cache is None
                     or failed in _addresses(cache.address))):
            where = f"cache {args.cache!r}"
        print(f"worker: cannot reach {where}: {exc}",
              file=sys.stderr, flush=True)
        return EXIT_TRANSPORT_ERROR
    log(f"{worker.worker_id}: exiting after {processed} jobs "
        f"({worker.cache_served} cache-served); queue now {queue!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
