"""The distributed-campaign worker: claim, deduplicate, execute, heartbeat.

Runnable as a module::

    python -m repro.campaign.dist.worker --queue DIR [--cache DIR] \
        [--worker-id ID] [--exit-when-drained] [--max-jobs N] \
        [--idle-timeout SECONDS]

Any number of workers may point at the same queue directory (and, via a
shared filesystem, the same cache).  Each loop iteration scavenges expired
leases, claims the highest-priority ticket, probes the shared
:class:`~repro.campaign.cache.ResultCache` *before* running (another worker
may have computed the job already — results are content-derived, so serving
the cached record is exact), executes via
:func:`~repro.campaign.jobs.execute_job` while a daemon thread heartbeats
the lease, stores the fresh result back into the cache, and settles the
claim.  Workload exceptions settle as completed-with-error results (the
same contract as the in-process executors); only infrastructure failures —
the job could not be run at all — consume a retry attempt.

Workers with custom (non-built-in) cases set ``REPRO_CASE_PROVIDERS`` to a
colon-separated list of modules to import before execution (see
:mod:`repro.campaign.jobs`).
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from typing import Optional

from repro.campaign.cache import ResultCache
from repro.campaign.dist.queue import WorkItem, WorkQueue
from repro.campaign.jobs import (
    JobResult,
    execute_job,
    result_from_record_or_none,
)


class _LeaseHeartbeat(threading.Thread):
    """Daemon thread renewing a claim's lease while the job executes."""

    def __init__(self, queue: WorkQueue, item: WorkItem):
        super().__init__(daemon=True, name=f"heartbeat-{item.key}")
        self._queue = queue
        self._item = item
        # NB: named _halt because threading.Thread reserves _stop internally.
        self._halt = threading.Event()
        #: Renew well inside the lease so one missed beat is survivable.
        self.interval = max(0.05, queue.lease_seconds / 4.0)

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                self._queue.heartbeat(self._item)
            except OSError:  # pragma: no cover - transient filesystem error
                pass

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)


class Worker:
    """One worker process's claim-execute-settle loop.

    Parameters
    ----------
    exit_when_drained:
        Stop as soon as the queue has no pending *and* no claimed work —
        how executor-spawned fleets shut down.  A standing worker (the
        default) keeps polling for new jobs forever, bounded by
        ``idle_timeout`` / ``max_jobs`` when given.
    crash_after_claims:
        Test hook: hard-exit the process (``os._exit``) immediately after
        the N-th successful claim, *before* settling it — simulating a
        worker crash mid-job with a dangling lease.
    """

    def __init__(self, queue: WorkQueue,
                 cache: Optional[ResultCache] = None,
                 worker_id: Optional[str] = None,
                 poll_interval: float = 0.2,
                 idle_timeout: Optional[float] = None,
                 max_jobs: Optional[int] = None,
                 exit_when_drained: bool = False,
                 deadline: Optional[float] = None,
                 crash_after_claims: Optional[int] = None,
                 log=None):
        self.queue = queue
        self.cache = cache
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_interval = poll_interval
        self.idle_timeout = idle_timeout
        self.max_jobs = max_jobs
        self.exit_when_drained = exit_when_drained
        #: ``time.monotonic()`` value after which no *new* claim is made
        #: (a job already executing runs to completion — claims are not
        #: preemptible, exactly like SerialExecutor).
        self.deadline = deadline
        self.crash_after_claims = crash_after_claims
        self._log = log or (lambda _line: None)
        self.processed = 0
        self.cache_served = 0
        self.claims = 0

    def run(self) -> int:
        """Process jobs until a stop condition holds; returns jobs settled."""
        idle_since: Optional[float] = None
        next_scavenge = 0.0
        while True:
            if self.max_jobs is not None and self.processed >= self.max_jobs:
                break
            if (self.deadline is not None
                    and time.monotonic() >= self.deadline):
                break
            # Scavenging scans every claimed ticket's lease; leases cannot
            # expire faster than lease_seconds, so once per half-lease per
            # worker gives identical recovery latency at a fraction of the
            # (possibly NFS) metadata traffic.
            now = time.monotonic()
            if now >= next_scavenge:
                self.queue.requeue_expired()
                next_scavenge = now + self.queue.lease_seconds / 2.0
            item = self.queue.claim(self.worker_id)
            if item is None:
                if self.exit_when_drained and self.queue.drained():
                    break
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if (self.idle_timeout is not None
                        and now - idle_since >= self.idle_timeout):
                    break
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            self.claims += 1
            if (self.crash_after_claims is not None
                    and self.claims >= self.crash_after_claims):
                self._log(f"{self.worker_id}: injected crash after claim "
                          f"#{self.claims} ({item.key})")
                os._exit(42)
            self._run_item(item)
            self.processed += 1
        return self.processed

    # -- one claim ---------------------------------------------------------
    def _run_item(self, item: WorkItem) -> JobResult:
        job = item.job
        if self.cache is not None:
            result = result_from_record_or_none(self.cache.get(job),
                                                cached=True)
            if result is not None:
                self.queue.complete(item, result)
                self.cache_served += 1
                self._log(f"{self.worker_id}: {item.key} served from cache")
                return result

        heartbeat = _LeaseHeartbeat(self.queue, item)
        heartbeat.start()
        try:
            try:
                result = execute_job(job)
            finally:
                # Always stopped before any settle/cache write: a failure
                # below must not leak a daemon renewing the lease forever
                # (which would make the job unrequeueable).
                heartbeat.stop()
        except Exception as exc:  # noqa: BLE001 - infrastructure failure
            # execute_job captures *workload* exceptions itself; reaching
            # here means the job could not run at all (unknown case, broken
            # provider import, ...) — consume a retry attempt.
            outcome = self.queue.fail(
                item, f"{type(exc).__name__}: {exc}")
            self._log(f"{self.worker_id}: {item.key} failed to start "
                      f"({outcome}): {exc}")
            return JobResult(job_id=job.job_id, case=job.case,
                             params=job.params, seed=job.seed,
                             error=f"{type(exc).__name__}: {exc}")
        if self.cache is not None and result.ok:
            self.cache.put(job, {"result": result.to_record()})
        self.queue.complete(item, result)
        status = "ok" if result.ok else f"error: {result.error}"
        self._log(f"{self.worker_id}: {item.key} done in "
                  f"{result.wall_time:.2f}s ({status})")
        return result


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.dist.worker",
        description="Claim and execute campaign jobs from a durable work "
                    "queue directory.")
    parser.add_argument("--queue", required=True,
                        help="work-queue directory (created by the "
                             "orchestrator / DistributedExecutor)")
    parser.add_argument("--cache", default=None,
                        help="shared ResultCache directory for cross-worker "
                             "deduplication")
    parser.add_argument("--worker-id", default=None,
                        help="stable identity recorded in leases/results "
                             "(default: <hostname>-<pid>)")
    parser.add_argument("--poll-interval", type=float, default=0.2,
                        help="seconds between claim attempts when idle")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="exit after this many consecutive idle seconds")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="exit after settling this many jobs")
    parser.add_argument("--exit-when-drained", action="store_true",
                        help="exit once the queue has no pending or claimed "
                             "work (fleet mode)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    # Test hook: simulate a worker crash (hard exit) mid-job.
    parser.add_argument("--crash-after-claims", type=int, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    queue = WorkQueue(args.queue)
    cache = ResultCache(args.cache) if args.cache else None
    log = (lambda _line: None) if args.quiet else (
        lambda line: print(line, flush=True))
    worker = Worker(queue, cache=cache, worker_id=args.worker_id,
                    poll_interval=args.poll_interval,
                    idle_timeout=args.idle_timeout,
                    max_jobs=args.max_jobs,
                    exit_when_drained=args.exit_when_drained,
                    crash_after_claims=args.crash_after_claims,
                    log=log)
    processed = worker.run()
    log(f"{worker.worker_id}: exiting after {processed} jobs "
        f"({worker.cache_served} cache-served); queue now {queue!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
