"""Deterministic fault injection for the transport seam.

:class:`ChaosTransport` wraps any :class:`~repro.campaign.dist.transport.
QueueTransport` and injects faults described by a declarative
:class:`FaultPlan` — per-op-kind error rates, added latency, full
partition windows, and *torn writes* (the operation is applied to the
inner store but the caller is told it failed — the nastiest case for
an exactly-once queue, because every retry path must tolerate its own
successful past).  Faults are drawn from a seeded RNG, so a chaos run
is reproducible: same plan, same op sequence, same faults.

The wrapper implements the *full* transport protocol — point ops, the
batch primitives (``get_many`` / ``put_many`` / ``delete_many`` /
``mutate_many``), ``list_page``, and the optional ``claim_first`` /
``stats`` probes (exposed only when the inner transport has them, so
capability detection by callers keeps working).  It composes under
:class:`~repro.campaign.dist.sharding.ShardedTransport`, which is the
point: wrap one shard of a fleet and the router's circuit breakers,
degraded reads and claim failover can be exercised without killing a
real broker.

``ChaosTransport.address`` is always ``None``: the faults live in *this
process*, so handing the inner store's address to a freshly spawned
worker process would silently route it around the chaos.  Fleets under
chaos are therefore thread fleets — exactly what
:class:`~repro.campaign.dist.executor.DistributedExecutor` spawns for
an address-less queue.

>>> from repro.campaign.dist.transport import MemoryTransport
>>> store = MemoryTransport()
>>> chaos = ChaosTransport(store, FaultPlan(seed=7).fail_next(1, "put"))
>>> chaos.put("k", b"v")  # doctest: +IGNORE_EXCEPTION_DETAIL
Traceback (most recent call last):
TransportError: chaos: injected put fault
>>> tag = chaos.put("k", b"v")  # the one-shot fault is spent
>>> chaos.get("k") == (b"v", tag)
True
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.dist.transport import QueueTransport, TransportError
from repro.campaign.obs import MetricsRegistry, get_registry

#: Every op kind a :class:`FaultPlan` can target.  ``"*"`` matches all.
OP_KINDS = ("get", "put", "cas", "delete", "list", "get_many", "put_many",
            "delete_many", "mutate_many", "list_page", "claim_first")

#: Ops that write: only these can tear (apply-then-report-failure).
#: ``claim_first`` belongs here — a torn claim leaves a dangling lease
#: the caller does not know it owns, which must expire and requeue.
MUTATING_OPS = frozenset({"put", "cas", "delete", "put_many", "delete_many",
                          "mutate_many", "claim_first"})


class FaultPlan:
    """Declarative, seeded fault schedule for a :class:`ChaosTransport`.

    All configuration methods return ``self`` so plans read as one
    chained expression::

        plan = (FaultPlan(seed=11)
                .error_rate(0.05)                  # 5% of every op
                .torn_writes(0.2, "mutate_many")   # torn settles
                .add_latency(0.002, "get")
                .fail_between(t0, t1))             # full partition window

    Decisions are drawn from ``random.Random(seed)`` in op order (one
    draw per op), so a single-threaded op sequence faults identically
    across runs.  Partition windows and one-shot ``fail_next`` faults
    are deterministic regardless of the RNG — a partitioned store fails
    *every* op whose clock falls in a window.  ``clock`` is injectable
    (``time.monotonic``-like) so window tests never sleep.
    """

    def __init__(self, seed: int = 0, clock=time.monotonic):
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._clock = clock
        self._lock = threading.Lock()
        self._error_rates: Dict[str, float] = {}
        self._torn_rates: Dict[str, float] = {}
        self._latency: Dict[str, float] = {}
        self._one_shot: Dict[str, int] = {}
        self._windows: List[Tuple[float, float]] = []

    # -- configuration (chainable) ----------------------------------------
    def error_rate(self, rate: float, op: str = "*") -> "FaultPlan":
        """Fail this fraction of ``op`` calls (before they reach the
        store)."""
        self._error_rates[op] = max(0.0, min(1.0, float(rate)))
        return self

    def torn_writes(self, rate: float, op: str = "*") -> "FaultPlan":
        """Tear this fraction of mutating ``op`` calls: the operation is
        applied, then reported as failed."""
        self._torn_rates[op] = max(0.0, min(1.0, float(rate)))
        return self

    def add_latency(self, seconds: float, op: str = "*") -> "FaultPlan":
        """Sleep this long before every ``op`` call."""
        self._latency[op] = max(0.0, float(seconds))
        return self

    def fail_next(self, count: int = 1, op: str = "*") -> "FaultPlan":
        """Deterministically fail the next ``count`` calls of ``op`` —
        the drop-one-request regression harness."""
        self._one_shot[op] = self._one_shot.get(op, 0) + max(0, int(count))
        return self

    def fail_between(self, start: float, stop: float) -> "FaultPlan":
        """Full partition window: every op with ``start <= clock() <
        stop`` fails.  Windows stack."""
        self._windows.append((float(start), float(stop)))
        return self

    # -- decisions (used by ChaosTransport) -------------------------------
    def _rate(self, table: Dict[str, float], op: str) -> float:
        return table.get(op, table.get("*", 0.0))

    def latency_for(self, op: str) -> float:
        """Configured added latency for ``op`` (seconds)."""
        return self._rate(self._latency, op)

    def partitioned(self, now: Optional[float] = None) -> bool:
        """Is the plan's clock currently inside a partition window?"""
        now = self._clock() if now is None else now
        return any(start <= now < stop for start, stop in self._windows)

    def decide(self, op: str, mutating: bool = False) -> Optional[str]:
        """Verdict for one call of ``op``: ``None`` (proceed),
        ``"error"`` (fail before the store) or ``"torn"`` (apply, then
        report failure).  Partition windows and one-shot faults decide
        without touching the RNG; rate verdicts consume exactly one
        draw, so fault sequences are a pure function of
        (seed, op sequence)."""
        with self._lock:
            if self.partitioned():
                return "error"
            for scope in (op, "*"):
                if self._one_shot.get(scope, 0) > 0:
                    self._one_shot[scope] -= 1
                    return "error"
            draw = self._rng.random()
            error = self._rate(self._error_rates, op)
            if draw < error:
                return "error"
            if mutating and draw < error + self._rate(self._torn_rates, op):
                return "torn"
            return None


class ChaosTransport(QueueTransport):
    """A transport that lies, drops and stalls on a schedule; see module
    docs.  ``inner`` is the real store; ``plan`` the fault schedule.

    Injected failures are raised as plain
    :class:`~repro.campaign.dist.transport.TransportError` carrying the
    *inner* store's address — indistinguishable from real outages, which
    is the contract every resilience layer above is tested against.
    Faults are counted in the obs registry (``chaos_faults_total``, by
    op and kind) so a chaos run's injection volume is auditable.
    """

    #: Never the inner address: a spawned process would bypass the chaos.
    address = None

    def __init__(self, inner: QueueTransport,
                 plan: Optional[FaultPlan] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        registry = registry if registry is not None else get_registry()
        self._faults = registry.counter(
            "chaos_faults_total", "faults injected by ChaosTransport, "
            "by op and kind (error/torn)")
        # Capability mirroring: callers probe `callable(t.claim_first)` /
        # `callable(t.stats)` — a wrapper must not advertise endpoints
        # its inner store lacks.  Instance attributes shadow the class
        # methods.
        if not callable(getattr(inner, "claim_first", None)):
            self.claim_first = None  # type: ignore[assignment]
        if not callable(getattr(inner, "stats", None)):
            self.stats = None  # type: ignore[assignment]

    # -- fault funnel ------------------------------------------------------
    def _apply(self, op: str, call):
        delay = self.plan.latency_for(op)
        if delay > 0.0:
            time.sleep(delay)
        mutating = op in MUTATING_OPS
        verdict = self.plan.decide(op, mutating=mutating)
        address = getattr(self.inner, "address", None)
        if verdict == "error":
            self._faults.inc(op=op, kind="error")
            raise TransportError(f"chaos: injected {op} fault",
                                 address=address)
        result = call()
        if verdict == "torn":
            self._faults.inc(op=op, kind="torn")
            raise TransportError(
                f"chaos: torn {op} (applied, then the reply was dropped)",
                address=address)
        return result

    # -- point ops ---------------------------------------------------------
    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        return self._apply("get", lambda: self.inner.get(key))

    def put(self, key: str, data: bytes) -> str:
        return self._apply("put", lambda: self.inner.put(key, data))

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        return self._apply(
            "cas", lambda: self.inner.cas(key, data, if_match=if_match))

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        return self._apply(
            "delete", lambda: self.inner.delete(key, if_match=if_match))

    def list(self, prefix: str) -> List[str]:
        return self._apply("list", lambda: self.inner.list(prefix))

    # -- batch / pagination ------------------------------------------------
    def get_many(self, keys: Sequence[str]
                 ) -> List[Optional[Tuple[bytes, str]]]:
        return self._apply("get_many", lambda: self.inner.get_many(keys))

    def put_many(self, items: Sequence[Tuple[str, bytes, Optional[str]]]
                 ) -> List[Optional[str]]:
        return self._apply("put_many", lambda: self.inner.put_many(items))

    def delete_many(self, items: Sequence[Tuple[str, Optional[str]]]
                    ) -> List[bool]:
        return self._apply(
            "delete_many", lambda: self.inner.delete_many(items))

    def mutate_many(self, ops: Sequence[Tuple]) -> List[object]:
        return self._apply("mutate_many", lambda: self.inner.mutate_many(ops))

    def list_page(self, prefix: str, max_keys: int,
                  start_after: str = "") -> Tuple[List[str], Optional[str]]:
        return self._apply(
            "list_page", lambda: self.inner.list_page(
                prefix, max_keys, start_after=start_after))

    # -- optional endpoints (shadowed to None when the inner lacks them) ---
    def claim_first(self, prefix: str = "pending/", worker: str = "",
                    now: Optional[float] = None,
                    lease_seconds: Optional[float] = None) -> Optional[dict]:
        return self._apply(
            "claim_first", lambda: self.inner.claim_first(
                prefix=prefix, worker=worker, now=now,
                lease_seconds=lease_seconds))

    def stats(self) -> Optional[dict]:
        """Pass-through, fault-free: chaos targets the data path, and a
        dashboard that cannot see a store *because of the injector* would
        report the wrong failure."""
        return self.inner.stats()

    def close(self) -> None:
        closer = getattr(self.inner, "close", None)
        if callable(closer):
            closer()

    def __repr__(self) -> str:
        return f"ChaosTransport({self.inner!r}, seed={self.plan.seed})"
