"""Per-store circuit breaker: stop hammering a dead shard, probe it back.

A fleet-of-N transport must not let one dead shard consume every
caller's retry budget on every operation.  :class:`CircuitBreaker`
implements the classic three-state machine:

* **closed** — traffic flows; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips: :meth:`allow` answers ``False`` (callers shed the
  operation instantly instead of burning a connect-retry budget) until
  ``cooldown_seconds`` have elapsed.
* **half-open** — once the cooldown elapses, exactly **one** caller is
  admitted as a probe; everyone else keeps being shed until the probe
  resolves.  A successful probe recloses the breaker (failure count
  reset); a failed probe reopens it with a fresh cooldown.

The breaker never retries anything itself and holds no references to
the guarded store — callers ask :meth:`allow`, run the operation, and
report the outcome via :meth:`record_success` / :meth:`record_failure`.
All three methods are thread-safe and O(1); ``clock`` is injectable
(``time.monotonic``-like) so state-machine tests never sleep.

>>> clock = iter([0.0, 0.0, 1.0, 2.0, 5.5]).__next__
>>> breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=5.0,
...                          clock=clock)
>>> breaker.record_failure(), breaker.record_failure()  # t=0: trips
('closed', 'open')
>>> breaker.allow()  # t=1: still cooling down
False
>>> breaker.allow()  # t=2
False
>>> breaker.allow()  # t=5.5: cooldown elapsed -> one probe admitted
True
>>> breaker.allow()  # probe unresolved -> everyone else shed
False
>>> breaker.record_success()
'closed'
"""

from __future__ import annotations

import threading
import time

#: State names, also the values of :attr:`CircuitBreaker.state` (and what
#: the ``shard_breaker_state`` gauge encodes via :func:`state_code`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding for dashboards: higher is worse.
_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


def state_code(state: str) -> int:
    """Numeric encoding of a breaker state for gauges (0/1/2 =
    closed/half-open/open)."""
    return _STATE_CODES.get(state, 2)


class CircuitBreaker:
    """Three-state (closed/open/half-open) breaker; see module docs.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (with no success in between) that trip a
        *closed* breaker open.  Clamped to >= 1.
    cooldown_seconds:
        How long an open breaker sheds before admitting one half-open
        probe.
    clock:
        Monotonic-seconds source; injectable for tests.
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown_seconds: float = 5.0,
                 clock=time.monotonic):
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: float = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """Current state name (``closed`` / ``open`` / ``half-open``).

        Read-only and side-effect free: an open breaker whose cooldown
        has elapsed still reports ``open`` until a caller's
        :meth:`allow` actually admits the probe.
        """
        with self._lock:
            return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures recorded since the last success."""
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """Should the caller attempt the operation right now?

        Closed: always.  Open: only once ``cooldown_seconds`` have
        elapsed — which transitions to half-open and admits *this*
        caller as the single probe.  Half-open: ``False`` while the
        probe is unresolved.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if (self._clock() - self._opened_at
                        >= self.cooldown_seconds):
                    self._state = HALF_OPEN
                    self._probing = True
                    return True
                return False
            # HALF_OPEN: one probe at a time.
            if not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> str:
        """Report a successful operation; returns the new state.

        Any success recloses the breaker and resets the failure count —
        including a half-open probe's success, which is the recovery
        path.
        """
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probing = False
            return self._state

    def record_failure(self) -> str:
        """Report a failed operation; returns the new state.

        A failed half-open probe reopens immediately with a fresh
        cooldown; a closed breaker trips open once the consecutive
        count reaches ``failure_threshold``.
        """
        with self._lock:
            now = self._clock()
            self._failures += 1
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = now
                self._probing = False
            elif (self._state == CLOSED
                    and self._failures >= self.failure_threshold):
                self._state = OPEN
                self._opened_at = now
            return self._state

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self.failures}, "
                f"threshold={self.failure_threshold}, "
                f"cooldown={self.cooldown_seconds})")
