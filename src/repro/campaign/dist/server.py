"""A stdlib HTTP broker serving the S3-style queue-transport dialect.

Runnable as a module::

    python -m repro.campaign.dist.server --port 8123 [--data-dir DIR] \
        [--host 0.0.0.0] [--verbose]

The broker is the network hop that lets a campaign scale past one shared
filesystem: the orchestrator and any number of workers point
:class:`~repro.campaign.dist.transport.HttpTransport` at it
(``--queue http://host:8123``) and run the exact same queue protocol they
would run over a shared directory.

Design:

* **Storage is a transport.**  The broker fronts a
  :class:`~repro.campaign.dist.transport.MemoryTransport` by default, or a
  :class:`~repro.campaign.dist.transport.FsTransport` under ``--data-dir``
  — in which case the whole queue state survives a broker restart, and
  because ETags are content-derived, *leases held by workers remain valid
  across the restart* (the crash tests pin this down).
* **Mutations serialize under one lock**, so conditional PUT/DELETE
  (``If-Match`` / ``If-None-Match: *``) are atomic even over the
  read-check-write filesystem transport: the single broker process is the
  serialization point, exactly like an object store's CAS.
* **Dialect** (see :class:`~repro.campaign.dist.transport.HttpTransport`):
  ``GET/PUT/DELETE /k/<key>`` with ``ETag``/``If-Match``/``If-None-Match``
  headers, ``GET /list?prefix=<p>`` → ``{"keys": [...]}``, and
  ``GET /healthz`` for liveness probes.

The server is ``ThreadingHTTPServer``-based and stdlib-only.  For tests
and single-process demos, :class:`Broker` runs the same server on a
background thread (``with Broker() as broker: HttpTransport(broker.url)``).
"""

from __future__ import annotations

import argparse
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.campaign.jsonio import json_dumps_bytes
from repro.campaign.dist.transport import (
    FsTransport,
    MemoryTransport,
    QueueTransport,
)


class _BrokerHandler(BaseHTTPRequestHandler):
    """One request against the broker's backing transport.

    The handler class is generated per-server (:func:`make_server`) so the
    backing store and its mutation lock arrive as class attributes —
    ``BaseHTTPRequestHandler`` instantiates per request and cannot take
    constructor arguments.
    """

    store: QueueTransport = None  # type: ignore[assignment]
    lock: threading.Lock = None   # type: ignore[assignment]
    verbose = False

    protocol_version = "HTTP/1.1"
    server_version = "repro-queue-broker/1.0"

    # -- helpers -----------------------------------------------------------
    def _key(self) -> Optional[str]:
        path = urllib.parse.urlparse(self.path).path
        if not path.startswith("/k/"):
            return None
        return urllib.parse.unquote(path[len("/k/"):])

    def _reply(self, status: int, body: bytes = b"",
               etag: Optional[str] = None) -> None:
        self.send_response(status)
        if etag:
            self.send_header("ETag", etag)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        return self.rfile.read(length) if length else b""

    # -- dialect -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path == "/healthz":
            self._reply(200, json_dumps_bytes({"ok": True}))
            return
        if parsed.path == "/list":
            query = urllib.parse.parse_qs(parsed.query)
            prefix = (query.get("prefix") or [""])[0]
            with self.lock:
                keys = self.store.list(prefix)
            self._reply(200, json_dumps_bytes({"keys": keys}))
            return
        key = self._key()
        if key is None:
            self._reply(404)
            return
        with self.lock:
            got = self.store.get(key)
        if got is None:
            self._reply(404)
            return
        data, etag = got
        self._reply(200, data, etag=etag)

    def do_PUT(self) -> None:  # noqa: N802
        key = self._key()
        if key is None:
            self._reply(404)
            return
        data = self._read_body()
        if_match = self.headers.get("If-Match")
        if_none_match = self.headers.get("If-None-Match")
        with self.lock:
            if if_none_match == "*":
                etag = self.store.cas(key, data, if_match=None)
            elif if_match is not None:
                etag = self.store.cas(key, data, if_match=if_match)
            else:
                etag = self.store.put(key, data)
        if etag is None:
            self._reply(412)
            return
        self._reply(200, etag=etag)

    def do_DELETE(self) -> None:  # noqa: N802
        key = self._key()
        if key is None:
            self._reply(404)
            return
        if_match = self.headers.get("If-Match")
        with self.lock:
            existed = self.store.get(key) is not None
            removed = self.store.delete(key, if_match=if_match)
        if removed:
            self._reply(204)
        else:
            self._reply(412 if existed else 404)

    def log_message(self, fmt: str, *args) -> None:  # noqa: D102
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)


def make_server(host: str = "127.0.0.1", port: int = 0,
                data_dir: Optional[str] = None,
                verbose: bool = False) -> ThreadingHTTPServer:
    """Build (but don't start) a broker HTTP server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``).  With ``data_dir`` the store is
    disk-backed and survives restarts; otherwise it is in-memory.
    """
    store: QueueTransport = (FsTransport(data_dir) if data_dir
                             else MemoryTransport())
    handler = type("BoundBrokerHandler", (_BrokerHandler,), {
        "store": store,
        "lock": threading.Lock(),
        "verbose": verbose,
    })
    ThreadingHTTPServer.allow_reuse_address = True
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


class Broker:
    """An embeddable broker: the module CLI's server on a background thread.

    For tests, demos and single-process fleets::

        with Broker(data_dir="…/state") as broker:
            transport = HttpTransport(broker.url)

    ``stop()`` (or leaving the ``with`` block) shuts the listener down;
    with ``data_dir`` a new ``Broker`` over the same directory resumes the
    exact queue state — including live leases, since ETags are
    content-derived.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 data_dir: Optional[str] = None, verbose: bool = False):
        self._server = make_server(host=host, port=port,
                                   data_dir=str(data_dir) if data_dir else None,
                                   verbose=verbose)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """Base URL workers point ``--queue`` at."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "Broker":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name=f"broker-{self.port}",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Broker":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: serve until interrupted; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.dist.server",
        description="HTTP broker for distributed campaign work queues "
                    "(S3-style GET/PUT/DELETE with ETag conditional "
                    "requests; see docs/distributed.md).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1; use 0.0.0.0 "
                             "to accept remote workers)")
    parser.add_argument("--port", type=int, default=8123,
                        help="TCP port (default 8123; 0 picks a free port)")
    parser.add_argument("--data-dir", default=None,
                        help="persist queue state under this directory so "
                             "a broker restart resumes mid-campaign "
                             "(default: in-memory, state dies with the "
                             "process)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
    args = parser.parse_args(argv)

    server = make_server(host=args.host, port=args.port,
                         data_dir=args.data_dir, verbose=args.verbose)
    host, port = server.server_address[:2]
    backing = args.data_dir or "memory (volatile)"
    print(f"queue broker listening on http://{host}:{port} "
          f"(store: {backing})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("broker shutting down", flush=True)
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
