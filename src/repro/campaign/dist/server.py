"""A stdlib HTTP broker serving the S3-style queue-transport dialect.

Runnable as a module::

    python -m repro.campaign.dist.server --port 8123 [--data-dir DIR] \
        [--host 0.0.0.0] [--lock-stripes N] [--verbose]

The broker is the network hop that lets a campaign scale past one shared
filesystem: the orchestrator and any number of workers point
:class:`~repro.campaign.dist.transport.HttpTransport` at it
(``--queue http://host:8123``) and run the exact same queue protocol they
would run over a shared directory.

Design:

* **Storage is a transport.**  The broker fronts a
  :class:`~repro.campaign.dist.transport.MemoryTransport` by default, or a
  :class:`~repro.campaign.dist.transport.FsTransport` under ``--data-dir``
  — in which case the whole queue state survives a broker restart, and
  because ETags are content-derived, *leases held by workers remain valid
  across the restart* (the crash tests pin this down).
* **Mutations serialize under striped locks.**  Conditional PUT/DELETE
  (``If-Match`` / ``If-None-Match: *``) must be atomic even over the
  read-check-write filesystem transport; instead of one global mutation
  lock, keys hash by their *top-level prefix* (``pending/``, ``claims/``,
  the cache's two-hex shards, …) onto a small array of stripe locks, so
  a worker settling a result never waits behind another worker claiming a
  ticket.  Correctness only needs mutations *of the same key* to
  serialize, and a key's prefix always maps to the same stripe.
* **Batching.**  ``POST /batch`` executes many conditional operations
  from one request body in order, returning a per-op status — one round
  trip for what used to be dozens.  Batches are not transactions: each
  op locks its own stripe and succeeds or conflicts individually.
* **Pagination.**  ``GET /list`` accepts ``max-keys`` and ``start-after``
  so heartbeat and autoscale scans fetch bounded pages (keyset
  continuation: the token is the last key of the page, so deletions
  between pages never skip survivors).
* **Dialect** (see :class:`~repro.campaign.dist.transport.HttpTransport`):
  ``GET/PUT/DELETE /k/<key>`` with ``ETag``/``If-Match``/``If-None-Match``
  headers, ``GET /list?prefix=<p>`` → ``{"keys": [...]}``,
  ``POST /batch``, and ``GET /healthz`` for liveness probes.  Connections
  are HTTP/1.1 keep-alive: one TCP connection carries a whole campaign.

The server is ``ThreadingHTTPServer``-based and stdlib-only.  For tests
and single-process demos, :class:`Broker` runs the same server on a
background thread (``with Broker() as broker: HttpTransport(broker.url)``).
"""

from __future__ import annotations

import argparse
import base64
import binascii
import threading
import urllib.parse
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from repro.campaign.jsonio import json_dumps_bytes, json_loads_or_none
from repro.campaign.dist.transport import (
    FsTransport,
    MemoryTransport,
    QueueTransport,
)

#: Default number of stripe locks; a power of two comfortably above the
#: number of distinct queue states (jobs/pending/claims/results/done/dead
#: + queue.json + cache shards) without wasting memory.
DEFAULT_LOCK_STRIPES = 16

#: Upper bound the broker clamps a ``max-keys`` request parameter to.
MAX_LIST_PAGE = 10000

#: Upper bound on operations accepted in one ``/batch`` request.
MAX_BATCH_OPS = 1024


class StripeLocks:
    """Per-prefix stripe locks: mutations on one key always serialize,
    mutations on unrelated prefixes proceed concurrently.

    The stripe is chosen by the key's top-level prefix (the segment
    before the first ``/``, or the whole key) hashed with CRC-32 — stable
    across processes, unlike ``hash(str)``, so a future multi-process
    broker could share the mapping.
    """

    def __init__(self, stripes: int = DEFAULT_LOCK_STRIPES):
        self._locks = [threading.Lock()
                       for _ in range(max(1, int(stripes)))]

    def __len__(self) -> int:
        return len(self._locks)

    def for_key(self, key: str) -> threading.Lock:
        prefix = key.split("/", 1)[0]
        return self._locks[zlib.crc32(prefix.encode("utf-8"))
                           % len(self._locks)]


class _BrokerHandler(BaseHTTPRequestHandler):
    """One request against the broker's backing transport.

    The handler class is generated per-server (:func:`make_server`) so the
    backing store and its stripe locks arrive as class attributes —
    ``BaseHTTPRequestHandler`` instantiates per request and cannot take
    constructor arguments.
    """

    store: QueueTransport = None   # type: ignore[assignment]
    locks: StripeLocks = None      # type: ignore[assignment]
    verbose = False

    protocol_version = "HTTP/1.1"
    server_version = "repro-queue-broker/2.0"
    #: TCP_NODELAY: responses are written as a header packet then a body
    #: packet; under Nagle the body write stalls until the client ACKs
    #: the headers (~40ms of delayed-ACK per GET/LIST on Linux), which
    #: would erase everything keep-alive buys.
    disable_nagle_algorithm = True

    # -- helpers -----------------------------------------------------------
    def _key(self) -> Optional[str]:
        path = urllib.parse.urlparse(self.path).path
        if not path.startswith("/k/"):
            return None
        return urllib.parse.unquote(path[len("/k/"):])

    def _reply(self, status: int, body: bytes = b"",
               etag: Optional[str] = None) -> None:
        self.send_response(status)
        if etag:
            self.send_header("ETag", etag)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        return self.rfile.read(length) if length else b""

    # -- dialect -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path == "/healthz":
            self._reply(200, json_dumps_bytes({"ok": True}))
            return
        if parsed.path == "/list":
            self._do_list(parsed)
            return
        key = self._key()
        if key is None:
            self._reply(404)
            return
        with self.locks.for_key(key):
            got = self.store.get(key)
        if got is None:
            self._reply(404)
            return
        data, etag = got
        self._reply(200, data, etag=etag)

    def _do_list(self, parsed) -> None:
        """``/list?prefix=<p>[&max-keys=<n>&start-after=<k>]``.

        Without ``max-keys`` the full listing ships in one response (the
        pre-pagination dialect, kept for old clients).  With it, one
        keyset page: ``{"keys": [...], "truncated": bool, "next": tok}``.
        Listings take no stripe lock — both backing stores are internally
        consistent for reads, and a listing racing a mutation is allowed
        to see either side of it (exactly as over a shared filesystem).
        """
        query = urllib.parse.parse_qs(parsed.query)
        prefix = (query.get("prefix") or [""])[0]
        raw_max = (query.get("max-keys") or [None])[0]
        start_after = (query.get("start-after") or [""])[0]
        if raw_max is None:
            keys = self.store.list(prefix)
            if start_after:
                keys = [key for key in keys if key > start_after]
            self._reply(200, json_dumps_bytes(
                {"keys": keys, "truncated": False}))
            return
        try:
            max_keys = int(raw_max)
        except ValueError:
            self._reply(400, json_dumps_bytes(
                {"error": f"bad max-keys: {raw_max!r}"}))
            return
        if max_keys < 1:
            self._reply(400, json_dumps_bytes(
                {"error": f"bad max-keys: {raw_max!r}"}))
            return
        max_keys = min(max_keys, MAX_LIST_PAGE)
        page, token = self.store.list_page(prefix, max_keys,
                                           start_after=start_after)
        payload: Dict[str, Any] = {"keys": page,
                                   "truncated": token is not None}
        if token is not None:
            payload["next"] = token
        self._reply(200, json_dumps_bytes(payload))

    def do_PUT(self) -> None:  # noqa: N802
        key = self._key()
        if key is None:
            # Drain the unread body first: on a keep-alive connection the
            # leftover bytes would be parsed as the next request line.
            self._read_body()
            self._reply(404)
            return
        data = self._read_body()
        if_match = self.headers.get("If-Match")
        if_none_match = self.headers.get("If-None-Match")
        with self.locks.for_key(key):
            if if_none_match == "*":
                etag = self.store.cas(key, data, if_match=None)
            elif if_match is not None:
                etag = self.store.cas(key, data, if_match=if_match)
            else:
                etag = self.store.put(key, data)
        if etag is None:
            self._reply(412)
            return
        self._reply(200, etag=etag)

    def do_DELETE(self) -> None:  # noqa: N802
        key = self._key()
        if key is None:
            self._reply(404)
            return
        if_match = self.headers.get("If-Match")
        with self.locks.for_key(key):
            existed = self.store.get(key) is not None
            removed = self.store.delete(key, if_match=if_match)
        if removed:
            self._reply(204)
        else:
            self._reply(412 if existed else 404)

    # -- /batch ------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path != "/batch":
            # Drain the unread body first: on a keep-alive connection the
            # leftover bytes would be parsed as the next request line.
            self._read_body()
            self._reply(404)
            return
        payload = json_loads_or_none(self._read_body())
        ops = payload.get("ops") if payload else None
        if not isinstance(ops, list):
            self._reply(400, json_dumps_bytes(
                {"error": "body must be a JSON object with an 'ops' list"}))
            return
        if len(ops) > MAX_BATCH_OPS:
            self._reply(400, json_dumps_bytes(
                {"error": f"too many ops ({len(ops)} > {MAX_BATCH_OPS})"}))
            return
        results = [self._apply(op) for op in ops]
        self._reply(200, json_dumps_bytes({"results": results}))

    def _apply(self, op: Any) -> Dict[str, Any]:
        """Execute one batch op under its key's stripe lock.

        Per-op statuses mirror the single-request dialect exactly:
        ``get`` → 200 (``etag`` + base64 ``data``) / 404; ``put`` →
        200 (``etag``) / 412; ``delete`` → 204 / 404 / 412.  A malformed
        op is a per-op 400 — the rest of the batch still applies.
        """
        if not isinstance(op, dict):
            return {"status": 400, "error": "op must be an object"}
        kind = op.get("op")
        key = op.get("key")
        if kind not in ("get", "put", "delete") or not isinstance(key, str) \
                or not key:
            return {"status": 400, "error": "need op in get/put/delete "
                                            "and a non-empty key"}
        if kind == "get":
            with self.locks.for_key(key):
                got = self.store.get(key)
            if got is None:
                return {"status": 404}
            data, etag = got
            return {"status": 200, "etag": etag,
                    "data": base64.b64encode(data).decode("ascii")}
        if kind == "put":
            try:
                data = base64.b64decode(str(op.get("data", "")),
                                        validate=True)
            except (binascii.Error, ValueError):
                return {"status": 400, "error": "data must be base64"}
            if_match = op.get("if_match")
            with self.locks.for_key(key):
                if op.get("if_none_match") == "*":
                    etag = self.store.cas(key, data, if_match=None)
                elif if_match is not None:
                    etag = self.store.cas(key, data,
                                          if_match=str(if_match))
                else:
                    etag = self.store.put(key, data)
            if etag is None:
                return {"status": 412}
            return {"status": 200, "etag": etag}
        if_match = op.get("if_match")
        with self.locks.for_key(key):
            existed = self.store.get(key) is not None
            removed = self.store.delete(
                key, if_match=str(if_match) if if_match is not None else None)
        if removed:
            return {"status": 204}
        return {"status": 412 if existed else 404}

    def log_message(self, fmt: str, *args) -> None:  # noqa: D102
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)


def make_server(host: str = "127.0.0.1", port: int = 0,
                data_dir: Optional[str] = None,
                verbose: bool = False,
                lock_stripes: int = DEFAULT_LOCK_STRIPES
                ) -> ThreadingHTTPServer:
    """Build (but don't start) a broker HTTP server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``).  With ``data_dir`` the store is
    disk-backed and survives restarts; otherwise it is in-memory.
    ``lock_stripes`` sizes the striped mutation-lock array.
    """
    store: QueueTransport = (FsTransport(data_dir) if data_dir
                             else MemoryTransport())
    handler = type("BoundBrokerHandler", (_BrokerHandler,), {
        "store": store,
        "locks": StripeLocks(lock_stripes),
        "verbose": verbose,
    })
    ThreadingHTTPServer.allow_reuse_address = True
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


class Broker:
    """An embeddable broker: the module CLI's server on a background thread.

    For tests, demos and single-process fleets::

        with Broker(data_dir="…/state") as broker:
            transport = HttpTransport(broker.url)

    ``stop()`` (or leaving the ``with`` block) shuts the listener down;
    with ``data_dir`` a new ``Broker`` over the same directory resumes the
    exact queue state — including live leases, since ETags are
    content-derived.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 data_dir: Optional[str] = None, verbose: bool = False,
                 lock_stripes: int = DEFAULT_LOCK_STRIPES):
        self._server = make_server(host=host, port=port,
                                   data_dir=str(data_dir) if data_dir else None,
                                   verbose=verbose, lock_stripes=lock_stripes)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """Base URL workers point ``--queue`` at."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "Broker":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name=f"broker-{self.port}",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Broker":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: serve until interrupted; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.dist.server",
        description="HTTP broker for distributed campaign work queues "
                    "(S3-style GET/PUT/DELETE with ETag conditional "
                    "requests, /batch and paginated /list; see "
                    "docs/distributed.md).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1; use 0.0.0.0 "
                             "to accept remote workers)")
    parser.add_argument("--port", type=int, default=8123,
                        help="TCP port (default 8123; 0 picks a free port)")
    parser.add_argument("--data-dir", default=None,
                        help="persist queue state under this directory so "
                             "a broker restart resumes mid-campaign "
                             "(default: in-memory, state dies with the "
                             "process)")
    parser.add_argument("--lock-stripes", type=int,
                        default=DEFAULT_LOCK_STRIPES,
                        help="number of striped mutation locks (default "
                             f"{DEFAULT_LOCK_STRIPES}); mutations on "
                             "different key prefixes proceed concurrently")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
    args = parser.parse_args(argv)

    server = make_server(host=args.host, port=args.port,
                         data_dir=args.data_dir, verbose=args.verbose,
                         lock_stripes=args.lock_stripes)
    host, port = server.server_address[:2]
    backing = args.data_dir or "memory (volatile)"
    print(f"queue broker listening on http://{host}:{port} "
          f"(store: {backing})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("broker shutting down", flush=True)
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
