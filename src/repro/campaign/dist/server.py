"""An HTTP broker serving the S3-style queue-transport dialect.

Runnable as a module::

    python -m repro.campaign.dist.server --port 8123 [--data-dir DIR] \
        [--host 0.0.0.0] [--core asyncio|thread] [--lock-stripes N] \
        [--verbose]

The broker is the network hop that lets a campaign scale past one shared
filesystem: the orchestrator and any number of workers point
:class:`~repro.campaign.dist.transport.HttpTransport` at it
(``--queue http://host:8123``) and run the exact same queue protocol they
would run over a shared directory.

Design:

* **Storage is a transport.**  The broker fronts a
  :class:`~repro.campaign.dist.transport.MemoryTransport` by default, or a
  :class:`~repro.campaign.dist.transport.FsTransport` under ``--data-dir``
  — in which case the whole queue state survives a broker restart, and
  because ETags are content-derived, *leases held by workers remain valid
  across the restart* (the crash tests pin this down).
* **One wire dialect, two cores.**  All request semantics live in
  :class:`BrokerDialect` — a transport-agnostic dispatcher from parsed
  requests to replies.  Two interchangeable network cores drive it: the
  default ``asyncio`` core (a selector event loop; a thousand-worker
  fleet costs a thousand sockets, not a thousand parked OS threads) and
  the legacy ``thread`` core (``ThreadingHTTPServer``), selectable via
  ``--core`` / the ``REPRO_BROKER_CORE`` environment variable and kept
  until the migration completes.  CI runs the HTTP test leg once per
  core.
* **Mutations serialize.**  Conditional PUT/DELETE (``If-Match`` /
  ``If-None-Match: *``) must be atomic even over the read-check-write
  filesystem transport.  Under the ``thread`` core, keys hash by their
  *top-level prefix* (``pending/``, ``claims/``, …) onto a small array
  of stripe locks (:class:`StripeLocks`), so a worker settling a result
  never waits behind another worker claiming a ticket.  Under the
  ``asyncio`` core the dialect runs on the event-loop thread, so every
  request body is naturally a loop-serialized section — the stripe locks
  are acquired uncontended and cost nanoseconds.
* **Server-side claim.**  ``POST /claim`` runs the queue's whole
  scan-probe-CAS claim pass (:func:`repro.campaign.dist.queue.
  claim_first_over`) broker-side, collapsing the claim's four round
  trips into one.  Brokers that predate the endpoint answer 404 and
  clients fall back to the client-side scan.
* **Batching.**  ``POST /batch`` executes many conditional operations
  from one request body in order, returning a per-op status — one round
  trip for what used to be dozens.  Batches are not transactions: each
  op locks its own stripe and succeeds or conflicts individually.
* **Pagination.**  ``GET /list`` accepts ``max-keys`` and ``start-after``
  so heartbeat and autoscale scans fetch bounded pages (keyset
  continuation: the token is the last key of the page, so deletions
  between pages never skip survivors).
* **Dialect** (see :class:`~repro.campaign.dist.transport.HttpTransport`):
  ``GET/PUT/DELETE /k/<key>`` with ``ETag``/``If-Match``/``If-None-Match``
  headers, ``GET /list?prefix=<p>`` → ``{"keys": [...]}``,
  ``POST /batch``, ``POST /claim``, ``GET /healthz`` for liveness
  probes and ``GET /stats`` for the telemetry snapshot the
  ``python -m repro.campaign.dist.stats`` dashboard polls (per-route
  request counts and latency histograms, in-flight gauge, bytes in/out,
  claim outcomes, stripe-lock contention — all from the per-dialect
  :class:`~repro.campaign.obs.metrics.MetricsRegistry`).  Connections
  are HTTP/1.1 keep-alive: one TCP connection
  carries a whole campaign.  Malformed requests (bad ``Content-Length``,
  garbage request line) are answered with 400 and an *announced*
  connection close — never a desynced keep-alive stream.

For tests and single-process demos, :class:`Broker` runs either core on
a background thread (``with Broker() as broker:
HttpTransport(broker.url)``).
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import binascii
import http.client
import math
import os
import socket
import threading
import time
import urllib.parse
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.campaign.jsonio import json_dumps_bytes, json_loads_or_none
from repro.campaign.obs import MetricsRegistry, StructLogger
from repro.campaign.dist.queue import claim_first_over
from repro.campaign.dist.transport import (
    FsTransport,
    MemoryTransport,
    QueueTransport,
)

#: Default number of stripe locks; a power of two comfortably above the
#: number of distinct queue states (jobs/pending/claims/results/done/dead
#: + queue.json + cache shards) without wasting memory.
DEFAULT_LOCK_STRIPES = 16

#: Upper bound the broker clamps a ``max-keys`` request parameter to.
MAX_LIST_PAGE = 10000

#: Upper bound on operations accepted in one ``/batch`` request.
MAX_BATCH_OPS = 1024

#: Header-count cap per request in the asyncio core's parser — a framing
#: sanity bound, far above anything :class:`~repro.campaign.dist.
#: transport.HttpTransport` sends.
_MAX_HEADERS = 100

SERVER_VERSION = "repro-queue-broker/3.0"


class _ContentionLock:
    """One stripe: a lock that counts the acquisitions it had to wait for.

    A miss on the non-blocking fast path means another request held the
    stripe — that is exactly the contention signal the ``/stats``
    ``broker_lock_contention_total`` counter reports (and the metric
    that will justify, or veto, more stripes / key-level locks later).
    The extra non-blocking attempt on the uncontended path is tens of
    nanoseconds — invisible next to a broker request.
    """

    __slots__ = ("_lock", "_stripe", "on_contention")

    def __init__(self, stripe: int):
        self._lock = threading.Lock()
        self._stripe = stripe
        self.on_contention: Optional[Callable[[int], None]] = None

    def __enter__(self) -> "_ContentionLock":
        if not self._lock.acquire(blocking=False):
            if self.on_contention is not None:
                self.on_contention(self._stripe)
            self._lock.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self._lock.release()


class StripeLocks:
    """Per-prefix stripe locks: mutations on one key always serialize,
    mutations on unrelated prefixes proceed concurrently.

    The stripe is chosen by the key's top-level prefix (the segment
    before the first ``/``, or the whole key) hashed with CRC-32 — stable
    across processes, unlike ``hash(str)``, so a future multi-process
    broker could share the mapping.  Under the asyncio core every
    acquisition is uncontended (the dialect runs on one loop thread);
    they are kept because the ``thread`` core shares the same dialect.

    Contended acquisitions are observable: :meth:`bind_contention` hooks
    a callback (the dialect wires its contention counter in) that fires
    with the stripe index whenever an acquisition had to wait.
    """

    def __init__(self, stripes: int = DEFAULT_LOCK_STRIPES):
        self._locks = [_ContentionLock(i)
                       for i in range(max(1, int(stripes)))]

    def __len__(self) -> int:
        return len(self._locks)

    def bind_contention(self, callback: Callable[[int], None]) -> None:
        for lock in self._locks:
            lock.on_contention = callback

    def for_key(self, key: str) -> _ContentionLock:
        prefix = key.split("/", 1)[0]
        return self._locks[zlib.crc32(prefix.encode("utf-8"))
                           % len(self._locks)]


class _Reply:
    """One response from the dialect: status, body, optional ETag."""

    __slots__ = ("status", "body", "etag", "close")

    def __init__(self, status: int, body: bytes = b"",
                 etag: Optional[str] = None, close: bool = False):
        self.status = status
        self.body = body
        self.etag = etag
        self.close = close


class BrokerDialect:
    """The broker's request semantics, independent of the network core.

    Both cores parse bytes off their sockets and hand
    ``(method, target, headers, body)`` to :meth:`handle`; everything the
    wire dialect *means* — key operations, listings, batches, the
    server-side claim — lives here, so the two cores cannot drift apart.

    Test hooks (used by the regression suites, harmless in production):

    ``force_close``
        When true, the serving core drops the connection after every
        reply *without announcing it* — simulating a broker that closes
        idle pooled sockets, the stale-keep-alive hazard the transport's
        free retry exists for.
    ``serve_claim``
        When false, ``POST /claim`` answers 404 — simulating an old
        broker, so the client-side fallback path stays testable after
        brokers learn the endpoint.

    Every dialect owns a private :class:`~repro.campaign.obs.metrics.
    MetricsRegistry` (per-broker isolation — two brokers in one test
    process must not share counters) whose snapshot ``GET /stats``
    serves; see docs/observability.md for the family catalogue.
    """

    def __init__(self, store: QueueTransport, locks: StripeLocks,
                 verbose: bool = False):
        self.store = store
        self.locks = locks
        self.verbose = verbose
        self.force_close = False
        self.serve_claim = True
        self.core_name: Optional[str] = None  # set by the serving core
        self.started_at = time.time()
        self.log = StructLogger("broker", enabled=verbose)
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "broker_requests_total", "requests served, by route/method/status")
        self._latency = self.registry.histogram(
            "broker_request_seconds", "dialect handling latency, by route")
        self._inflight = self.registry.gauge(
            "broker_inflight_requests", "requests currently inside handle()")
        self._bytes_in = self.registry.counter(
            "broker_bytes_in_total", "request body bytes received")
        self._bytes_out = self.registry.counter(
            "broker_bytes_out_total", "response body bytes sent")
        self._claims = self.registry.counter(
            "broker_claims_total", "POST /claim outcomes")
        contention = self.registry.counter(
            "broker_lock_contention_total",
            "stripe-lock acquisitions that had to wait, by stripe")
        locks.bind_contention(
            lambda stripe: contention.inc(stripe=stripe))

    @staticmethod
    def _route(method: str, path: str) -> str:
        """Collapse the target into a bounded label set (every ``/k/...``
        key is one route — labels must not grow with the keyspace)."""
        if path.startswith("/k/"):
            return "/k"
        if path in ("/healthz", "/list", "/batch", "/claim", "/stats"):
            return path
        return "other"

    # -- dispatch ----------------------------------------------------------
    def handle(self, method: str, target: str,
               headers: Dict[str, str], body: bytes) -> _Reply:
        """Answer one parsed request.  ``headers`` keys are lowercase.

        This wrapper is the metering point shared by both network cores:
        per-route request counts, latency, in-flight level, body bytes in
        and out, plus the ``--verbose`` access line (to stderr — stdout
        stays reserved for program output).
        """
        parsed = urllib.parse.urlsplit(target)
        route = self._route(method, parsed.path)
        self._inflight.inc()
        start = time.perf_counter()
        try:
            reply = self._dispatch(method, parsed.path, parsed.query,
                                   headers, body)
        finally:
            elapsed = time.perf_counter() - start
            self._inflight.dec()
        self._latency.observe(elapsed, route=route)
        self._requests.inc(route=route, method=method, status=reply.status)
        if body:
            self._bytes_in.inc(len(body), route=route)
        if reply.body:
            self._bytes_out.inc(len(reply.body), route=route)
        if self.verbose:
            self.log.event("request", method=method, target=target,
                           status=reply.status, ms=elapsed * 1000.0)
        return reply

    def _dispatch(self, method: str, path: str, query: str,
                  headers: Dict[str, str], body: bytes) -> _Reply:
        if method == "GET":
            if path == "/healthz":
                return _Reply(200, json_dumps_bytes({"ok": True}))
            if path == "/list":
                return self._list(query)
            if path == "/stats":
                return self._stats()
            return self._get(path)
        if method == "PUT":
            return self._put(path, headers, body)
        if method == "DELETE":
            return self._delete(path, headers)
        if method == "POST":
            if path == "/batch":
                return self._batch(body)
            if path == "/claim":
                return self._claim(query)
            return _Reply(404)
        return _Reply(501)

    # -- /stats ------------------------------------------------------------
    def _stats(self) -> _Reply:
        """``GET /stats`` → the broker's telemetry snapshot.

        ``{"server": {...identity/uptime...}, "metrics": <registry
        snapshot>}`` — see docs/distributed.md for the wire format and
        docs/observability.md for the metric families.  Always 200, even
        on a broker that has served nothing (the ``dist.stats`` CLI's
        first poll must not 404).
        """
        payload = {
            "server": {
                "version": SERVER_VERSION,
                "core": self.core_name,
                "store": type(self.store).__name__,
                "lock_stripes": len(self.locks),
                "started_at": self.started_at,
                "uptime_seconds": max(0.0, time.time() - self.started_at),
            },
            "metrics": self.registry.snapshot(),
        }
        return _Reply(200, json_dumps_bytes(payload))

    @staticmethod
    def _key(path: str) -> Optional[str]:
        if not path.startswith("/k/"):
            return None
        return urllib.parse.unquote(path[len("/k/"):])

    # -- point operations --------------------------------------------------
    def _get(self, path: str) -> _Reply:
        key = self._key(path)
        if key is None:
            return _Reply(404)
        with self.locks.for_key(key):
            got = self.store.get(key)
        if got is None:
            return _Reply(404)
        data, etag = got
        return _Reply(200, data, etag=etag)

    def _put(self, path: str, headers: Dict[str, str],
             body: bytes) -> _Reply:
        key = self._key(path)
        if key is None:
            return _Reply(404)
        if_match = headers.get("if-match")
        if_none_match = headers.get("if-none-match")
        with self.locks.for_key(key):
            if if_none_match == "*":
                etag = self.store.cas(key, body, if_match=None)
            elif if_match is not None:
                etag = self.store.cas(key, body, if_match=if_match)
            else:
                etag = self.store.put(key, body)
        if etag is None:
            return _Reply(412)
        return _Reply(200, etag=etag)

    def _delete(self, path: str, headers: Dict[str, str]) -> _Reply:
        key = self._key(path)
        if key is None:
            return _Reply(404)
        if_match = headers.get("if-match")
        with self.locks.for_key(key):
            existed = self.store.get(key) is not None
            removed = self.store.delete(key, if_match=if_match)
        if removed:
            return _Reply(204)
        return _Reply(412 if existed else 404)

    # -- /list -------------------------------------------------------------
    def _list(self, query_string: str) -> _Reply:
        """``/list?prefix=<p>[&max-keys=<n>&start-after=<k>]``.

        Without ``max-keys`` the full listing ships in one response (the
        pre-pagination dialect, kept for old clients).  With it, one
        keyset page: ``{"keys": [...], "truncated": bool, "next": tok}``.
        Listings take no stripe lock — both backing stores are internally
        consistent for reads, and a listing racing a mutation is allowed
        to see either side of it (exactly as over a shared filesystem).
        """
        query = urllib.parse.parse_qs(query_string)
        prefix = (query.get("prefix") or [""])[0]
        raw_max = (query.get("max-keys") or [None])[0]
        start_after = (query.get("start-after") or [""])[0]
        if raw_max is None:
            keys = self.store.list(prefix)
            if start_after:
                keys = [key for key in keys if key > start_after]
            return _Reply(200, json_dumps_bytes(
                {"keys": keys, "truncated": False}))
        try:
            max_keys = int(raw_max)
        except ValueError:
            max_keys = 0
        if max_keys < 1:
            return _Reply(400, json_dumps_bytes(
                {"error": f"bad max-keys: {raw_max!r}"}))
        max_keys = min(max_keys, MAX_LIST_PAGE)
        page, token = self.store.list_page(prefix, max_keys,
                                           start_after=start_after)
        payload: Dict[str, Any] = {"keys": page,
                                   "truncated": token is not None}
        if token is not None:
            payload["next"] = token
        return _Reply(200, json_dumps_bytes(payload))

    # -- /batch ------------------------------------------------------------
    def _batch(self, body: bytes) -> _Reply:
        payload = json_loads_or_none(body)
        ops = payload.get("ops") if payload else None
        if not isinstance(ops, list):
            return _Reply(400, json_dumps_bytes(
                {"error": "body must be a JSON object with an 'ops' list"}))
        if len(ops) > MAX_BATCH_OPS:
            return _Reply(400, json_dumps_bytes(
                {"error": f"too many ops ({len(ops)} > {MAX_BATCH_OPS})"}))
        results = [self._apply(op) for op in ops]
        return _Reply(200, json_dumps_bytes({"results": results}))

    def _apply(self, op: Any) -> Dict[str, Any]:
        """Execute one batch op under its key's stripe lock.

        Per-op statuses mirror the single-request dialect exactly:
        ``get`` → 200 (``etag`` + base64 ``data``) / 404; ``put`` →
        200 (``etag``) / 412; ``delete`` → 204 / 404 / 412.  A malformed
        op is a per-op 400 — the rest of the batch still applies.
        """
        if not isinstance(op, dict):
            return {"status": 400, "error": "op must be an object"}
        kind = op.get("op")
        key = op.get("key")
        if kind not in ("get", "put", "delete") or not isinstance(key, str) \
                or not key:
            return {"status": 400, "error": "need op in get/put/delete "
                                            "and a non-empty key"}
        if kind == "get":
            with self.locks.for_key(key):
                got = self.store.get(key)
            if got is None:
                return {"status": 404}
            data, etag = got
            return {"status": 200, "etag": etag,
                    "data": base64.b64encode(data).decode("ascii")}
        if kind == "put":
            try:
                data = base64.b64decode(str(op.get("data", "")),
                                        validate=True)
            except (binascii.Error, ValueError):
                return {"status": 400, "error": "data must be base64"}
            if_match = op.get("if_match")
            with self.locks.for_key(key):
                if op.get("if_none_match") == "*":
                    etag = self.store.cas(key, data, if_match=None)
                elif if_match is not None:
                    etag = self.store.cas(key, data,
                                          if_match=str(if_match))
                else:
                    etag = self.store.put(key, data)
            if etag is None:
                return {"status": 412}
            return {"status": 200, "etag": etag}
        if_match = op.get("if_match")
        with self.locks.for_key(key):
            existed = self.store.get(key) is not None
            removed = self.store.delete(
                key, if_match=str(if_match) if if_match is not None else None)
        if removed:
            return {"status": 204}
        return {"status": 412 if existed else 404}

    # -- /claim ------------------------------------------------------------
    def _claim(self, query_string: str) -> _Reply:
        """``POST /claim?prefix=pending/&worker=<id>[&now=<t>&lease=<s>]``.

        Runs one scan-probe-CAS claim pass (:func:`repro.campaign.dist.
        queue.claim_first_over`) against the broker's own store, where
        every "round trip" of the scan is a local operation.  Replies
        200 with the JSON claim outcome (``name``/``key``/``etag``/
        ``attempts``/``cost``/``record``/``lease``), or 204 when nothing
        is claimable.  ``now`` and ``lease`` carry the *claimant's*
        clock and adopted lease policy, so lease arithmetic matches the
        client-side scan exactly (and fake-clock tests work over HTTP);
        when omitted the broker falls back to its wall clock and the
        stored queue config.

        Every store mutation the pass performs is individually atomic on
        both backing transports (conditional creates, unconditional
        writes/deletes), so concurrent claims — from this endpoint or
        from old clients running the scan remotely — still pick exactly
        one winner per ticket without holding a stripe lock across the
        whole scan.
        """
        if not self.serve_claim:
            self._claims.inc(outcome="disabled")
            return _Reply(404)
        query = urllib.parse.parse_qs(query_string)
        prefix = (query.get("prefix") or ["pending/"])[0]
        worker = (query.get("worker") or [""])[0]
        raw_now = (query.get("now") or [None])[0]
        raw_lease = (query.get("lease") or [None])[0]
        if not prefix.endswith("pending/"):
            self._claims.inc(outcome="bad_request")
            return _Reply(400, json_dumps_bytes(
                {"error": f"prefix must end with 'pending/': {prefix!r}"}))
        now: Optional[float] = None
        if raw_now is not None:
            try:
                now = float(raw_now)
            except ValueError:
                now = math.nan
            if not math.isfinite(now):
                self._claims.inc(outcome="bad_request")
                return _Reply(400, json_dumps_bytes(
                    {"error": f"bad now: {raw_now!r}"}))
        lease: Optional[float] = None
        if raw_lease is not None:
            try:
                lease = float(raw_lease)
            except ValueError:
                lease = math.nan
            if not (math.isfinite(lease) and lease > 0):
                self._claims.inc(outcome="bad_request")
                return _Reply(400, json_dumps_bytes(
                    {"error": f"bad lease: {raw_lease!r}"}))
        outcome = claim_first_over(self.store, prefix=prefix, worker=worker,
                                   now=now, lease_seconds=lease,
                                   registry=self.registry)
        if outcome is None:
            self._claims.inc(outcome="empty")
            return _Reply(204)
        self._claims.inc(outcome="claimed")
        return _Reply(200, json_dumps_bytes(outcome))


# ---------------------------------------------------------------------------
# thread core: ThreadingHTTPServer driving the dialect
# ---------------------------------------------------------------------------

class _BrokerHandler(BaseHTTPRequestHandler):
    """Thread-core shim: parse with ``http.server``, answer via the dialect.

    The handler class is generated per-server (:func:`make_server`) so
    the dialect arrives as a class attribute — ``BaseHTTPRequestHandler``
    instantiates per request and cannot take constructor arguments.
    """

    dialect: BrokerDialect = None  # type: ignore[assignment]

    protocol_version = "HTTP/1.1"
    server_version = SERVER_VERSION
    #: TCP_NODELAY: responses are written as a header packet then a body
    #: packet; under Nagle the body write stalls until the client ACKs
    #: the headers (~40ms of delayed-ACK per GET/LIST on Linux), which
    #: would erase everything keep-alive buys.
    disable_nagle_algorithm = True

    def _reply(self, status: int, body: bytes = b"",
               etag: Optional[str] = None,
               announce_close: bool = False) -> None:
        self.send_response(status)
        if etag:
            self.send_header("ETag", etag)
        if announce_close:
            self.send_header("Connection", "close")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _drain_body(self) -> Optional[bytes]:
        """Read the request body; ``None`` means unframeable request.

        A malformed or negative ``Content-Length`` leaves the connection
        byte stream unparseable — there is no knowing where this request
        ends — so the caller must answer 400 and close.
        """
        raw = self.headers.get("Content-Length")
        if raw is None or not raw.strip():
            return b""
        try:
            length = int(raw)
        except (TypeError, ValueError):
            return None
        if length < 0:
            return None
        return self.rfile.read(length) if length else b""

    def _handle(self) -> None:
        # The body is drained unconditionally, for *every* method: a
        # client that sends a body with GET or DELETE must not leave
        # its bytes in the stream to be parsed as the next request line.
        body = self._drain_body()
        if body is None:
            self._reply(400, json_dumps_bytes(
                {"error": "malformed Content-Length"}), announce_close=True)
            return
        headers = {name.lower(): value
                   for name, value in self.headers.items()}
        reply = self.dialect.handle(self.command, self.path, headers, body)
        self._reply(reply.status, reply.body, etag=reply.etag,
                    announce_close=reply.close)
        if self.dialect.force_close:
            # Unannounced close *after* the reply: the stale-keep-alive
            # test hook (see BrokerDialect.force_close).
            self.close_connection = True

    do_GET = _handle    # noqa: N815 - http.server naming
    do_PUT = _handle    # noqa: N815
    do_POST = _handle   # noqa: N815
    do_DELETE = _handle  # noqa: N815

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        pass  # the dialect emits one structured access line per request

    def log_message(self, fmt: str, *args) -> None:  # noqa: D102
        # http.server's own messages — parse errors the dialect never
        # sees — routed through the same stderr structured logger as the
        # dialect's access lines (no bare interleaved prints).
        if self.dialect is not None and self.dialect.verbose:
            self.dialect.log.event("http", message=fmt % args,
                                   client=self.address_string())


def make_server(host: str = "127.0.0.1", port: int = 0,
                data_dir: Optional[str] = None,
                verbose: bool = False,
                lock_stripes: int = DEFAULT_LOCK_STRIPES,
                dialect: Optional[BrokerDialect] = None
                ) -> ThreadingHTTPServer:
    """Build (but don't start) a thread-core broker HTTP server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``).  With ``data_dir`` the store is
    disk-backed and survives restarts; otherwise it is in-memory.
    A pre-built ``dialect`` overrides ``data_dir``/``lock_stripes``
    (how :class:`Broker` shares one dialect across cores).
    """
    if dialect is None:
        store: QueueTransport = (FsTransport(data_dir) if data_dir
                                 else MemoryTransport())
        dialect = BrokerDialect(store, StripeLocks(lock_stripes),
                                verbose=verbose)
    if dialect.core_name is None:
        dialect.core_name = "thread"
    handler = type("BoundBrokerHandler", (_BrokerHandler,),
                   {"dialect": dialect})
    ThreadingHTTPServer.allow_reuse_address = True
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.dialect = dialect  # type: ignore[attr-defined]
    return server


# ---------------------------------------------------------------------------
# asyncio core: a selector event loop driving the same dialect
# ---------------------------------------------------------------------------

class _BadRequest(Exception):
    """The connection's byte stream is not a parseable HTTP request."""


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, str,
                                            Dict[str, str], bytes]]:
    """Parse one HTTP/1.x request off the stream.

    Returns ``(method, target, version, headers, body)`` with lowercase
    header names, ``None`` on a clean EOF between requests.  Raises
    :class:`_BadRequest` when the stream cannot be framed (garbage
    request line, malformed or negative ``Content-Length``, unbounded
    headers) — the caller answers 400 and closes, because there is no
    knowing where the broken request ends.  The body is read for *every*
    method, so a GET or DELETE that arrives with a body can never desync
    the keep-alive stream.
    """
    # One readuntil pulls the whole head (request line + headers) off the
    # buffer in a single pass — measurably cheaper than a readline per
    # header on the broker's hot path.
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        leftover = error.partial.strip(b"\r\n")
        if not leftover:
            return None  # clean EOF between requests (or stray CRLFs)
        if b"\r\n" in error.partial or b"\n" in error.partial:
            return None  # EOF mid-headers: peer went away, just close
        raise _BadRequest(f"bad request line: {error.partial!r}")
    except asyncio.LimitOverrunError:
        raise _BadRequest("request head too large")
    # Tolerate stray CRLFs between pipelined requests (RFC 7230 §3.5),
    # as http.server does.
    lines = head[:-4].lstrip(b"\r\n").split(b"\r\n")
    parts = lines[0].decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest(f"bad request line: {lines[0]!r}")
    method, target, version = parts
    if len(lines) - 1 > _MAX_HEADERS:
        raise _BadRequest("too many headers")
    headers: Dict[str, str] = {}
    for hline in lines[1:]:
        if not hline:
            continue
        name, sep, value = hline.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest(f"bad header line: {hline!r}")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "").strip()
    if raw_length:
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequest(f"malformed Content-Length: {raw_length!r}")
        if length < 0:
            raise _BadRequest(f"negative Content-Length: {raw_length!r}")
    else:
        length = 0
    body = await reader.readexactly(length) if length else b""
    return method, target, version, headers, body


def _render_response(status: int, body: bytes, etag: Optional[str],
                     announce_close: bool) -> bytes:
    """One response as a single ``bytes`` — headers and body leave in one
    ``write`` (with TCP_NODELAY there is no Nagle stall to dodge, but one
    syscall per response is still the cheap shape)."""
    reason = http.client.responses.get(status, "")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Server: {SERVER_VERSION}",
             f"Content-Length: {len(body)}"]
    if etag:
        lines.append(f"ETag: {etag}")
    if announce_close:
        lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _serve_connection(dialect: BrokerDialect,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one keep-alive connection until close/EOF/unframeable bytes."""
    while True:
        try:
            request = await _read_request(reader)
        except _BadRequest:
            # The stream cannot be re-synchronized: announce the close so
            # a well-behaved client does not pool the connection.
            try:
                writer.write(_render_response(
                    400,
                    json_dumps_bytes({"error": "malformed request"}),
                    None, announce_close=True))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            return
        except (asyncio.IncompleteReadError, ConnectionError,
                TimeoutError, ValueError, OSError):
            return  # peer vanished mid-request (or overlong line)
        if request is None:
            return  # clean EOF between requests
        method, target, version, headers, body = request
        try:
            reply = dialect.handle(method, target, headers, body)
        except Exception:  # noqa: BLE001 - a handler bug must not kill the core
            reply = _Reply(500)
        close = (reply.close or version == "HTTP/1.0"
                 or headers.get("connection", "").strip().lower() == "close")
        announce = close
        if dialect.force_close:
            # Unannounced close after the reply: the stale-keep-alive
            # test hook (see BrokerDialect.force_close).
            close, announce = True, False
        # Access lines come from the dialect itself (stderr, structured)
        # — verbose output no longer interleaves with program stdout.
        try:
            writer.write(_render_response(reply.status, reply.body,
                                          reply.etag, announce))
            await writer.drain()
        except (ConnectionError, OSError):
            return
        if close:
            return


class Broker:
    """An embeddable broker: either network core on a background thread.

    For tests, demos and single-process fleets::

        with Broker(data_dir="…/state") as broker:
            transport = HttpTransport(broker.url)

    ``core`` selects the network core — ``"asyncio"`` (default) or
    ``"thread"`` — falling back to the ``REPRO_BROKER_CORE`` environment
    variable (how CI runs the HTTP test leg once per core).  Both cores
    share one :class:`BrokerDialect`, so the wire behaviour is identical.

    ``stop()`` (or leaving the ``with`` block) shuts the listener down;
    it is idempotent and safe to call before :meth:`start` (it just
    releases the port).  With ``data_dir`` a new ``Broker`` over the
    same directory resumes the exact queue state — including live
    leases, since ETags are content-derived.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 data_dir: Optional[str] = None, verbose: bool = False,
                 lock_stripes: int = DEFAULT_LOCK_STRIPES,
                 core: Optional[str] = None):
        core = core or os.environ.get("REPRO_BROKER_CORE") or "asyncio"
        if core not in ("asyncio", "thread"):
            raise ValueError(f"unknown broker core: {core!r} "
                             "(expected 'asyncio' or 'thread')")
        self.core = core
        store: QueueTransport = (FsTransport(str(data_dir)) if data_dir
                                 else MemoryTransport())
        self.dialect = BrokerDialect(store, StripeLocks(lock_stripes),
                                     verbose=verbose)
        self.dialect.core_name = core
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._sock: Optional[socket.socket] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        if core == "thread":
            self._server = make_server(host=host, port=port,
                                       dialect=self.dialect)
            self.host, self.port = self._server.server_address[:2]
        else:
            # Bind in the constructor so the port is known (and the URL
            # printable) before start() — exactly like the thread core.
            self._sock = socket.create_server((host, port))
            self.host, self.port = self._sock.getsockname()[:2]

    @property
    def url(self) -> str:
        """Base URL workers point ``--queue`` at."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "Broker":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        if self.core == "thread":
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"broker-{self.port}", daemon=True)
            self._thread.start()
            return self
        self._thread = threading.Thread(target=self._run_loop,
                                        name=f"broker-{self.port}",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("broker event loop failed to start")
        if self._start_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise RuntimeError(
                f"broker event loop failed to start: {self._start_error}")
        return self

    def serve_forever(self) -> None:
        """Serve on the *calling* thread (the CLI path); returns after
        :meth:`stop` or ``KeyboardInterrupt``."""
        if self.core == "thread":
            try:
                self._server.serve_forever()
            finally:
                self._server.server_close()
            return
        self._run_loop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        server = None
        try:
            try:
                server = loop.run_until_complete(asyncio.start_server(
                    self._client_connected, sock=self._sock))
            except BaseException as exc:  # surface bind/listen failures
                self._start_error = exc
                raise
            finally:
                self._started.set()
            loop.run_forever()
        except KeyboardInterrupt:
            pass
        finally:
            if server is not None:
                server.close()
            try:
                # Deliberately no Server.wait_closed(): it would wait for
                # the workers' pooled keep-alive connections, which never
                # close on their own.  Cancelling the connection tasks
                # tears them down immediately.
                tasks = asyncio.all_tasks(loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    loop.run_until_complete(
                        asyncio.gather(*tasks, return_exceptions=True))
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()
                self._loop = None

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - best effort
                pass
        try:
            await _serve_connection(self.dialect, reader, writer)
        except asyncio.CancelledError:
            # Broker stopping: the connection task is being torn down.
            # Swallow the cancellation so asyncio.streams' done-callback
            # does not log it as an unhandled exception.
            pass
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass

    def stop(self) -> None:
        """Stop serving and release the port.

        Idempotent, and safe to call on a broker that was never started:
        the thread core's ``shutdown()`` is only invoked when
        ``serve_forever`` is actually running (calling it otherwise
        blocks forever on a loop that never ran), and the asyncio core
        just closes the listening socket when no loop exists.
        """
        thread, self._thread = self._thread, None
        if self.core == "thread":
            if thread is not None:
                self._server.shutdown()
                thread.join(timeout=5.0)
            self._server.server_close()
            return
        loop = self._loop
        if thread is not None and loop is not None:
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:  # loop already closed
                pass
            thread.join(timeout=5.0)
        if self._sock is not None:
            # No-op after a started loop ran (start_server took ownership
            # and closed it); releases the port when start() never ran.
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "Broker":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: serve until interrupted; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.dist.server",
        description="HTTP broker for distributed campaign work queues "
                    "(S3-style GET/PUT/DELETE with ETag conditional "
                    "requests, /batch, /claim and paginated /list; see "
                    "docs/distributed.md).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1; use 0.0.0.0 "
                             "to accept remote workers)")
    parser.add_argument("--port", type=int, default=8123,
                        help="TCP port (default 8123; 0 picks a free port)")
    parser.add_argument("--data-dir", default=None,
                        help="persist queue state under this directory so "
                             "a broker restart resumes mid-campaign "
                             "(default: in-memory, state dies with the "
                             "process)")
    parser.add_argument("--core", choices=("asyncio", "thread"),
                        default=None,
                        help="network core (default: $REPRO_BROKER_CORE or "
                             "asyncio); 'thread' keeps the legacy "
                             "one-OS-thread-per-connection server")
    parser.add_argument("--lock-stripes", type=int,
                        default=DEFAULT_LOCK_STRIPES,
                        help="number of striped mutation locks (default "
                             f"{DEFAULT_LOCK_STRIPES}); mutations on "
                             "different key prefixes proceed concurrently")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
    args = parser.parse_args(argv)

    broker = Broker(host=args.host, port=args.port, data_dir=args.data_dir,
                    verbose=args.verbose, lock_stripes=args.lock_stripes,
                    core=args.core)
    backing = args.data_dir or "memory (volatile)"
    # The listening line is *program output* (scripts read the URL from
    # it) and stays on stdout; every diagnostic goes through the
    # dialect's structured stderr logger.
    print(f"queue broker listening on {broker.url} "
          f"(core: {broker.core}, store: {backing})", flush=True)
    log = StructLogger("broker")
    try:
        broker.serve_forever()
    except KeyboardInterrupt:
        log.event("shutdown", reason="keyboard-interrupt")
    finally:
        broker.stop()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
