"""Incremental aggregation: query a grid while workers are still draining it.

A large campaign spends minutes-to-hours in flight; waiting for the last
job before looking at any result wastes the first ones.
:func:`snapshot_campaign` materializes a
:class:`~repro.campaign.aggregate.CampaignResult` from whatever subset of a
queue's jobs has completed *right now* — in deterministic job order, so two
snapshots at the same completion state aggregate identically — together
with explicit accounting of what is still ``pending``, currently
``running`` and terminally ``failed``.  Every table/figure/series helper of
``CampaignResult`` works on the partial result unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.campaign.aggregate import CampaignResult
from repro.campaign.dist.queue import WorkQueue
from repro.campaign.jobs import JobResult
from repro.campaign.spec import SweepSpec


@dataclass
class CampaignSnapshot:
    """A point-in-time view of a (possibly partially drained) campaign.

    ``result`` aggregates every job that has *completed* — successfully or
    with a captured workload error — in spec expansion order.  The three
    key lists account for everything else:

    * ``pending``: not yet claimed, not yet enqueued, or claimed by a
      worker whose lease has expired (a crashed worker's job is
      requeueable work, not progress — reported as pending even before a
      scavenger has moved the ticket back);
    * ``running``: currently claimed under a live lease;
    * ``failed``: terminally failed — dead-lettered after exhausting retry
      attempts, or completed with a workload error (those also appear in
      ``result`` so their error strings stay queryable).

    ``shards_reporting`` is ``(reporting, total)`` for sharded fleets —
    ``(1, 2)`` means one of two shards has a tripped circuit breaker and
    the snapshot may undercount its keys — and ``None`` for single-shard
    queues, where the question does not arise.
    """

    spec: SweepSpec
    result: CampaignResult
    pending: List[str] = field(default_factory=list)
    running: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    total: int = 0
    shards_reporting: Optional[Tuple[int, int]] = None

    @property
    def done(self) -> int:
        """Jobs with a persisted result (including completed-with-error)."""
        return len(self.result)

    @property
    def complete(self) -> bool:
        """True once no job is pending or running (failures included)."""
        return not self.pending and not self.running

    @property
    def progress(self) -> float:
        """Fraction of the grid in a terminal state (done or dead)."""
        if self.total == 0:
            return 1.0
        done_ids = {result.job_id for result in self.result}
        dead = sum(1 for key in self.failed if key not in done_ids)
        return (self.done + dead) / self.total

    def summary(self) -> str:
        """One human-readable progress line for status displays."""
        line = (f"campaign {self.spec.name!r}: {self.done}/{self.total} done, "
                f"{len(self.running)} running, {len(self.pending)} pending, "
                f"{len(self.failed)} failed "
                f"({100.0 * self.progress:.0f}% terminal)")
        if self.shards_reporting is not None:
            up, shards = self.shards_reporting
            if up < shards:
                line += f" [{up} of {shards} shards reporting]"
        return line


def snapshot_campaign(spec: SweepSpec, queue: WorkQueue) -> CampaignSnapshot:
    """Aggregate whatever subset of ``spec``'s jobs the queue has finished.

    Jobs the queue has never seen count as pending, so a snapshot taken
    before (or halfway through) enqueueing is still truthful.
    """
    jobs = spec.expand()
    # Sharded fleets know how many of their shards are answering; a
    # snapshot taken while a breaker is open must say so rather than
    # pass a partial census off as the whole campaign.
    reporting: Optional[Tuple[int, int]] = None
    probe = getattr(queue.transport, "shards_reporting", None)
    if callable(probe):
        reporting = probe()
    results = queue.results()
    dead = queue.dead()
    # Live leases only: a claim whose worker stopped heartbeating is
    # requeueable, and reporting it as "running" would make a stalled
    # fleet look healthy forever.
    claimed = set(queue.live_claimed_keys())

    completed: List[JobResult] = []
    pending: List[str] = []
    running: List[str] = []
    failed: List[str] = []
    for job in jobs:
        key = job.job_id
        if key in results:
            result = results[key]
            completed.append(result)
            if not result.ok:
                failed.append(key)
        elif key in dead:
            failed.append(key)
        elif key in claimed:
            running.append(key)
        else:
            pending.append(key)

    result = CampaignResult(
        spec=spec,
        results=completed,
        executor="distributed",
        meta={"incremental": {
            "total": len(jobs),
            "done": len(completed),
            "pending": len(pending),
            "running": len(running),
            "failed": len(failed),
            "shards_reporting": (list(reporting)
                                 if reporting is not None else None),
        }},
    )
    return CampaignSnapshot(spec=spec, result=result, pending=pending,
                            running=running, failed=failed, total=len(jobs),
                            shards_reporting=reporting)
