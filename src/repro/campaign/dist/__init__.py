"""Distributed campaign execution: durable queue, transports, worker fleet.

The ROADMAP's distributed-executor seam, realized as cooperating pieces
that any mix of threads, processes and hosts can participate in:

* :class:`~repro.campaign.dist.transport.QueueTransport` — the pluggable
  storage contract (get/put/compare-and-swap/list/delete on opaque keys,
  plus batch ``get_many``/``put_many``/``delete_many`` and paginated
  ``list_page`` for throughput) with three implementations:
  :class:`~repro.campaign.dist.transport.
  FsTransport` (shared directory), :class:`~repro.campaign.dist.transport.
  MemoryTransport` (in-process, thread fleets) and
  :class:`~repro.campaign.dist.transport.HttpTransport` (S3-style REST
  against the :mod:`repro.campaign.dist.server` broker,
  ``python -m repro.campaign.dist.server``, asyncio-cored by default).
  The HTTP transport also speaks ``POST /claim`` — the whole claim scan
  runs broker-side in one round trip, with a client-side fallback
  (:class:`~repro.campaign.dist.transport.ClaimUnsupported`) for brokers
  that predate the endpoint.  The result cache and the persisted cost
  model ride the same contract
  (:func:`~repro.campaign.cache.open_cache`), so broker fleets
  deduplicate without any shared filesystem.
  :class:`~repro.campaign.dist.sharding.ShardedTransport` scales the
  seam horizontally: a comma-separated broker list
  (``--queue http://b1:8123,http://b2:8123``) consistent-hash-routes
  each job's document family to one shard, scatter-gathers listings and
  batches, and guards resharding with a per-shard ``meta/epoch``
  handshake.  Each shard sits behind a
  :class:`~repro.campaign.dist.breaker.CircuitBreaker`, so a dead broker
  is shed fast instead of stalling every call, and ``degraded_reads=True``
  turns scatter-gather reads into
  :class:`~repro.campaign.dist.transport.DegradedResult`-tagged partials
  ("N of M shards reporting").
  :class:`~repro.campaign.dist.chaos.ChaosTransport` wraps any transport
  with a deterministic :class:`~repro.campaign.dist.chaos.FaultPlan`
  (seeded error rates, latency, partition windows, torn writes) for
  failure-injection tests — see ``docs/robustness.md``;
* :class:`~repro.campaign.dist.queue.WorkQueue` — durable work queue over
  any transport, with conditional-create claims whose documents double as
  heartbeat-renewed leases, a retry policy and a max-attempt dead-letter
  state (``retry_dead()`` is the recovery path);
* :class:`~repro.campaign.dist.worker.Worker` (CLI:
  ``python -m repro.campaign.dist.worker --queue DIR_OR_URL``) — the
  claim, cache-deduplicate, execute, heartbeat loop;
* :class:`~repro.campaign.dist.costmodel.CostModel` — per-case runtime
  estimates learned from prior results, driving longest-job-first order —
  and :class:`~repro.campaign.dist.costmodel.AutoscalePolicy`, which turns
  queue depth and cost backlog into a desired fleet size;
* :func:`~repro.campaign.dist.incremental.snapshot_campaign` — incremental
  aggregation: a partially drained grid is already queryable, with explicit
  pending/running/failed accounting;
* :class:`~repro.campaign.dist.executor.DistributedExecutor` — ties them
  together behind the same ``map(fn, jobs)`` seam as the in-process
  executors, so ``run_campaign(spec, executor=DistributedExecutor(...))``
  is the only change a campaign needs.

The whole stack is instrumented through :mod:`repro.campaign.obs`
(metrics registry, job spans, structured logs): the broker serves its
counters on ``GET /stats``, workers attach throughput snapshots to
heartbeat renewals, the executor can write a Perfetto-loadable
``trace.json`` per ``map`` (``trace_path=``), and
``python -m repro.campaign.dist.stats <broker-url> --watch`` renders the
live fleet summary.

Architecture notes live in ``docs/architecture.md``; the queue state
machine, transports and operational recipes in ``docs/distributed.md``,
``docs/cookbook.md`` and ``docs/observability.md``.
"""

from repro.campaign.dist.breaker import CircuitBreaker
from repro.campaign.dist.chaos import ChaosTransport, FaultPlan
from repro.campaign.dist.costmodel import AutoscalePolicy, CostModel
from repro.campaign.dist.executor import DistributedExecutor
from repro.campaign.dist.incremental import CampaignSnapshot, snapshot_campaign
from repro.campaign.dist.queue import (
    WorkItem,
    WorkQueue,
    cost_for_priority,
    priority_for_cost,
)
from repro.campaign.dist.sharding import EpochMismatch, ShardedTransport
from repro.campaign.dist.transport import (
    ClaimUnsupported,
    DegradedResult,
    FsTransport,
    HttpTransport,
    MemoryTransport,
    QueueTransport,
    TransportError,
    is_degraded,
    transport_from_address,
)


def __getattr__(name: str):
    # Lazy so `python -m repro.campaign.dist.worker` (and .server) do not
    # find the module pre-imported in sys.modules (runpy's double-import
    # warning).
    if name == "Worker":
        from repro.campaign.dist.worker import Worker

        return Worker
    if name == "Broker":
        from repro.campaign.dist.server import Broker

        return Broker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AutoscalePolicy",
    "Broker",
    "CampaignSnapshot",
    "ChaosTransport",
    "CircuitBreaker",
    "ClaimUnsupported",
    "CostModel",
    "DegradedResult",
    "DistributedExecutor",
    "EpochMismatch",
    "FaultPlan",
    "FsTransport",
    "HttpTransport",
    "MemoryTransport",
    "QueueTransport",
    "ShardedTransport",
    "TransportError",
    "WorkItem",
    "WorkQueue",
    "Worker",
    "cost_for_priority",
    "is_degraded",
    "priority_for_cost",
    "snapshot_campaign",
    "transport_from_address",
]
