"""Distributed campaign execution: durable queue, worker fleet, scheduling.

The ROADMAP's distributed-executor seam, realized as four cooperating
pieces, all file/JSON-backed so any mix of processes (and, over a shared
filesystem, hosts) can participate:

* :class:`~repro.campaign.dist.queue.WorkQueue` — durable work queue with
  atomic claim/lease/complete transitions, heartbeat-renewed leases, a
  retry policy and a max-attempt dead-letter state;
* :class:`~repro.campaign.dist.worker.Worker` (CLI:
  ``python -m repro.campaign.dist.worker --queue DIR``) — the claim,
  cache-deduplicate, execute, heartbeat loop;
* :class:`~repro.campaign.dist.costmodel.CostModel` — per-case runtime
  estimates learned from prior results, driving longest-job-first order;
* :func:`~repro.campaign.dist.incremental.snapshot_campaign` — incremental
  aggregation: a partially drained grid is already queryable, with explicit
  pending/running/failed accounting;
* :class:`~repro.campaign.dist.executor.DistributedExecutor` — ties them
  together behind the same ``map(fn, jobs)`` seam as the in-process
  executors, so ``run_campaign(spec, executor=DistributedExecutor(...))``
  is the only change a campaign needs.
"""

from repro.campaign.dist.costmodel import CostModel
from repro.campaign.dist.executor import DistributedExecutor
from repro.campaign.dist.incremental import CampaignSnapshot, snapshot_campaign
from repro.campaign.dist.queue import WorkItem, WorkQueue, priority_for_cost


def __getattr__(name: str):
    # Lazy so `python -m repro.campaign.dist.worker` does not find the
    # module pre-imported in sys.modules (runpy's double-import warning).
    if name == "Worker":
        from repro.campaign.dist.worker import Worker

        return Worker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CampaignSnapshot",
    "CostModel",
    "DistributedExecutor",
    "WorkItem",
    "WorkQueue",
    "Worker",
    "priority_for_cost",
    "snapshot_campaign",
]
