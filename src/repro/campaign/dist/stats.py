"""Live fleet dashboard: ``python -m repro.campaign.dist.stats <broker-url>``.

Polls a running broker's ``GET /stats`` endpoint (see
:mod:`repro.campaign.dist.server`) together with the queue-state listings
and renders a one-line-per-tick fleet summary::

    12:04:07 up 312s | 184.2 req/s | inflight 2 | pending 40 claimed 4 \
done 156 dead 0 | 1.2MB in 8.4MB out | 4 workers @ 12.6 jobs/s

The dashboard is **read-only and constructor-free**: it talks raw
:class:`~repro.campaign.dist.transport.HttpTransport` listings instead of
building a :class:`~repro.campaign.dist.queue.WorkQueue` (whose
constructor persists queue policy — a *dashboard* must never write to the
queue it is watching).  Request rates come from deltas of the broker's
``broker_requests_total`` counter between ticks; per-worker throughput
comes from the metrics snapshots workers attach to heartbeat renewals.

Against a broker that predates ``GET /stats`` the server columns degrade
to ``-`` and the queue-depth columns keep working.  Exit status: ``0``
after a clean run, ``2`` on usage errors, ``3`` when the broker is
unreachable.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.dist.transport import HttpTransport, TransportError
from repro.campaign.jsonio import json_loads_or_none
from repro.campaign.obs import counter_total, series_value

#: Listing scan cap per queue state — beyond this the depth column shows a
#: ``+`` suffix (lower bound).  A dashboard tick must not page a
#: million-ticket keyspace.
SCAN_CAP = 10_000

_STATES = ("pending", "claims", "results", "dead")


def queue_depths(transport: HttpTransport,
                 cap: int = SCAN_CAP) -> Dict[str, Tuple[int, bool]]:
    """Count keys per queue state from paginated listings alone.

    Returns ``{state: (count, truncated)}``; ``truncated`` means the scan
    hit ``cap`` and the count is a lower bound.  No record reads.
    """
    depths: Dict[str, Tuple[int, bool]] = {}
    for state in _STATES:
        count, truncated, start_after = 0, False, ""
        while True:
            page, token = transport.list_page(
                f"{state}/", max(1, min(1000, cap)), start_after=start_after)
            count += len(page)
            if token is None:
                break
            if count >= cap:
                truncated = True
                break
            start_after = token
        depths[state] = (count, truncated)
    return depths


def worker_reports(transport: HttpTransport,
                   now: Optional[float] = None) -> Dict[str, Dict[str, Any]]:
    """Freshest per-worker metrics snapshot from live claim documents.

    Workers attach :meth:`~repro.campaign.dist.worker.Worker.
    metrics_snapshot` to every heartbeat renewal, so the claims/ listing
    doubles as a fleet health board.  Mirrors
    :meth:`~repro.campaign.dist.queue.WorkQueue.worker_metrics` without
    constructing a queue (and thus without writing queue policy).
    """
    now = time.time() if now is None else now
    keys = [key for key in transport.list("claims/") if key.endswith(".json")]
    out: Dict[str, Dict[str, Any]] = {}
    for got in transport.get_many(keys):
        lease = json_loads_or_none(got[0]) if got is not None else None
        if not lease or float(lease.get("expires_at", 0.0)) <= now:
            continue
        metrics = lease.get("metrics")
        worker = str(lease.get("worker", "") or "")
        if not worker or not isinstance(metrics, dict):
            continue
        held = out.get(worker)
        if (held is None or float(metrics.get("at", 0.0))
                >= float(held.get("at", 0.0))):
            out[worker] = metrics
    return out


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) < 1024.0:
        return f"{value:.0f}B"
    for unit in ("KB", "MB", "GB"):
        value /= 1024.0
        if abs(value) < 1024.0 or unit == "GB":
            return f"{value:.1f}{unit}"
    return f"{value:.1f}GB"  # pragma: no cover - loop always returns


def _depth_cell(depths: Dict[str, Tuple[int, bool]], state: str) -> str:
    count, truncated = depths.get(state, (0, False))
    return f"{count}{'+' if truncated else ''}"


class FleetSampler:
    """One broker poll per :meth:`line` call; remembers the previous
    sample so counters render as rates."""

    def __init__(self, transport: HttpTransport):
        self.transport = transport
        self._prev_requests: Optional[float] = None
        self._prev_at: Optional[float] = None

    def line(self) -> str:
        """Poll once and render the tick as a single summary line."""
        stats = self.transport.stats()       # None against an old broker
        depths = queue_depths(self.transport)
        workers = worker_reports(self.transport)
        now = time.monotonic()
        clock = time.strftime("%H:%M:%S")

        uptime = rate = inflight = bytes_in = bytes_out = None
        if stats is not None:
            server = stats.get("server") or {}
            snapshot = stats.get("metrics") or {}
            uptime = float(server.get("uptime_seconds", 0.0))
            requests = counter_total(snapshot, "broker_requests_total")
            if self._prev_requests is not None and now > self._prev_at:
                rate = max(0.0, (requests - self._prev_requests)
                           / (now - self._prev_at))
            self._prev_requests, self._prev_at = requests, now
            inflight = series_value(snapshot, "gauges",
                                    "broker_inflight_requests")
            bytes_in = counter_total(snapshot, "broker_bytes_in_total")
            bytes_out = counter_total(snapshot, "broker_bytes_out_total")

        throughput = sum(float(m.get("jobs_per_second", 0.0))
                         for m in workers.values())
        up_cell = f"{uptime:.0f}s" if uptime is not None else "-"
        rate_cell = (f"{rate:.1f} req/s" if rate is not None
                     else ("- req/s" if stats is None else "... req/s"))
        inflight_cell = (f"{inflight:.0f}" if inflight is not None else "-")
        return (f"{clock} up {up_cell} | {rate_cell} "
                f"| inflight {inflight_cell} "
                f"| pending {_depth_cell(depths, 'pending')} "
                f"claimed {_depth_cell(depths, 'claims')} "
                f"done {_depth_cell(depths, 'results')} "
                f"dead {_depth_cell(depths, 'dead')} "
                f"| {_fmt_bytes(bytes_in)} in {_fmt_bytes(bytes_out)} out "
                f"| {len(workers)} workers @ {throughput:.1f} jobs/s")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.dist.stats",
        description="Live fleet summary for a repro campaign broker.")
    parser.add_argument("broker", help="broker URL, e.g. http://host:8080")
    parser.add_argument("--watch", action="store_true",
                        help="keep polling until interrupted "
                             "(default: one line and exit)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls with --watch "
                             "(default: 2.0)")
    parser.add_argument("--ticks", type=int, default=0,
                        help="with --watch, stop after N lines "
                             "(0 = until interrupted; used by tests)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not str(args.broker).startswith(("http://", "https://")):
        print(f"error: not a broker URL: {args.broker!r}", file=sys.stderr)
        return 2
    transport = HttpTransport(args.broker)
    sampler = FleetSampler(transport)
    ticks = 0
    try:
        while True:
            try:
                print(sampler.line(), flush=True)
            except (TransportError, OSError) as exc:
                print(f"error: broker unreachable: {exc}", file=sys.stderr)
                return 3
            ticks += 1
            if not args.watch or (args.ticks and ticks >= args.ticks):
                return 0
            time.sleep(max(0.0, args.interval))
    except KeyboardInterrupt:
        return 0
    finally:
        transport.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
