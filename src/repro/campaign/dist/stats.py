"""Live fleet dashboard: ``python -m repro.campaign.dist.stats <broker-url>``.

Polls a running broker's ``GET /stats`` endpoint (see
:mod:`repro.campaign.dist.server`) together with the queue-state listings
and renders a one-line-per-tick fleet summary::

    12:04:07 up 312s | 184.2 req/s | inflight 2 | pending 40 claimed 4 \
done 156 dead 0 | 1.2MB in 8.4MB out | 4 workers @ 12.6 jobs/s

The dashboard is **read-only and constructor-free**: it talks raw
:class:`~repro.campaign.dist.transport.HttpTransport` listings instead of
building a :class:`~repro.campaign.dist.queue.WorkQueue` (whose
constructor persists queue policy — a *dashboard* must never write to the
queue it is watching).  Request rates come from deltas of the broker's
``broker_requests_total`` counter between ticks; per-worker throughput
comes from the metrics snapshots workers attach to heartbeat renewals.

A sharded fleet is watched with the same comma-separated address the
workers use (``python -m repro.campaign.dist.stats
http://b1:8123,http://b2:8123``): every shard is polled each tick and
the aggregate summary line (depths summed, request rates summed, worker
snapshots merged freshest-per-worker) is followed by one indented row
per shard.  The dashboard polls per-shard transports directly rather
than constructing a router, because the router's epoch handshake writes
``meta/epoch`` — and a dashboard must never write.

Against a broker that predates ``GET /stats`` the server columns degrade
to ``-`` and the queue-depth columns keep working.  An *unreachable*
shard renders as a ``DOWN`` row while the aggregate line keeps summing
the reachable shards (``N/M shards``) — a dashboard watching a degraded
fleet must show the degradation, not die of it.  Exit status: ``0``
after a clean run, ``2`` on usage errors, ``3`` only when **no** shard
answers.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.dist.transport import HttpTransport, TransportError
from repro.campaign.jsonio import json_loads_or_none
from repro.campaign.obs import counter_total, series_value

#: Listing scan cap per queue state — beyond this the depth column shows a
#: ``+`` suffix (lower bound).  A dashboard tick must not page a
#: million-ticket keyspace.
SCAN_CAP = 10_000

_STATES = ("pending", "claims", "results", "dead")


def queue_depths(transport: HttpTransport,
                 cap: int = SCAN_CAP) -> Dict[str, Tuple[int, bool]]:
    """Count keys per queue state from paginated listings alone.

    Returns ``{state: (count, truncated)}``; ``truncated`` means the scan
    hit ``cap`` and the count is a lower bound.  No record reads.
    """
    depths: Dict[str, Tuple[int, bool]] = {}
    for state in _STATES:
        count, truncated, start_after = 0, False, ""
        while True:
            page, token = transport.list_page(
                f"{state}/", max(1, min(1000, cap)), start_after=start_after)
            count += len(page)
            if token is None:
                break
            if count >= cap:
                truncated = True
                break
            start_after = token
        depths[state] = (count, truncated)
    return depths


def worker_reports(transport: HttpTransport,
                   now: Optional[float] = None) -> Dict[str, Dict[str, Any]]:
    """Freshest per-worker metrics snapshot from live claim documents.

    Workers attach :meth:`~repro.campaign.dist.worker.Worker.
    metrics_snapshot` to every heartbeat renewal, so the claims/ listing
    doubles as a fleet health board.  Mirrors
    :meth:`~repro.campaign.dist.queue.WorkQueue.worker_metrics` without
    constructing a queue (and thus without writing queue policy).
    """
    now = time.time() if now is None else now
    keys = [key for key in transport.list("claims/") if key.endswith(".json")]
    out: Dict[str, Dict[str, Any]] = {}
    for got in transport.get_many(keys):
        lease = json_loads_or_none(got[0]) if got is not None else None
        if not lease or float(lease.get("expires_at", 0.0)) <= now:
            continue
        metrics = lease.get("metrics")
        worker = str(lease.get("worker", "") or "")
        if not worker or not isinstance(metrics, dict):
            continue
        held = out.get(worker)
        if (held is None or float(metrics.get("at", 0.0))
                >= float(held.get("at", 0.0))):
            out[worker] = metrics
    return out


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) < 1024.0:
        return f"{value:.0f}B"
    for unit in ("KB", "MB", "GB"):
        value /= 1024.0
        if abs(value) < 1024.0 or unit == "GB":
            return f"{value:.1f}{unit}"
    return f"{value:.1f}GB"  # pragma: no cover - loop always returns


def _depth_cell(depths: Dict[str, Tuple[int, bool]], state: str) -> str:
    count, truncated = depths.get(state, (0, False))
    return f"{count}{'+' if truncated else ''}"


class _ShardSample:
    """One shard's poll: server stats, queue depths, worker reports.

    An unreachable shard yields a *down* sample (:meth:`down_sample`):
    empty depths and workers, ``error`` holding the failure — rendered
    as a ``DOWN`` row instead of killing the whole dashboard tick.
    """

    def __init__(self, transport: HttpTransport):
        self.down = False
        self.error: Optional[str] = None
        self.stats = transport.stats()       # None against an old broker
        self.depths = queue_depths(transport)
        self.workers = worker_reports(transport)
        self.uptime: Optional[float] = None
        self.requests: Optional[float] = None
        self.rate: Optional[float] = None
        self.inflight: Optional[float] = None
        self.bytes_in: Optional[float] = None
        self.bytes_out: Optional[float] = None
        if self.stats is not None:
            server = self.stats.get("server") or {}
            snapshot = self.stats.get("metrics") or {}
            self.uptime = float(server.get("uptime_seconds", 0.0))
            self.requests = counter_total(snapshot, "broker_requests_total")
            self.inflight = series_value(snapshot, "gauges",
                                         "broker_inflight_requests")
            self.bytes_in = counter_total(snapshot, "broker_bytes_in_total")
            self.bytes_out = counter_total(snapshot, "broker_bytes_out_total")

    @classmethod
    def down_sample(cls, error: BaseException) -> "_ShardSample":
        """A placeholder sample for a shard that did not answer."""
        sample = cls.__new__(cls)
        sample.down = True
        sample.error = f"{type(error).__name__}: {error}"
        sample.stats = None
        sample.depths = {}
        sample.workers = {}
        sample.uptime = None
        sample.requests = None
        sample.rate = None
        sample.inflight = None
        sample.bytes_in = None
        sample.bytes_out = None
        return sample


def _merge_depths(samples: List[_ShardSample]) -> Dict[str, Tuple[int, bool]]:
    merged: Dict[str, Tuple[int, bool]] = {}
    for state in _STATES:
        count, truncated = 0, False
        for sample in samples:
            shard_count, shard_truncated = sample.depths.get(
                state, (0, False))
            count += shard_count
            truncated = truncated or shard_truncated
        merged[state] = (count, truncated)
    return merged


def _merge_workers(samples: List[_ShardSample]) -> Dict[str, Dict[str, Any]]:
    """Fleet-wide per-worker snapshots, freshest wins.

    A worker on a sharded fleet heartbeats whichever shard holds its
    current claim, so the same worker id can appear on several shards;
    its one freshest snapshot already describes the whole process."""
    merged: Dict[str, Dict[str, Any]] = {}
    for sample in samples:
        for worker, metrics in sample.workers.items():
            held = merged.get(worker)
            if (held is None or float(metrics.get("at", 0.0))
                    >= float(held.get("at", 0.0))):
                merged[worker] = metrics
    return merged


def _sum_or_none(values: List[Optional[float]]) -> Optional[float]:
    known = [value for value in values if value is not None]
    return sum(known) if known else None


class FleetSampler:
    """One poll of every shard per :meth:`line` call; remembers the
    previous sample so counters render as rates.

    Accepts a single broker transport or a list of per-shard transports
    (one per URL in a ``http://b1,http://b2`` fleet address).  With one
    shard the output is the familiar single summary line; with several,
    the aggregate line is followed by one indented row per shard."""

    def __init__(self, transport) -> None:
        if isinstance(transport, (list, tuple)):
            self.shards: List[HttpTransport] = list(transport)
        else:
            self.shards = [transport]
        if not self.shards:
            raise ValueError("FleetSampler needs at least one shard")
        self.transport = self.shards[0]  # single-broker back-compat
        self._prev_requests: List[Optional[float]] = [None] * len(self.shards)
        self._prev_at: List[Optional[float]] = [None] * len(self.shards)

    def _poll(self) -> List[_ShardSample]:
        samples = []
        for index, shard in enumerate(self.shards):
            try:
                sample = _ShardSample(shard)
            except (TransportError, OSError) as exc:
                # One dead shard must not blind the dashboard to the
                # rest of the fleet: render it DOWN and keep polling.
                samples.append(_ShardSample.down_sample(exc))
                continue
            now = time.monotonic()
            prev_requests = self._prev_requests[index]
            prev_at = self._prev_at[index]
            if (sample.requests is not None and prev_requests is not None
                    and prev_at is not None and now > prev_at):
                sample.rate = max(0.0, (sample.requests - prev_requests)
                                  / (now - prev_at))
            if sample.requests is not None:
                self._prev_requests[index] = sample.requests
                self._prev_at[index] = now
            samples.append(sample)
        return samples

    def line(self) -> str:
        """Poll every shard once and render the tick.

        One aggregate summary line; fleets with more than one shard get
        an extra indented row per shard under it.  Unreachable shards
        render as ``DOWN`` rows while the aggregate line sums the
        reachable shards (with an ``N/M shards`` cell); only when **no**
        shard answers does the tick raise ``TransportError`` (the CLI
        maps that to exit code 3)."""
        samples = self._poll()
        up = [sample for sample in samples if not sample.down]
        if not up:
            errors = "; ".join(sample.error or "unreachable"
                               for sample in samples)
            raise TransportError(
                f"no shard answered ({len(samples)} polled): {errors}")
        clock = time.strftime("%H:%M:%S")
        depths = _merge_depths(samples)
        workers = _merge_workers(samples)
        any_stats = any(sample.stats is not None for sample in samples)
        rate = _sum_or_none([sample.rate for sample in samples])
        uptimes = [sample.uptime for sample in samples
                   if sample.uptime is not None]
        uptime = max(uptimes) if uptimes else None  # oldest shard
        inflight = _sum_or_none([sample.inflight for sample in samples])
        bytes_in = _sum_or_none([sample.bytes_in for sample in samples])
        bytes_out = _sum_or_none([sample.bytes_out for sample in samples])

        throughput = sum(float(m.get("jobs_per_second", 0.0))
                         for m in workers.values())
        up_cell = f"{uptime:.0f}s" if uptime is not None else "-"
        rate_cell = (f"{rate:.1f} req/s" if rate is not None
                     else ("- req/s" if not any_stats else "... req/s"))
        inflight_cell = (f"{inflight:.0f}" if inflight is not None else "-")
        summary = (f"{clock} up {up_cell} | {rate_cell} "
                   f"| inflight {inflight_cell} "
                   f"| pending {_depth_cell(depths, 'pending')} "
                   f"claimed {_depth_cell(depths, 'claims')} "
                   f"done {_depth_cell(depths, 'results')} "
                   f"dead {_depth_cell(depths, 'dead')} "
                   f"| {_fmt_bytes(bytes_in)} in {_fmt_bytes(bytes_out)} out "
                   f"| {len(workers)} workers @ {throughput:.1f} jobs/s")
        if len(self.shards) == 1:
            return summary
        summary += f" | {len(up)}/{len(samples)} shards"
        rows = [summary]
        for shard, sample in zip(self.shards, samples):
            url = getattr(shard, "base_url", shard)
            if sample.down:
                rows.append(f"  shard {url} | DOWN ({sample.error})")
                continue
            shard_rate = (f"{sample.rate:.1f} req/s"
                          if sample.rate is not None
                          else ("- req/s" if sample.stats is None
                                else "... req/s"))
            rows.append(
                f"  shard {url} "
                f"| {shard_rate} "
                f"| pending {_depth_cell(sample.depths, 'pending')} "
                f"claimed {_depth_cell(sample.depths, 'claims')} "
                f"done {_depth_cell(sample.depths, 'results')} "
                f"dead {_depth_cell(sample.depths, 'dead')} "
                f"| {len(sample.workers)} workers")
        return "\n".join(rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.dist.stats",
        description="Live fleet summary for a repro campaign broker.")
    parser.add_argument("broker",
                        help="broker URL, e.g. http://host:8080 — or a "
                             "comma-separated shard list "
                             "(http://b1:8123,http://b2:8123) for an "
                             "aggregate line plus per-shard rows")
    parser.add_argument("--watch", action="store_true",
                        help="keep polling until interrupted "
                             "(default: one line and exit)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls with --watch "
                             "(default: 2.0)")
    parser.add_argument("--ticks", type=int, default=0,
                        help="with --watch, stop after N lines "
                             "(0 = until interrupted; used by tests)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    urls = [part.strip() for part in str(args.broker).split(",")
            if part.strip()]
    if not urls or not all(url.startswith(("http://", "https://"))
                           for url in urls):
        print(f"error: not a broker URL: {args.broker!r}", file=sys.stderr)
        return 2
    # Per-shard transports, NOT a ShardedTransport: the router's epoch
    # handshake writes ``meta/epoch``, and a dashboard must never write
    # to the fleet it is watching.  A short retry budget keeps a DOWN
    # shard from stalling every tick behind a full backoff schedule —
    # the next poll is the dashboard's retry.
    transports = [HttpTransport(url, retries=1, retry_delay=0.1)
                  for url in urls]
    sampler = FleetSampler(transports)
    ticks = 0
    try:
        while True:
            try:
                # line() absorbs per-shard outages (DOWN rows) and raises
                # only when not a single shard answered.
                print(sampler.line(), flush=True)
            except (TransportError, OSError) as exc:
                print(f"error: broker unreachable: {exc}", file=sys.stderr)
                return 3
            ticks += 1
            if not args.watch or (args.ticks and ticks >= args.ticks):
                return 0
            time.sleep(max(0.0, args.interval))
    except KeyboardInterrupt:
        return 0
    finally:
        for transport in transports:
            transport.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
