"""The distributed executor: a worker fleet behind the ``map(fn, jobs)`` seam.

:class:`DistributedExecutor` plugs into :func:`~repro.campaign.runner.
run_campaign` exactly like the in-process executors: the orchestrator still
expands the grid, probes the cache, and aggregates — this executor only
changes *where* the pending jobs run.  ``map`` enqueues the jobs into a
durable :class:`~repro.campaign.dist.queue.WorkQueue` (ordered
longest-job-first by the learned :class:`~repro.campaign.dist.costmodel.
CostModel`), spawns N local worker processes running
``python -m repro.campaign.dist.worker``, and blocks — scavenging expired
leases and respawning dead workers — until every job reaches a terminal
state or the timeout expires.

The determinism contract survives distribution: job seeds are bound into
the :class:`~repro.campaign.spec.JobSpec` before submission and results are
keyed by content, so the aggregate is bit-identical to a serial run no
matter how many workers participated, which ones crashed, or how often a
job was retried.

With ``workers=0`` the fleet is external: ``map`` runs one in-process
worker loop to guarantee progress, and any separately launched workers
pointed at ``queue_dir`` join in (the zero-worker mode is also what the
crash-free unit tests use — the whole queue protocol without process
spawns).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.dist.costmodel import CostModel
from repro.campaign.dist.queue import WorkQueue
from repro.campaign.jobs import JobResult, execute_job
from repro.campaign.spec import JobSpec


def _src_root() -> str:
    """Directory that makes ``import repro`` work in a spawned worker."""
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


class DistributedExecutor:
    """Run campaign jobs across a fleet of worker processes.

    Parameters
    ----------
    queue_dir:
        Durable queue directory, shared with the workers.  ``None`` uses a
        per-``map`` temporary directory, removed after a clean drain.
    workers:
        Local worker processes to spawn per ``map`` call.  ``0`` means the
        fleet is external (or in-process): ``map`` drains the queue with an
        inline worker loop instead of spawning.
    cache / cache_dir:
        Shared result cache the *workers* probe before and after running —
        the cross-worker deduplication layer.  Pass the same cache to
        ``run_campaign`` so the orchestrator also serves hits up front.
    cost_model:
        Runtime estimator for longest-job-first enqueueing.  Defaults to
        the model persisted alongside ``cache`` (when given), so prior
        campaigns teach the scheduler.
    lease_seconds / max_attempts:
        Queue retry policy (see :class:`~repro.campaign.dist.queue.WorkQueue`).
        Applied when ``map`` creates a fresh queue directory; an existing
        queue keeps its persisted policy.
    timeout:
        Upper bound on one ``map`` call's wall time.  On expiry a
        ``TimeoutError`` carries the queue state summary.
    worker_extra_args:
        Per-worker extra CLI arguments (``worker_extra_args[i]`` is
        appended to worker *i*'s command line) — used by the crash-injection
        tests and available for ad-hoc debugging flags.
    """

    name = "distributed"

    def __init__(self,
                 queue_dir: Optional[os.PathLike] = None,
                 workers: int = 2,
                 cache: Optional[ResultCache] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 cost_model: Optional[CostModel] = None,
                 lease_seconds: float = 15.0,
                 max_attempts: int = 3,
                 poll_interval: float = 0.05,
                 timeout: float = 600.0,
                 worker_extra_args: Optional[Sequence[Sequence[str]]] = None,
                 progress: Optional[Callable[[str], None]] = None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.queue_dir = Path(queue_dir) if queue_dir is not None else None
        self.workers = workers
        if cache is None and cache_dir is not None:
            cache = ResultCache(cache_dir)
        self.cache = cache
        self.cost_model = cost_model
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.worker_extra_args = [list(args)
                                  for args in (worker_extra_args or [])]
        self._say = progress or (lambda _line: None)
        #: Queue of the most recent ``map`` call, for inspection/snapshots.
        self.last_queue: Optional[WorkQueue] = None
        self.respawns = 0

    @property
    def learns_costs(self) -> bool:
        """True when ``map`` itself persists wall times into a durable cost
        model — run_campaign checks this to avoid double-observing the
        same fresh results.  An explicitly passed *path-less* model takes
        precedence over the cache-adjacent default and persists nothing,
        so it must not claim the learning."""
        if self.cost_model is not None:
            return self.cost_model.path is not None
        return self.cache is not None

    # -- the executor seam -------------------------------------------------
    def map(self, fn: Callable[[JobSpec], JobResult],
            items: Sequence[JobSpec]) -> List[JobResult]:
        if fn is not execute_job:
            raise ValueError(
                "DistributedExecutor ships JobSpecs to workers that always "
                f"run repro.campaign.jobs.execute_job; cannot map {fn!r}")
        jobs = list(items)
        if not jobs:
            return []

        temp_dir = None
        if self.queue_dir is None:
            temp_dir = tempfile.mkdtemp(prefix="repro-campaign-queue-")
            queue_root = Path(temp_dir)
        else:
            queue_root = self.queue_dir
        queue = WorkQueue(queue_root, lease_seconds=self.lease_seconds,
                          max_attempts=self.max_attempts)
        self.last_queue = queue

        cost_model = self.cost_model
        if cost_model is None:
            cost_model = (CostModel.alongside(self.cache)
                          if self.cache is not None else CostModel())
        queue.enqueue_grid(jobs, cost_model=cost_model)
        self._say(f"enqueued {len(jobs)} jobs into {queue_root} "
                  f"(longest-first, {self.workers} workers)")

        procs: List[subprocess.Popen] = []
        deadline = time.monotonic() + self.timeout
        try:
            if self.workers > 0:
                procs = [self._spawn_worker(queue_root, index)
                         for index in range(self.workers)]
                self._wait_for_drain(queue, jobs, procs, deadline)
            else:
                # Imported here, not at module top: keeps the worker module
                # out of sys.modules for `python -m ...dist.worker` runs.
                from repro.campaign.dist.worker import Worker

                Worker(queue, cache=self.cache, poll_interval=self.poll_interval,
                       exit_when_drained=True, worker_id="inline",
                       deadline=deadline).run()
                self._wait_for_drain(queue, jobs, procs, deadline)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()

        results = self._collect(queue, jobs)
        cost_model.observe_many(result for result in results
                                if not result.cached)
        cost_model.save()
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
        return results

    # -- fleet management --------------------------------------------------
    def _worker_command(self, queue_root: Path, index: int) -> List[str]:
        cmd = [sys.executable, "-m", "repro.campaign.dist.worker",
               "--queue", str(queue_root),
               "--exit-when-drained",
               "--quiet",
               "--poll-interval", str(self.poll_interval),
               "--worker-id", f"w{index}-{os.getpid()}"]
        if self.cache is not None:
            cmd += ["--cache", str(self.cache.root)]
        if index < len(self.worker_extra_args):
            cmd += [str(arg) for arg in self.worker_extra_args[index]]
        return cmd

    def _spawn_worker(self, queue_root: Path, index: int) -> subprocess.Popen:
        env = os.environ.copy()
        src = _src_root()
        env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src)
        log_path = queue_root / f"worker-{index}.log"
        with open(log_path, "ab") as log:
            return subprocess.Popen(self._worker_command(queue_root, index),
                                    env=env, stdout=log,
                                    stderr=subprocess.STDOUT)

    def _wait_for_drain(self, queue: WorkQueue, jobs: List[JobSpec],
                        procs: List[subprocess.Popen],
                        deadline: float) -> None:
        keys = {job.job_id for job in jobs}
        next_scavenge = 0.0
        while True:
            # Lease scavenging is throttled to half a lease period — the
            # fastest a lease can possibly expire — so the per-tick work
            # is just the two terminal-directory listings below.
            now = time.monotonic()
            if now >= next_scavenge:
                queue.requeue_expired()
                next_scavenge = now + queue.lease_seconds / 2.0
            # Filename-derived keys only: no JSON parsing on the poll path.
            if keys <= queue.terminal_keys():
                return
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"distributed campaign did not drain within "
                    f"{self.timeout:.0f}s: {queue!r}")
            if procs and all(proc.poll() is not None for proc in procs):
                # Every worker exited (crashed or raced the drain check)
                # with work outstanding.  Respawn to finish the grid — but
                # capped: workers that can't even start (broken
                # interpreter env, unwritable queue) would otherwise spawn
                #-storm until the timeout with no diagnosis.
                if self.respawns >= max(1, self.workers):
                    codes = sorted({proc.returncode for proc in procs})
                    raise RuntimeError(
                        f"all workers exited (exit codes {codes}) with work "
                        f"outstanding, after {self.respawns} respawns: "
                        f"{queue!r} — see worker-*.log under {queue.root}")
                self.respawns += 1
                self._say(f"all workers exited with work outstanding; "
                          f"respawn #{self.respawns}")
                procs.append(self._spawn_worker(queue.root, len(procs)))
            time.sleep(self.poll_interval)

    # -- result collection -------------------------------------------------
    def _collect(self, queue: WorkQueue, jobs: List[JobSpec]) -> List[JobResult]:
        results = queue.results()
        dead = queue.dead()
        out: List[JobResult] = []
        for job in jobs:
            key = job.job_id
            if key in results:
                out.append(results[key])
                continue
            record = dead.get(key, {})
            out.append(JobResult(
                job_id=key, case=job.case, params=job.params, seed=job.seed,
                error=record.get("error", "dead-lettered"),
            ))
        return out

    def __repr__(self) -> str:
        return (f"DistributedExecutor(workers={self.workers}, "
                f"queue_dir={str(self.queue_dir) if self.queue_dir else None!r}, "
                f"lease_seconds={self.lease_seconds}, "
                f"max_attempts={self.max_attempts})")
