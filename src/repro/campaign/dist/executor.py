"""The distributed executor: a worker fleet behind the ``map(fn, jobs)`` seam.

:class:`DistributedExecutor` plugs into :func:`~repro.campaign.runner.
run_campaign` exactly like the in-process executors: the orchestrator still
expands the grid, probes the cache, and aggregates — this executor only
changes *where* the pending jobs run.  ``map`` enqueues the jobs into a
durable :class:`~repro.campaign.dist.queue.WorkQueue` (ordered
longest-job-first by the learned :class:`~repro.campaign.dist.costmodel.
CostModel`), brings up a worker fleet, and blocks — scavenging expired
leases and replacing dead workers — until every job reaches a terminal
state or the timeout expires.

The queue's storage is pluggable (:mod:`repro.campaign.dist.transport`):

* a **directory** (``queue_dir`` or a path-string ``transport``) spawns
  worker *processes* sharing the filesystem — the classic mode;
* an **``http://`` broker URL** spawns worker processes that talk to
  :mod:`repro.campaign.dist.server` — campaigns spanning hosts without a
  shared filesystem; the broker's asyncio core serves ``POST /claim``,
  collapsing each worker's claim scan into a single round trip;
* an address-less transport (e.g.
  :class:`~repro.campaign.dist.transport.MemoryTransport`) runs the fleet
  as *threads* in this process — no spawn cost, ideal for tests and
  many-tiny-job grids.

Fleet size is either fixed (``workers=N``, the default) or governed by an
:class:`~repro.campaign.dist.costmodel.AutoscalePolicy`: each scheduling
tick the executor compares the policy's desired worker count (queue depth
and cost backlog driven) with the live fleet and spawns the difference;
autoscaled workers run with an idle timeout, so the fleet *shrinks* by
starvation — never by preempting a running job.

The determinism contract survives distribution: job seeds are bound into
the :class:`~repro.campaign.spec.JobSpec` before submission and results are
keyed by content, so the aggregate is bit-identical to a serial run no
matter how many workers participated, which ones crashed, or how often a
job was retried.

With ``workers=0`` and no autoscale policy the fleet is external: ``map``
runs one in-process worker loop to guarantee progress, and any separately
launched workers pointed at the same queue join in (the zero-worker mode
is also what the crash-free unit tests use — the whole queue protocol
without process spawns).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.campaign.cache import TransportResultCache, open_cache
from repro.campaign.dist.costmodel import AutoscalePolicy, CostModel
from repro.campaign.dist.queue import WorkQueue
from repro.campaign.dist.transport import (
    QueueTransport,
    TransportError,
    transport_from_address,
)
from repro.campaign.jobs import JobResult, execute_job
from repro.campaign.obs import (
    SpanRecorder,
    StructLogger,
    spans_from_result_records,
)
from repro.campaign.spec import JobSpec


def _src_root() -> str:
    """Directory that makes ``import repro`` work in a spawned worker."""
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


class _ThreadWorkerHandle:
    """A thread-hosted worker with the ``subprocess.Popen`` control surface.

    Lets :meth:`DistributedExecutor._wait_for_drain` manage process and
    thread fleets through one API: ``poll()`` returns ``None`` while the
    worker runs, then an exit code (0 clean, 42 injected crash, 3
    transport failure, 1 unexpected error).
    """

    def __init__(self, worker: Any):
        self.worker = worker
        self.returncode: Optional[int] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"worker-{worker.worker_id}")
        self._thread.start()

    def _run(self) -> None:
        from repro.campaign.dist.worker import WorkerCrash

        try:
            self.worker.run()
            self.returncode = 0
        except WorkerCrash:
            self.returncode = 42   # injected crash: lease left dangling
        except TransportError:
            self.returncode = 3
        except Exception:  # noqa: BLE001 - surfaced via exit code
            self.returncode = 1

    def poll(self) -> Optional[int]:
        if self._thread.is_alive():
            return None
        return self.returncode if self.returncode is not None else 0

    def terminate(self) -> None:
        # Threads cannot be preempted: retract the claim budget so the
        # worker stops after its current job (claims are not preemptible,
        # matching process workers' SIGTERM-between-jobs behavior).
        self.worker.deadline = 0.0

    def wait(self, timeout: Optional[float] = None) -> Optional[int]:
        self._thread.join(timeout)
        return self.poll()

    def kill(self) -> None:  # pragma: no cover - nothing stronger exists
        self.terminate()


class DistributedExecutor:
    """Run campaign jobs across a fleet of worker processes or threads.

    Parameters
    ----------
    queue_dir:
        Durable queue directory, shared with the workers.  ``None`` uses a
        per-``map`` temporary directory, removed after a clean drain.
        Shorthand for ``transport=str(queue_dir)``.
    transport:
        Where the queue lives: a
        :class:`~repro.campaign.dist.transport.QueueTransport` instance,
        a queue-directory path, or an ``http://`` broker URL (see the
        module docstring for how each shapes the fleet).  Overrides
        ``queue_dir``.
    workers:
        Fixed fleet size per ``map`` call.  ``0`` means the fleet is
        external (or in-process): ``map`` drains the queue with an inline
        worker loop instead of spawning.  Ignored when ``autoscale`` is
        given.
    autoscale:
        An :class:`~repro.campaign.dist.costmodel.AutoscalePolicy`; the
        executor consults it each scheduling tick and grows/shrinks the
        fleet instead of spawning a fixed count.
    cache / cache_dir:
        Shared result cache the *workers* probe before and after running —
        the cross-worker deduplication layer.  ``cache`` takes a cache
        object (any :class:`~repro.campaign.cache.TransportResultCache`);
        ``cache_dir`` takes a directory *or* broker URL and goes through
        :func:`~repro.campaign.cache.open_cache`, so a fleet without any
        shared filesystem deduplicates through the broker.  Pass the same
        cache to ``run_campaign`` so the orchestrator also serves hits up
        front.  Spawned worker processes inherit the cache by address
        (``--cache``); an address-less cache (e.g. over a
        ``MemoryTransport``) is shared with thread fleets directly.
    cost_model:
        Runtime estimator for longest-job-first enqueueing.  Defaults to
        the model persisted alongside ``cache`` (when given), so prior
        campaigns teach the scheduler.
    lease_seconds / max_attempts:
        Queue retry policy (see :class:`~repro.campaign.dist.queue.WorkQueue`).
        Applied when ``map`` creates a fresh queue; an existing queue
        keeps its persisted policy.
    timeout:
        Upper bound on one ``map`` call's wall time.  On expiry a
        ``TimeoutError`` carries the queue state summary.
    worker_extra_args:
        Per-worker extra CLI arguments (``worker_extra_args[i]`` is
        appended to worker *i*'s command line) — used by the
        crash-injection tests and available for ad-hoc debugging flags.
        Process fleets only.
    worker_options:
        Per-worker extra :class:`~repro.campaign.dist.worker.Worker`
        keyword arguments (``worker_options[i]`` for worker *i*) — the
        thread-fleet analogue of ``worker_extra_args``.
    trace_path:
        When set, every ``map`` call reconstructs per-job spans
        (queue-wait → run → store, one lane per worker) from the settled
        result records and writes a Chrome-trace JSON file there — load
        it in Perfetto or ``about:tracing`` to see how the fleet spent
        its time.  Best-effort: trace IO failures never fail the
        campaign.
    """

    name = "distributed"

    def __init__(self,
                 queue_dir: Optional[os.PathLike] = None,
                 workers: int = 2,
                 cache: Optional[TransportResultCache] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 cost_model: Optional[CostModel] = None,
                 lease_seconds: float = 15.0,
                 max_attempts: int = 3,
                 poll_interval: float = 0.05,
                 timeout: float = 600.0,
                 transport: Union[QueueTransport, str, None] = None,
                 autoscale: Optional[AutoscalePolicy] = None,
                 worker_extra_args: Optional[Sequence[Sequence[str]]] = None,
                 worker_options: Optional[Sequence[Dict[str, Any]]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 trace_path: Union[str, os.PathLike, None] = None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.queue_dir = Path(queue_dir) if queue_dir is not None else None
        self.workers = workers
        self.autoscale = autoscale
        if cache is None and cache_dir is not None:
            cache = open_cache(cache_dir)
        self.cache = cache
        self.cost_model = cost_model
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.transport = transport
        self.worker_extra_args = [list(args)
                                  for args in (worker_extra_args or [])]
        self.worker_options = [dict(options)
                               for options in (worker_options or [])]
        self._say = progress or (lambda _line: None)
        self.trace_path = Path(trace_path) if trace_path is not None else None
        #: Structured fleet events (autoscale decisions, trace writes) on
        #: stderr — machine-greppable, never mixed into program output.
        self._events = StructLogger("executor")
        #: Queue of the most recent ``map`` call, for inspection/snapshots.
        self.last_queue: Optional[WorkQueue] = None
        self.respawns = 0
        #: Workers brought up over this executor's lifetime (autoscale
        #: telemetry; includes respawns).
        self.spawned_total = 0

    @property
    def learns_costs(self) -> bool:
        """True when ``map`` itself persists wall times into a durable cost
        model — run_campaign checks this to avoid double-observing the
        same fresh results.  An explicitly passed *store-less* model takes
        precedence over the cache-adjacent default and persists nothing,
        so it must not claim the learning."""
        if self.cost_model is not None:
            return self.cost_model.persistent
        return self.cache is not None

    @property
    def workers_share_cache(self) -> bool:
        """True when the fleet ``map`` runs actually reaches ``cache`` —
        run_campaign checks this before skipping its own cache writes.
        The inline (``workers=0``) loop and thread fleets hold the cache
        object itself; spawned worker processes only reach it through
        ``--cache``, which needs an address.  An address-less cache over
        an addressable queue (process fleet) is the orchestrator's
        private cache, not the workers'."""
        if self.cache is None:
            return False
        if self.workers == 0 and self.autoscale is None:
            return True  # the inline worker loop holds the object
        if (isinstance(self.transport, QueueTransport)
                and self.transport.address is None):
            return True  # thread fleet: workers share the object
        return self.cache.address is not None

    # -- transport resolution ----------------------------------------------
    def _resolve_transport(self):
        """Returns ``(transport, temp_dir)``; ``temp_dir`` is set when the
        queue lives in a per-``map`` temporary directory we must clean."""
        if isinstance(self.transport, QueueTransport):
            return self.transport, None
        if self.transport is not None:
            return transport_from_address(self.transport), None
        if self.queue_dir is not None:
            return transport_from_address(self.queue_dir), None
        temp_dir = tempfile.mkdtemp(prefix="repro-campaign-queue-")
        return transport_from_address(temp_dir), temp_dir

    # -- the executor seam -------------------------------------------------
    def map(self, fn: Callable[[JobSpec], JobResult],
            items: Sequence[JobSpec]) -> List[JobResult]:
        """Enqueue ``items``, drain them through the fleet, and return
        results in input order.  ``fn`` must be ``execute_job`` (workers
        always run it); raises ``TimeoutError`` when the queue does not
        drain in time and ``RuntimeError`` when workers cannot start."""
        if fn is not execute_job:
            raise ValueError(
                "DistributedExecutor ships JobSpecs to workers that always "
                f"run repro.campaign.jobs.execute_job; cannot map {fn!r}")
        jobs = list(items)
        if not jobs:
            return []

        transport, temp_dir = self._resolve_transport()
        queue = WorkQueue(transport=transport,
                          lease_seconds=self.lease_seconds,
                          max_attempts=self.max_attempts)
        self.last_queue = queue

        cost_model = self.cost_model
        if cost_model is None:
            try:
                cost_model = (CostModel.alongside(self.cache)
                              if self.cache is not None else CostModel())
            except (OSError, TransportError):
                # Priors unreachable (cache broker down): degrade to FIFO
                # ordering rather than failing the campaign before it ran.
                cost_model = CostModel()
        queue.enqueue_grid(jobs, cost_model=cost_model)
        fleet = (f"autoscale {self.autoscale!r}" if self.autoscale
                 else f"{self.workers} workers")
        self._say(f"enqueued {len(jobs)} jobs into "
                  f"{queue.address or transport!r} (longest-first, {fleet})")

        handles: List[Any] = []
        deadline = time.monotonic() + self.timeout
        try:
            initial = self._initial_fleet_size(queue)
            if initial > 0 or self.autoscale is not None:
                handles = [self._spawn(queue, index)
                           for index in range(initial)]
                self._wait_for_drain(queue, jobs, handles, deadline)
            else:
                # Imported here, not at module top: keeps the worker module
                # out of sys.modules for `python -m ...dist.worker` runs.
                from repro.campaign.dist.worker import Worker

                Worker(queue, cache=self.cache,
                       poll_interval=self.poll_interval,
                       exit_when_drained=True, worker_id="inline",
                       deadline=deadline).run()
                self._wait_for_drain(queue, jobs, handles, deadline)
        finally:
            for handle in handles:
                if handle.poll() is None:
                    handle.terminate()
            for handle in handles:
                try:
                    handle.wait(timeout=10.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    handle.kill()

        results = self._collect(queue, jobs)
        if self.trace_path is not None:
            self._write_trace(queue)
        try:
            cost_model.observe_many(result for result in results
                                    if not result.cached)
            cost_model.save()
        except (OSError, TransportError):
            # Best-effort, mirroring runner._learn_costs: a cache broker
            # dying *after* the grid drained must not fail a campaign
            # whose results are already in hand.
            pass
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
        return results

    # -- fleet management --------------------------------------------------
    def _initial_fleet_size(self, queue: WorkQueue) -> int:
        if self.autoscale is None:
            return self.workers
        return self.autoscale.desired_from(queue.backlog())

    def _spawn(self, queue: WorkQueue, index: int) -> Any:
        """Bring up worker ``index``: a process when the queue is
        addressable from outside this process, a thread otherwise."""
        self.spawned_total += 1
        if queue.address is not None:
            return self._spawn_worker_process(queue, index)
        return self._spawn_worker_thread(queue, index)

    def _worker_command(self, queue_address: str, index: int) -> List[str]:
        cmd = [sys.executable, "-m", "repro.campaign.dist.worker",
               "--queue", str(queue_address),
               "--exit-when-drained",
               "--quiet",
               "--poll-interval", str(self.poll_interval),
               "--worker-id", f"w{index}-{os.getpid()}"]
        if self.autoscale is not None:
            cmd += ["--idle-timeout", str(self.autoscale.idle_timeout)]
        if self.cache is not None and self.cache.address is not None:
            # By address, like the queue: a directory for filesystem
            # caches, a broker URL for transport caches.  An address-less
            # cache (in-process transport) cannot be reached from a
            # spawned process and is simply not passed along.
            cmd += ["--cache", str(self.cache.address)]
        if index < len(self.worker_extra_args):
            cmd += [str(arg) for arg in self.worker_extra_args[index]]
        return cmd

    def _spawn_worker_process(self, queue: WorkQueue,
                              index: int) -> subprocess.Popen:
        env = os.environ.copy()
        src = _src_root()
        env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src)
        log_dir = queue.root if queue.root is not None else Path(
            tempfile.gettempdir())
        log_path = log_dir / f"worker-{index}.log"
        with open(log_path, "ab") as log:
            return subprocess.Popen(
                self._worker_command(queue.address, index),
                env=env, stdout=log, stderr=subprocess.STDOUT)

    def _spawn_worker_thread(self, queue: WorkQueue,
                             index: int) -> _ThreadWorkerHandle:
        from repro.campaign.dist.worker import Worker

        options: Dict[str, Any] = {
            "cache": self.cache,
            "poll_interval": self.poll_interval,
            "exit_when_drained": True,
            "worker_id": f"w{index}-t{os.getpid()}",
        }
        if self.autoscale is not None:
            options["idle_timeout"] = self.autoscale.idle_timeout
        if index < len(self.worker_options):
            options.update(self.worker_options[index])
        return _ThreadWorkerHandle(Worker(queue, **options))

    def _max_respawns(self) -> int:
        if self.autoscale is not None:
            return max(1, self.autoscale.max_workers)
        return max(1, self.workers)

    def _wait_for_drain(self, queue: WorkQueue, jobs: List[JobSpec],
                        handles: List[Any], deadline: float) -> None:
        keys = {job.job_id for job in jobs}
        next_scavenge = 0.0
        while True:
            # Lease scavenging is throttled to half a lease period — the
            # fastest a lease can possibly expire — so the per-tick work
            # is just the terminal-listing probes below.
            now = time.monotonic()
            try:
                if now >= next_scavenge:
                    queue.requeue_expired()
                    next_scavenge = now + queue.lease_seconds / 2.0
                    self._autoscale_tick(queue, handles)
                # Name-derived keys only: no record reads on the poll path.
                if keys <= queue.terminal_keys():
                    return
            except (OSError, TransportError) as exc:
                # A partition window (or a tripped shard breaker) must not
                # kill the orchestrator while workers are riding out the
                # same outage — keep polling until the drain deadline,
                # which remains the outage budget of last resort.
                self._events.event(
                    "drain-poll-error",
                    error=f"{type(exc).__name__}: {exc}")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"distributed campaign did not drain within "
                    f"{self.timeout:.0f}s: {queue!r}")
            if (self.autoscale is None and handles
                    and all(h.poll() is not None for h in handles)):
                # Every worker exited (crashed, starved out, or raced the
                # drain check) with work outstanding.  Respawn to finish
                # the grid — but capped: workers that can't even start
                # (broken interpreter env, unreachable queue) would
                # otherwise spawn-storm until the timeout with no
                # diagnosis.
                if self.respawns >= self._max_respawns():
                    codes = sorted({h.poll() for h in handles})
                    where = (f" — see worker-*.log under {queue.root}"
                             if queue.root is not None else "")
                    raise RuntimeError(
                        f"all workers exited (exit codes {codes}) with work "
                        f"outstanding, after {self.respawns} respawns: "
                        f"{queue!r}{where}")
                self.respawns += 1
                self._say(f"all workers exited with work outstanding; "
                          f"respawn #{self.respawns}")
                handles.append(self._spawn(queue, len(handles)))
            time.sleep(self.poll_interval)

    def _write_trace(self, queue: WorkQueue) -> None:
        """Rebuild per-job spans from the settled result records and write
        a Chrome-trace ``trace.json`` (Perfetto / ``about:tracing``)."""
        recorder = SpanRecorder(process="campaign")
        try:
            recorder.add(spans_from_result_records(queue.result_records()))
            written = recorder.write_chrome_trace(self.trace_path)
        except (OSError, TransportError) as exc:
            # Telemetry is best-effort: a full disk or a broker dying
            # *after* the drain must not fail a campaign whose results
            # are already in hand.
            self._events.event("trace-error", path=str(self.trace_path),
                               error=f"{type(exc).__name__}: {exc}")
            return
        self._say(f"wrote {written} trace events to {self.trace_path}")
        self._events.event("trace", path=str(self.trace_path), events=written)

    def _autoscale_tick(self, queue: WorkQueue, handles: List[Any]) -> None:
        """Grow the fleet toward the policy's target (shrink is attrition)."""
        if self.autoscale is None:
            return
        live = sum(1 for h in handles if h.poll() is None)
        backlog = queue.backlog()
        desired = self.autoscale.desired_from(backlog)
        if desired <= live:
            return
        if live == 0 and handles:
            # The whole fleet is gone with claimable work left.  A worker
            # that *starved out* (exit 0) is normal attrition; a *failed*
            # most-recent spawn means workers cannot start (broken env,
            # unreachable queue) — cap the respawns so we fail with a
            # diagnosis instead of spawn-storming until the timeout.  The
            # newest handle is the signal: historical clean exits from
            # earlier in the run must not mask a broker that died since.
            if handles[-1].poll() not in (None, 0):
                if self.respawns >= self._max_respawns():
                    codes = sorted({h.poll() for h in handles})
                    raise RuntimeError(
                        f"all workers exited (exit codes {codes}) "
                        f"with work outstanding, after {self.respawns} "
                        f"respawns: {queue!r}")
                self.respawns += 1
        for _ in range(desired - live):
            handles.append(self._spawn(queue, len(handles)))
        self._say(f"autoscale: {live} live workers -> {desired} "
                  f"(spawned {desired - live})")
        # Structured decision record: the policy's inputs (backlog depth
        # and cost) and, when workers heartbeat metrics snapshots, the
        # fleet's observed throughput — so a scale-up is auditable from
        # stderr alone.
        try:
            fleet = queue.worker_metrics()
        except (OSError, TransportError):
            fleet = {}
        throughput = sum(float(m.get("jobs_per_second", 0.0))
                         for m in fleet.values())
        self._events.event(
            "autoscale", live=live, desired=desired, spawned=desired - live,
            pending=int(backlog.get("pending", 0.0)),
            backlog_seconds=backlog.get("seconds", 0.0),
            reporting_workers=len(fleet), jobs_per_second=throughput)

    # -- result collection -------------------------------------------------
    def _collect(self, queue: WorkQueue, jobs: List[JobSpec]) -> List[JobResult]:
        results = queue.results()
        dead = queue.dead()
        out: List[JobResult] = []
        for job in jobs:
            key = job.job_id
            if key in results:
                out.append(results[key])
                continue
            record = dead.get(key, {})
            out.append(JobResult(
                job_id=key, case=job.case, params=job.params, seed=job.seed,
                error=record.get("error", "dead-lettered"),
            ))
        return out

    def __repr__(self) -> str:
        fleet = (f"autoscale={self.autoscale!r}" if self.autoscale
                 else f"workers={self.workers}")
        return (f"DistributedExecutor({fleet}, "
                f"queue_dir={str(self.queue_dir) if self.queue_dir else None!r}, "
                f"lease_seconds={self.lease_seconds}, "
                f"max_attempts={self.max_attempts})")
