"""Durable, file-backed work queue with leases, retries and a dead-letter state.

The queue is a directory; every piece of state is a small JSON file and
every state transition is a single atomic filesystem operation (``os.replace``
for writes, ``os.rename`` between state directories for moves), so any number
of worker *processes* — possibly on different hosts sharing a filesystem —
can cooperate without locks:

``jobs/<key>.json``
    Immutable job record: the :class:`~repro.campaign.spec.JobSpec`, its
    cost estimate and its ticket name.  Written once at enqueue time.
``pending/<prio>-<key>.json``
    A claimable *ticket* holding only the attempt counter.  The filename
    embeds the scheduling priority so a sorted directory listing *is* the
    schedule (smaller sorts first; :class:`~repro.campaign.dist.costmodel.
    CostModel` encodes longest-job-first).
``claimed/<prio>-<key>.json`` + ``leases/<prio>-<key>.json``
    A claim is the atomic rename of a ticket from ``pending/`` into
    ``claimed/`` — exactly one renamer wins — followed by a lease naming the
    worker and its expiry.  Workers heartbeat the lease while executing.
``results/<key>.json`` / ``done/<prio>-<key>.json``
    Completion writes the :class:`~repro.campaign.jobs.JobResult` record
    first, then retires the ticket; a crash between the two leaves a
    result that :meth:`WorkQueue.requeue_expired` retires idempotently.
``dead/<key>.json``
    Dead-letter records for jobs that exhausted ``max_attempts``.

Crash consistency is the design goal: a truncated or garbage JSON ticket or
lease is *requeueable, never fatal* (a garbage ticket reads as attempt 0, a
garbage lease reads as expired), and because the spec in ``jobs/`` is
immutable, bookkeeping corruption never loses the job itself.  Only a
corrupt ``jobs/`` record dead-letters the entry, since there is nothing
left to execute.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.campaign.jobs import JobResult, result_from_record_or_none
from repro.campaign.jsonio import atomic_write_json, read_json_or_none
from repro.campaign.spec import JobSpec

#: Priority strings are fixed-width so lexicographic order == numeric order.
_PRIORITY_WIDTH = 10
_PRIORITY_MAX = 10 ** _PRIORITY_WIDTH - 1

#: Subdirectories making up a queue.
_STATE_DIRS = ("jobs", "pending", "claimed", "leases", "results", "done", "dead")


def priority_for_cost(cost: float) -> str:
    """Encode an estimated cost (seconds) as a sortable priority string.

    Larger costs map to *smaller* strings so that an ascending directory
    listing yields longest-job-first — the schedule that minimizes makespan
    stragglers across a worker pool.  Non-finite estimates (a corrupt cost
    model) clamp to "longest" rather than raising.
    """
    cost = float(cost)
    if cost != cost:  # NaN
        cost = 0.0
    millis = int(max(0.0, min(cost, 1e6)) * 1000.0)  # clamps +/-inf too
    return f"{_PRIORITY_MAX - millis:0{_PRIORITY_WIDTH}d}"


@dataclass
class WorkItem:
    """A claimed job: everything a worker needs to execute and settle it."""

    name: str          # ticket stem, "<prio>-<key>"
    key: str           # job key (the JobSpec.job_id)
    job: JobSpec
    attempts: int      # completed attempts *before* this claim
    cost: float = 0.0
    worker: str = ""


class WorkQueue:
    """Durable multi-process work queue over a shared directory.

    Parameters
    ----------
    lease_seconds:
        How long a claim stays valid without a heartbeat.  A worker that
        crashes mid-job simply stops heartbeating; the next
        :meth:`requeue_expired` call returns the job to ``pending``.
    max_attempts:
        Total execution attempts before a job is dead-lettered.
    clock:
        Injectable time source (tests advance a fake clock instead of
        sleeping through lease expiries).

    The first creator of a queue directory persists ``lease_seconds`` and
    ``max_attempts`` into ``queue.json``; later opens (e.g. worker
    processes) adopt the stored values so every participant agrees on the
    lease protocol.
    """

    def __init__(self, root: os.PathLike,
                 lease_seconds: float = 30.0,
                 max_attempts: int = 3,
                 clock: Callable[[], float] = time.time):
        self.root = Path(root)
        self._clock = clock
        for sub in _STATE_DIRS:
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        config_path = self.root / "queue.json"
        config = self._read_json(config_path)
        if not config:
            # Validate *before* persisting anything, so a bad constructor
            # call cannot poison the directory for later opens.
            if lease_seconds <= 0:
                raise ValueError("lease_seconds must be positive")
            if max_attempts < 1:
                raise ValueError("max_attempts must be >= 1")
            config = self._publish_config(config_path, {
                "lease_seconds": float(lease_seconds),
                "max_attempts": int(max_attempts),
            })
        # Adopt the (single) persisted policy, whoever won the creation
        # race — every participant must agree on the lease protocol.
        lease_seconds = float(config.get("lease_seconds", lease_seconds))
        max_attempts = int(config.get("max_attempts", max_attempts))
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts

    # -- low-level JSON helpers -------------------------------------------
    _write_json = staticmethod(atomic_write_json)
    _read_json = staticmethod(read_json_or_none)

    def _publish_config(self, path: Path,
                        payload: Dict[str, Any]) -> Dict[str, Any]:
        """First-writer-wins creation of ``queue.json``.

        O_EXCL makes one concurrent creator the winner; every loser (and
        the winner) adopts whatever the file now holds, so two
        orchestrators racing to create the same queue cannot run with
        divergent lease policies.  A garbage config (torn by a crash
        mid-create) is healed with an atomic rewrite.
        """
        # Stage the full content first, then hard-link it into place:
        # creation is both exclusive *and* atomic in content, so a loser
        # (or any reader) can never observe a partially written config.
        tmp = path.parent / f".{path.name}.create.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        try:
            os.link(tmp, path)
            return payload
        except FileExistsError:
            existing = self._read_json(path)
            if existing is not None:
                return existing
            self._write_json(path, payload)  # heal a torn/garbage config
            return payload
        except OSError:
            # Filesystem without hard links: settle for plain atomic write
            # (last concurrent creator wins, but content is never torn).
            self._write_json(path, payload)
            return payload
        finally:
            self._remove(tmp)

    @staticmethod
    def _key_of(ticket_name: str) -> Optional[str]:
        stem = ticket_name[:-5] if ticket_name.endswith(".json") else ticket_name
        if len(stem) <= _PRIORITY_WIDTH + 1 or stem[_PRIORITY_WIDTH] != "-":
            return None
        prefix = stem[:_PRIORITY_WIDTH]
        if not prefix.isdigit():
            return None
        return stem[_PRIORITY_WIDTH + 1:]

    def _tickets(self, state: str) -> List[str]:
        return sorted(name for name in os.listdir(self.root / state)
                      if name.endswith(".json"))

    # -- enqueue -----------------------------------------------------------
    def enqueue(self, job: JobSpec, cost: float = 0.0) -> str:
        """Add ``job`` to the queue (idempotently) and return its ticket name.

        Re-enqueueing a job that is already pending, claimed, done or
        dead-lettered is a no-op, so a restarted orchestrator can replay a
        whole grid into an existing queue safely.
        """
        key = job.job_id
        spec_path = self.root / "jobs" / f"{key}.json"
        existing = self._read_json(spec_path)
        if existing and "job" in existing:
            name = existing.get("name") or f"{priority_for_cost(cost)}-{key}"
        else:
            name = f"{priority_for_cost(cost)}-{key}"
            self._write_json(spec_path, {"job": job.to_record(),
                                         "cost": float(cost), "name": name})
        ticket = f"{name}.json"
        states = (self.root / "pending" / ticket,
                  self.root / "claimed" / ticket,
                  self.root / "done" / ticket,
                  self.root / "results" / f"{key}.json",
                  self.root / "dead" / f"{key}.json")
        if any(path.exists() for path in states):
            return name
        self._write_json(self.root / "pending" / ticket, {"attempts": 0})
        return name

    def enqueue_grid(self, jobs: Iterable[JobSpec],
                     cost_model: Optional[Any] = None) -> List[str]:
        """Enqueue many jobs, longest-estimated-first when a model is given."""
        jobs = list(jobs)
        if cost_model is not None:
            jobs = cost_model.order(jobs)
            return [self.enqueue(job, cost=cost_model.estimate(job))
                    for job in jobs]
        return [self.enqueue(job) for job in jobs]

    # -- claim / lease -----------------------------------------------------
    def claim(self, worker: str = "") -> Optional[WorkItem]:
        """Atomically claim the highest-priority pending job, if any.

        Corrupt bookkeeping never aborts the scan: a garbage ticket is
        claimed with ``attempts == 0`` (requeueable), while a corrupt
        immutable job record is dead-lettered (nothing left to execute)
        and the scan continues with the next ticket.
        """
        now = self._clock()
        for ticket in self._tickets("pending"):
            key = self._key_of(ticket)
            if key is None:
                continue  # foreign file; leave it alone
            pending_path = self.root / "pending" / ticket
            if (self.root / "results" / f"{key}.json").exists():
                # Already computed (healed double-enqueue): retire the ticket.
                try:
                    os.rename(pending_path, self.root / "done" / ticket)
                except OSError:
                    pass
                continue
            claimed_path = self.root / "claimed" / ticket
            try:
                os.rename(pending_path, claimed_path)
            except OSError:
                continue  # another worker won the race
            try:
                # rename preserves mtime; stamp the claim time so the
                # scavenger's missing-lease grace window (measured from
                # this file's mtime) actually starts now.
                os.utime(claimed_path, (now, now))
            except OSError:
                pass
            payload = self._read_json(claimed_path) or {}
            attempts = int(payload.get("attempts", 0) or 0)
            record = self._read_json(self.root / "jobs" / f"{key}.json")
            if not record or "job" not in record:
                self._bury(ticket, key, attempts,
                           error="corrupt job record (unreadable spec)")
                continue
            try:
                job = JobSpec.from_record(record["job"])
            except (KeyError, TypeError, ValueError):
                self._bury(ticket, key, attempts,
                           error="corrupt job record (bad spec fields)")
                continue
            cost = float(record.get("cost", 0.0) or 0.0)
            self._write_json(self.root / "leases" / ticket, {
                "worker": worker,
                "attempts": attempts,
                "claimed_at": now,
                "expires_at": now + self.lease_seconds,
            })
            return WorkItem(name=ticket[:-5], key=key, job=job,
                            attempts=attempts, cost=cost, worker=worker)
        return None

    def heartbeat(self, item: WorkItem) -> None:
        """Extend the lease of a claimed job (call while executing)."""
        now = self._clock()
        self._write_json(self.root / "leases" / f"{item.name}.json", {
            "worker": item.worker,
            "attempts": item.attempts,
            "claimed_at": now,
            "expires_at": now + self.lease_seconds,
        })

    # -- settle ------------------------------------------------------------
    def complete(self, item: WorkItem, result: JobResult) -> None:
        """Persist ``result`` and retire the claim.

        The result record is written *before* the ticket moves, so a crash
        between the two steps loses no work: the scavenger retires tickets
        whose result already exists.  Completion after a lease expiry (the
        job was requeued and possibly re-run elsewhere) is harmless —
        results are content-derived and therefore identical.
        """
        self._write_json(self.root / "results" / f"{item.key}.json", {
            "result": result.to_record(),
            "cached": bool(result.cached),
            "worker": item.worker,
            "attempts": item.attempts + 1,
        })
        ticket = f"{item.name}.json"
        try:
            os.rename(self.root / "claimed" / ticket, self.root / "done" / ticket)
        except OSError:
            pass  # lease expired and the ticket was requeued meanwhile
        self._remove(self.root / "leases" / ticket)

    def fail(self, item: WorkItem, error: str) -> str:
        """Record a failed attempt; requeue or dead-letter.

        Returns ``"requeued"`` or ``"dead"``.  This is the path for
        *infrastructure* failures (the worker could not run the job at
        all); workload exceptions are captured into ``JobResult.error`` by
        ``execute_job`` and settle through :meth:`complete`, exactly as
        they do under the in-process executors.
        """
        attempts = item.attempts + 1
        ticket = f"{item.name}.json"
        if attempts >= self.max_attempts:
            self._bury(ticket, item.key, attempts, error=error)
            return "dead"
        self._requeue_ticket(ticket, attempts)
        return "requeued"

    def _requeue_ticket(self, ticket: str, attempts: int) -> bool:
        """Move a claimed ticket back to pending as one atomic rename.

        The attempt counter is folded into the claimed ticket first, then
        the rename is the commit point (mirroring :meth:`claim`) — the
        requeue never unlinks a ticket some other worker might hold, so a
        racing claim is at worst re-run (results are content-derived),
        never stranded outside every state directory.
        """
        claimed_path = self.root / "claimed" / ticket
        self._write_json(claimed_path, {"attempts": attempts})
        try:
            os.rename(claimed_path, self.root / "pending" / ticket)
        except OSError:
            return False  # settled or requeued by someone else meanwhile
        self._remove(self.root / "leases" / ticket)
        return True

    def _bury(self, ticket: str, key: str, attempts: int, error: str) -> None:
        record = self._read_json(self.root / "jobs" / f"{key}.json") or {}
        self._write_json(self.root / "dead" / f"{key}.json", {
            "job": record.get("job"),
            "error": error,
            "attempts": attempts,
        })
        self._remove(self.root / "claimed" / ticket)
        self._remove(self.root / "leases" / ticket)

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- lease scavenging --------------------------------------------------
    def requeue_expired(self, now: Optional[float] = None) -> List[str]:
        """Return expired/orphaned claims to ``pending``; heal stale state.

        A garbage lease counts as expired (the bookkeeping was lost, the
        job was not); a *missing* lease gets one ``lease_seconds`` of
        grace measured from the claimed ticket's mtime, because
        :meth:`claim` commits with the rename and writes the lease a few
        syscalls later — a concurrent scavenger must not steal the claim
        inside that window.  A claim whose result already exists is
        retired instead of retried, and jobs over ``max_attempts`` move
        to the dead-letter state.  Returns the keys that were requeued.
        """
        now = self._clock() if now is None else now
        requeued: List[str] = []
        for ticket in self._tickets("claimed"):
            key = self._key_of(ticket)
            if key is None:
                continue
            claimed_path = self.root / "claimed" / ticket
            if (self.root / "results" / f"{key}.json").exists():
                try:
                    os.rename(claimed_path, self.root / "done" / ticket)
                except OSError:
                    pass
                self._remove(self.root / "leases" / ticket)
                continue
            if (self.root / "pending" / ticket).exists():
                # Duplicate state (external corruption / legacy residue):
                # fold the claim back into pending atomically.  The rename
                # never strands a racing claimant — worst case the job is
                # re-run, and the conservative (claimed-side) attempt
                # count wins.
                try:
                    os.rename(claimed_path, self.root / "pending" / ticket)
                except OSError:
                    pass
                self._remove(self.root / "leases" / ticket)
                continue
            lease = self._read_json(self.root / "leases" / ticket)
            if lease is not None and float(lease.get("expires_at", 0.0)) > now:
                continue  # live lease
            if lease is None and not (self.root / "leases" / ticket).exists():
                # Claim-window grace: no lease was written yet (or ever —
                # the claimant crashed mid-claim).  Requeue only once the
                # claim is older than a full lease.
                try:
                    claimed_at = os.path.getmtime(claimed_path)
                except OSError:
                    continue  # settled concurrently
                if now - claimed_at < self.lease_seconds:
                    continue
            payload = self._read_json(claimed_path) or {}
            attempts = int(payload.get("attempts", 0) or 0)
            if lease is not None:
                attempts = max(attempts, int(lease.get("attempts", 0) or 0))
            attempts += 1
            if attempts >= self.max_attempts:
                self._bury(ticket, key, attempts,
                           error=f"lease expired after {attempts} attempts "
                                 f"(worker crash or hang)")
            elif self._requeue_ticket(ticket, attempts):
                requeued.append(key)
        return requeued

    def retry_dead(self, keys: Optional[Iterable[str]] = None) -> List[str]:
        """Return dead-lettered jobs to ``pending`` with a fresh attempt
        budget — the recovery path after fixing whatever infrastructure
        failure exhausted their retries.

        Dead-lettering is otherwise terminal (``enqueue`` refuses to
        revive buried jobs, so replaying a grid cannot silently retry
        them), which would strand a persistent queue directory forever
        without this. Restricts to ``keys`` when given; returns the keys
        actually revived (jobs whose spec record is unreadable cannot
        run and stay buried).
        """
        wanted = None if keys is None else set(keys)
        revived: List[str] = []
        for name in self._tickets("dead"):
            key = name[:-5]
            if wanted is not None and key not in wanted:
                continue
            if (self.root / "results" / f"{key}.json").exists():
                self._remove(self.root / "dead" / name)  # already computed
                continue
            record = self._read_json(self.root / "jobs" / f"{key}.json")
            if not record or "job" not in record:
                continue  # nothing left to execute
            ticket_name = record.get("name") or (
                f"{priority_for_cost(float(record.get('cost', 0.0) or 0.0))}"
                f"-{key}")
            self._write_json(self.root / "pending" / f"{ticket_name}.json",
                             {"attempts": 0})
            self._remove(self.root / "dead" / name)
            revived.append(key)
        return revived

    # -- inspection --------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        return {state: len(self._tickets(state))
                for state in ("pending", "claimed", "done", "dead")}

    def drained(self) -> bool:
        """True when nothing is left to execute (pending and claimed empty)."""
        return not self._tickets("pending") and not self._tickets("claimed")

    def pending_keys(self) -> List[str]:
        return [key for key in map(self._key_of, self._tickets("pending"))
                if key is not None]

    def claimed_keys(self) -> List[str]:
        return [key for key in map(self._key_of, self._tickets("claimed"))
                if key is not None]

    def live_claimed_keys(self, now: Optional[float] = None) -> List[str]:
        """Claimed jobs whose lease is still live (read-only probe).

        A claimed ticket with a missing, garbage or expired lease belongs
        to a crashed worker: it is *requeueable*, not running, and status
        reporting should say so even before a scavenger runs.
        """
        now = self._clock() if now is None else now
        live: List[str] = []
        for ticket in self._tickets("claimed"):
            key = self._key_of(ticket)
            if key is None:
                continue
            lease = self._read_json(self.root / "leases" / ticket)
            if lease is not None and float(lease.get("expires_at", 0.0)) > now:
                live.append(key)
        return live

    def terminal_keys(self) -> set:
        """Keys in a terminal state (result persisted or dead-lettered).

        Computed from directory listings alone — no JSON parsing — so
        drain polling stays O(listdir) per tick.
        """
        return ({name[:-5] for name in self._tickets("results")}
                | {name[:-5] for name in self._tickets("dead")})

    def results(self) -> Dict[str, JobResult]:
        """All persisted results, keyed by job key (corrupt files skipped)."""
        out: Dict[str, JobResult] = {}
        for name in self._tickets("results"):
            record = self._read_json(self.root / "results" / name)
            result = result_from_record_or_none(
                record, cached=bool(record.get("cached")) if record else False)
            if result is not None:
                out[name[:-5]] = result
        return out

    def dead(self) -> Dict[str, Dict[str, Any]]:
        """Dead-letter records keyed by job key."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in self._tickets("dead"):
            record = self._read_json(self.root / "dead" / name)
            if record is not None:
                out[name[:-5]] = record
        return out

    def __repr__(self) -> str:
        counts = self.counts()
        return (f"WorkQueue({str(self.root)!r}, pending={counts['pending']}, "
                f"claimed={counts['claimed']}, done={counts['done']}, "
                f"dead={counts['dead']})")
