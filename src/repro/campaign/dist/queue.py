"""Durable work queue with leases, retries and a dead-letter state.

The queue is a small state machine over *opaque keys* holding JSON
documents, stored in any :class:`~repro.campaign.dist.transport.
QueueTransport` — a shared directory, an in-process dict, or an HTTP
object-store broker.  Any number of workers (threads, processes, hosts)
cooperate without locks; every exclusive decision rests on the transport's
one atomic primitive, *conditional create* (compare-and-swap with
``if_match=None``):

``jobs/<key>.json``
    Immutable job record: the :class:`~repro.campaign.spec.JobSpec`, its
    cost estimate and its ticket name.  Created once at enqueue time
    (conditional create, so racing orchestrators agree on one record).
``pending/<prio>-<key>.json``
    The *ticket*: present from enqueue until the job settles, holding only
    the attempt counter.  The name embeds the scheduling priority so a
    sorted listing *is* the schedule (smaller sorts first;
    :class:`~repro.campaign.dist.costmodel.CostModel` encodes
    longest-job-first).
``claims/<prio>-<key>.json``
    The claim *and* the lease, one document: worker identity, attempt
    counter, expiry.  Claiming is a conditional create — exactly one
    creator wins — so the lease exists from the first instant of the
    claim (no claim-without-lease window to grace over).  Workers renew
    the expiry with compare-and-swap while executing; a claim whose CAS
    tag went stale belongs to someone else now.
``results/<key>.json`` / ``done/<prio>-<key>.json``
    Completion writes the :class:`~repro.campaign.jobs.JobResult` record
    first (the commit point), then the ``done`` marker, then retires the
    ticket and claim; a crash anywhere in between leaves a result that
    :meth:`WorkQueue.requeue_expired` retires idempotently.
``dead/<key>.json``
    Dead-letter records for jobs that exhausted ``max_attempts``.

Crash consistency is the design goal: a truncated or garbage ticket or
claim is *requeueable, never fatal* (a garbage ticket reads as attempt 0,
a garbage claim reads as expired), and because the record in ``jobs/`` is
immutable, bookkeeping corruption never loses the job itself.  Only a
corrupt ``jobs/`` record dead-letters the entry, since there is nothing
left to execute.  Conditional-delete races (a heartbeat renewing a lease
the scavenger is reclaiming) degrade to a re-executed job — harmless,
because results are content-derived — never to a lost one.

The transport seam is proven by the test suite: the same crash-injection
tests run identically over ``FsTransport``, ``MemoryTransport`` and
``HttpTransport`` (``tests/campaign/test_dist.py``,
``tests/campaign/test_transport.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.campaign.dist.transport import (
    ANY,
    ClaimUnsupported,
    DegradedResult,
    FsTransport,
    QueueTransport,
    is_degraded,
)
from repro.campaign.jobs import JobResult, result_from_record_or_none
from repro.campaign.jsonio import json_dumps_bytes, json_loads_or_none
from repro.campaign.obs import MetricsRegistry, get_registry
from repro.campaign.spec import JobSpec

#: Priority strings are fixed-width so lexicographic order == numeric order.
_PRIORITY_WIDTH = 10
_PRIORITY_MAX = 10 ** _PRIORITY_WIDTH - 1

#: Pending tickets fetched per page during claim/backlog scans — a claim
#: normally wins inside the first page, so the scan stops shipping the
#: full keyspace for every poll.
_SCAN_PAGE = 64

#: Candidates whose result/ticket/claim documents are batch-probed per
#: claim round trip.  A claim normally wins on the window's first
#: candidate, so a bigger window mostly ships unused documents.
_CLAIM_WINDOW = 16

#: Cap on the pending tickets a :meth:`WorkQueue.backlog` scan inspects.
#: Any realistic :class:`~repro.campaign.dist.costmodel.AutoscalePolicy`
#: saturates its ``max_workers`` long before this many claimable tickets.
_BACKLOG_SCAN_CAP = 1024

def priority_for_cost(cost: float) -> str:
    """Encode an estimated cost (seconds) as a sortable priority string.

    Larger costs map to *smaller* strings so that an ascending listing
    yields longest-job-first — the schedule that minimizes makespan
    stragglers across a worker pool.  Non-finite estimates (a corrupt cost
    model) clamp to "longest" rather than raising.
    """
    cost = float(cost)
    if cost != cost:  # NaN
        cost = 0.0
    millis = int(max(0.0, min(cost, 1e6)) * 1000.0)  # clamps +/-inf too
    return f"{_PRIORITY_MAX - millis:0{_PRIORITY_WIDTH}d}"


def cost_for_priority(name: str) -> float:
    """Decode a ticket name's embedded cost estimate (seconds).

    The inverse of :func:`priority_for_cost`, up to millisecond rounding.
    Lets the autoscaler compute the queue's cost backlog from listings
    alone — no record reads on the scaling path.  Unparseable names read
    as zero cost.
    """
    prefix = name[:_PRIORITY_WIDTH]
    if not prefix.isdigit():
        return 0.0
    return max(0, _PRIORITY_MAX - int(prefix)) / 1000.0


def _ticket_key_of(name: str) -> Optional[str]:
    """Job key embedded in a ticket name; ``None`` for foreign names."""
    if len(name) <= _PRIORITY_WIDTH + 1 or name[_PRIORITY_WIDTH] != "-":
        return None
    if not name[:_PRIORITY_WIDTH].isdigit():
        return None
    return name[_PRIORITY_WIDTH + 1:]


def _lease_doc(worker: str, attempts: int, now: float,
               lease_seconds: float) -> Dict[str, Any]:
    """The claim-and-lease document, shared by every claim/renew path."""
    return {"worker": worker, "attempts": attempts, "claimed_at": now,
            "expires_at": now + lease_seconds}


def _retire_over(transport: QueueTransport, ns: str, name: str,
                 claim_etag: Optional[str] = None) -> None:
    """Idempotently move a ticket with a persisted result to ``done``.

    One mixed batch: create the done marker, then drop the ticket and
    the claim.  The claim delete is conditional when an etag is given,
    so a retire racing a re-claim leaves the new claimant's lease alone
    (the scavenger retires it later, against the result record).
    """
    transport.mutate_many([
        ("put", f"{ns}done/{name}.json", json_dumps_bytes({}), None),
        ("delete", f"{ns}pending/{name}.json", None),
        ("delete", f"{ns}claims/{name}.json", claim_etag),
    ])


def _bury_over(transport: QueueTransport, ns: str, name: str, key: str,
               attempts: int, error: str,
               record: Optional[Dict[str, Any]] = None) -> None:
    """Dead-letter a job: persist the dead record, drop ticket and claim."""
    if record is None:
        got = transport.get(f"{ns}jobs/{key}.json")
        record = json_loads_or_none(got[0]) if got is not None else None
    record = record or {}
    transport.mutate_many([
        ("put", f"{ns}dead/{key}.json", json_dumps_bytes({
            "job": record.get("job"),
            "error": error,
            "attempts": attempts,
        }), ANY),
        ("delete", f"{ns}pending/{name}.json", None),
        ("delete", f"{ns}claims/{name}.json", None),
    ])


def claim_first_over(transport: QueueTransport, prefix: str = "pending/",
                     worker: str = "", now: Optional[float] = None,
                     lease_seconds: Optional[float] = None,
                     registry: Optional[MetricsRegistry] = None
                     ) -> Optional[Dict[str, Any]]:
    """Run one scan-probe-CAS claim pass over a bare transport.

    This is *the* claim algorithm — :meth:`WorkQueue.claim` runs it
    client-side over fs/memory transports (and against brokers that
    predate ``POST /claim``), and the broker runs the very same function
    server-side to answer ``POST /claim``, where every round trip in it
    is a local store operation instead of a network exchange.

    ``prefix`` must end with ``"pending/"``; anything before it is the
    queue's key namespace (normally empty).  ``now`` defaults to the
    wall clock and ``lease_seconds`` to the queue config stored at
    ``<ns>queue.json`` (30s when absent) — callers with injected clocks
    or adopted configs pass both explicitly.

    Returns ``None`` when nothing is claimable, else the claim outcome::

        {"name": <ticket stem>, "key": <job key>, "etag": <claim etag>,
         "attempts": <prior attempts>, "cost": <estimate>,
         "record": <jobs/ document>, "lease": <claim document>}

    — all JSON-serializable, because over HTTP this dict *is* the
    response body.  Corrupt bookkeeping never aborts the scan: a garbage
    ticket claims at attempt 0, a corrupt job record is dead-lettered
    and the scan continues.

    ``registry`` receives the pass's claim-conflict and dead-letter
    counters: the broker passes its own (so ``GET /stats`` reports
    fleet-wide contention), client-side scans default to the
    process-wide registry.
    """
    if not prefix.endswith("pending/"):
        raise ValueError(f"claim prefix must end with 'pending/': {prefix!r}")
    if registry is None:
        registry = get_registry()
    ns = prefix[:-len("pending/")]
    if now is None:
        now = time.time()
    if lease_seconds is None:
        got = transport.get(f"{ns}queue.json")
        config = json_loads_or_none(got[0]) if got is not None else None
        lease_seconds = float((config or {}).get("lease_seconds", 30.0))
    head = len(prefix)
    start_after = ""
    while True:
        page, token = transport.list_page(prefix, _SCAN_PAGE,
                                          start_after=start_after)
        candidates = []
        for full_key in page:
            if not full_key.endswith(".json"):
                continue
            name = full_key[head:-5]
            key = _ticket_key_of(name)
            if key is not None:  # foreign documents left alone
                candidates.append((name, key))
        for start in range(0, len(candidates), _CLAIM_WINDOW):
            outcome = _claim_window_over(
                transport, ns, candidates[start:start + _CLAIM_WINDOW],
                worker, now, lease_seconds, registry)
            if outcome is not None:
                return outcome
        if token is None:
            return None
        start_after = token


def _claim_window_over(transport: QueueTransport, ns: str, candidates,
                       worker: str, now: float, lease_seconds: float,
                       registry: Optional[MetricsRegistry] = None
                       ) -> Optional[Dict[str, Any]]:
    """Try to claim one of ``candidates`` (one window of pending names,
    priority-ordered); returns the claim outcome dict or ``None``."""
    if not candidates:
        return None
    count = len(candidates)
    probes = transport.get_many(
        [f"{ns}results/{key}.json" for _, key in candidates]
        + [f"{ns}pending/{name}.json" for name, _ in candidates]
        + [f"{ns}claims/{name}.json" for name, _ in candidates])
    have_result = probes[:count]
    tickets = probes[count:2 * count]
    held = probes[2 * count:]
    for (name, key), result_doc, ticket_doc, claim_doc in zip(
            candidates, have_result, tickets, held):
        if result_doc is not None:
            # Already computed (healed double-enqueue / crashed settle):
            # retire the ticket.
            _retire_over(transport, ns, name)
            continue
        if claim_doc is not None:
            continue  # held by a live (or not-yet-scavenged) claim
        ticket = (json_loads_or_none(ticket_doc[0])
                  if ticket_doc is not None else None) or {}
        attempts = int(ticket.get("attempts", 0) or 0)
        lease = _lease_doc(worker, attempts, now, lease_seconds)
        payload = json_dumps_bytes(lease)
        etag = transport.cas(f"{ns}claims/{name}.json", payload,
                             if_match=None)
        if etag is None:
            # Lost the race — unless the "conflict" is our own write: a
            # retried HTTP request whose first response was lost lands
            # the document, then sees it exist.  If the stored bytes are
            # exactly what we tried to write, the claim is ours; skipping
            # it would strand our own lease and burn a retry attempt the
            # job never used.  (Server-side the CAS is local and exact,
            # so this branch simply never fires there.)
            got = transport.get(f"{ns}claims/{name}.json")
            if got is None or got[0] != payload:
                if registry is not None:
                    registry.counter("queue_claim_conflicts_total").inc()
                continue  # genuinely someone else's claim
            etag = got[1]
        # Read the (immutable) job record only after winning: losers of a
        # contended claim should cost one failed CAS, not extra round
        # trips.  A corrupt record is buried from the claim we now hold,
        # exactly as a pre-claim check would have done.
        record_got = transport.get(f"{ns}jobs/{key}.json")
        record = (json_loads_or_none(record_got[0])
                  if record_got is not None else None)
        if not record or "job" not in record:
            _bury_over(transport, ns, name, key, attempts,
                       error="corrupt job record (unreadable spec)",
                       record=record)
            if registry is not None:
                registry.counter("queue_dead_letters_total").inc(
                    reason="corrupt-record")
            continue
        try:
            JobSpec.from_record(record["job"])
        except (KeyError, TypeError, ValueError):
            _bury_over(transport, ns, name, key, attempts,
                       error="corrupt job record (bad spec fields)",
                       record=record)
            if registry is not None:
                registry.counter("queue_dead_letters_total").inc(
                    reason="corrupt-record")
            continue
        return {"name": name, "key": key, "etag": etag,
                "attempts": attempts,
                "cost": float(record.get("cost", 0.0) or 0.0),
                "record": record, "lease": lease}
    return None


@dataclass
class WorkItem:
    """A claimed job: everything a worker needs to execute and settle it.

    ``etag`` tracks the claim document's current CAS tag; heartbeats
    advance it, and settle operations use it so a worker only ever
    releases *its own* claim.
    """

    name: str          # ticket stem, "<prio>-<key>"
    key: str           # job key (the JobSpec.job_id)
    job: JobSpec
    attempts: int      # completed attempts *before* this claim
    cost: float = 0.0
    worker: str = ""
    etag: str = ""
    #: Timestamps for the per-job trace spans (queue-wait → run → store):
    #: when the job record was created and when this claim was taken.
    #: ``None`` on records from pre-telemetry enqueuers.
    enqueued_at: Optional[float] = None
    claimed_at: Optional[float] = None


class WorkQueue:
    """Durable multi-worker work queue over a pluggable transport.

    Parameters
    ----------
    root:
        Queue directory for the default filesystem transport.  Mutually
        exclusive with ``transport``.
    transport:
        Any :class:`~repro.campaign.dist.transport.QueueTransport`; lets
        the same queue protocol run over an in-memory store or an HTTP
        broker.
    lease_seconds:
        How long a claim stays valid without a heartbeat.  A worker that
        crashes mid-job simply stops heartbeating; the next
        :meth:`requeue_expired` call returns the job to pending.
    max_attempts:
        Total execution attempts before a job is dead-lettered.
    clock:
        Injectable time source (tests advance a fake clock instead of
        sleeping through lease expiries).

    The first creator of a queue persists ``lease_seconds`` and
    ``max_attempts`` into the ``queue.json`` key (conditional create, so
    exactly one creation race winner); later opens — worker processes,
    other hosts — adopt the stored values so every participant agrees on
    the lease protocol.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 lease_seconds: float = 30.0,
                 max_attempts: int = 3,
                 clock: Callable[[], float] = time.time,
                 transport: Optional[QueueTransport] = None,
                 registry: Optional[MetricsRegistry] = None):
        if transport is None:
            if root is None:
                raise ValueError("WorkQueue needs a root directory or a "
                                 "transport")
            transport = FsTransport(root)
        self.transport = transport
        self.registry = registry if registry is not None else get_registry()
        self.root = (Path(transport.root) if isinstance(transport, FsTransport)
                     else None)
        self._clock = clock
        config = self._get_json("queue.json")
        if not config:
            # Validate *before* persisting anything, so a bad constructor
            # call cannot poison the queue for later opens.
            if lease_seconds <= 0:
                raise ValueError("lease_seconds must be positive")
            if max_attempts < 1:
                raise ValueError("max_attempts must be >= 1")
            payload = {"lease_seconds": float(lease_seconds),
                       "max_attempts": int(max_attempts)}
            if self.transport.cas("queue.json", json_dumps_bytes(payload),
                                  if_match=None) is not None:
                config = payload
            else:
                # Lost the creation race: adopt the winner's policy.
                config = self._get_json("queue.json")
                if config is None:
                    # The key exists but holds garbage (torn by a crash
                    # mid-create, external corruption): heal it with an
                    # atomic rewrite, or every participant would silently
                    # run its own constructor defaults — divergent lease
                    # policies steal live claims.
                    self._put_json("queue.json", payload)
                    config = payload
        lease_seconds = float(config.get("lease_seconds", lease_seconds))
        max_attempts = int(config.get("max_attempts", max_attempts))
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        # Set once the transport's server-side claim fast path has been
        # probed and found missing (an old broker): later claims skip the
        # doomed POST and go straight to the client-side scan.
        self._claim_fallback = not callable(
            getattr(self.transport, "claim_first", None))

    @property
    def address(self) -> Optional[str]:
        """How a separate worker process reaches this queue (``--queue``)."""
        return self.transport.address

    # -- low-level helpers -------------------------------------------------
    def _get_json(self, key: str) -> Optional[Dict[str, Any]]:
        got = self.transport.get(key)
        return None if got is None else json_loads_or_none(got[0])

    def _put_json(self, key: str, payload: Dict[str, Any]) -> str:
        return self.transport.put(key, json_dumps_bytes(payload))

    def _delete(self, key: str, if_match: Optional[str] = None) -> bool:
        return self.transport.delete(key, if_match=if_match)

    @staticmethod
    def _key_of(name: str) -> Optional[str]:
        """Job key embedded in a ticket name; ``None`` for foreign names."""
        return _ticket_key_of(name)

    def _names(self, state: str) -> List[str]:
        """Sorted document stems under a state prefix (foreign keys skipped).

        A partial listing from a degraded sharded transport keeps its
        :class:`~repro.campaign.dist.transport.DegradedResult` tag, so
        status surfaces built on top (``counts``, ``snapshot_campaign``)
        can report *N of M shards* instead of silently presenting a
        partial view as the whole queue.
        """
        head = len(state) + 1
        listing = self.transport.list(f"{state}/")
        names = [key[head:-5] for key in listing if key.endswith(".json")]
        if is_degraded(listing):
            return DegradedResult(names,
                                  missing_shards=listing.missing_shards)
        return names

    # -- enqueue -----------------------------------------------------------
    def enqueue(self, job: JobSpec, cost: float = 0.0) -> str:
        """Add ``job`` to the queue (idempotently) and return its ticket name.

        Re-enqueueing a job that is already pending, claimed, done or
        dead-lettered is a no-op, so a restarted orchestrator can replay a
        whole grid into an existing queue safely.
        """
        key = job.job_id
        record = self._get_json(f"jobs/{key}.json")
        if record and "job" in record:
            name = record.get("name") or f"{priority_for_cost(cost)}-{key}"
        else:
            name = f"{priority_for_cost(cost)}-{key}"
            # enqueued_at anchors the per-job queue-wait span (see
            # obs.spans.spans_from_result_records); the record stays
            # immutable — losers of the creation race adopt the winner's
            # timestamp along with its ticket name.
            payload = {"job": job.to_record(), "cost": float(cost),
                       "name": name, "enqueued_at": self._clock()}
            if self.transport.cas(f"jobs/{key}.json",
                                  json_dumps_bytes(payload),
                                  if_match=None) is None:
                # Lost an enqueue race: adopt the winner's ticket name so
                # the job cannot end up with two differently-prioritized
                # tickets.
                record = self._get_json(f"jobs/{key}.json") or payload
                name = record.get("name") or name
        # One batched probe for every state that would make the ticket
        # redundant, instead of five sequential round trips.
        probes = self.transport.get_many([
            f"pending/{name}.json",
            f"claims/{name}.json",
            f"done/{name}.json",
            f"results/{key}.json",
            f"dead/{key}.json",
        ])
        if any(got is not None for got in probes):
            return name
        self.transport.cas(f"pending/{name}.json",
                           json_dumps_bytes({"attempts": 0}), if_match=None)
        return name

    def enqueue_grid(self, jobs: Iterable[JobSpec],
                     cost_model: Optional[Any] = None) -> List[str]:
        """Enqueue many jobs, longest-estimated-first when a model is given.

        Fully batched: existing state is listed once up front, the
        (immutable) job records are read and conditionally created in
        bulk (``get_many`` / ``put_many``), and the tickets land in one
        more batch — so replaying a large grid costs O(5 listings + a few
        batch round trips), not O(jobs) round trips, over the HTTP
        transport.  Races with concurrent orchestrators settle exactly as
        in :meth:`enqueue`: a lost conditional create adopts the winner's
        ticket name.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        costs: List[float] = [0.0] * len(jobs)
        if cost_model is not None:
            jobs = cost_model.order(jobs)
            costs = [cost_model.estimate(job) for job in jobs]
        known = {
            "pending": set(self._names("pending")),
            "claims": set(self._names("claims")),
            "done": set(self._names("done")),
            "results": set(self._names("results")),
            "dead": set(self._names("dead")),
        }
        existing = self.transport.get_many(
            [f"jobs/{job.job_id}.json" for job in jobs])
        names: List[str] = []
        creates: List[Tuple[int, bytes]] = []
        for index, (job, cost, got) in enumerate(zip(jobs, costs, existing)):
            record = json_loads_or_none(got[0]) if got is not None else None
            if record and "job" in record:
                names.append(record.get("name")
                             or f"{priority_for_cost(cost)}-{job.job_id}")
            else:
                name = f"{priority_for_cost(cost)}-{job.job_id}"
                payload = {"job": job.to_record(), "cost": float(cost),
                           "name": name, "enqueued_at": self._clock()}
                creates.append((index, json_dumps_bytes(payload)))
                names.append(name)
        if creates:
            outcomes = self.transport.put_many(
                [(f"jobs/{jobs[index].job_id}.json", data, None)
                 for index, data in creates])
            losers = [index for (index, _), tag in zip(creates, outcomes)
                      if tag is None]
            if losers:
                # Lost enqueue races: adopt the winners' ticket names so a
                # job cannot end up with two differently-prioritized
                # tickets (one batched re-read for all losers).
                won = self.transport.get_many(
                    [f"jobs/{jobs[index].job_id}.json" for index in losers])
                for index, got in zip(losers, won):
                    record = (json_loads_or_none(got[0])
                              if got is not None else None)
                    if record and record.get("name"):
                        names[index] = str(record["name"])
        tickets: List[str] = []
        for job, name in zip(jobs, names):
            key = job.job_id
            if (name in known["pending"] or name in known["claims"]
                    or name in known["done"] or key in known["results"]
                    or key in known["dead"]):
                continue
            tickets.append(name)
            known["pending"].add(name)
        if tickets:
            self.transport.put_many(
                [(f"pending/{name}.json",
                  json_dumps_bytes({"attempts": 0}), None)
                 for name in tickets])
        return names

    # -- claim / lease -----------------------------------------------------
    def _lease_payload(self, worker: str, attempts: int,
                       now: float) -> Dict[str, Any]:
        return _lease_doc(worker, attempts, now, self.lease_seconds)

    def claim(self, worker: str = "") -> Optional[WorkItem]:
        """Atomically claim the highest-priority pending job, if any.

        A claim is one conditional create of the ``claims/`` document —
        exactly one creator wins, and the document *is* the lease, so
        there is never a claimed job without an expiry.  Corrupt
        bookkeeping never aborts the scan: a garbage ticket is claimed
        with ``attempts == 0`` (requeueable), while a corrupt immutable
        job record is dead-lettered (nothing left to execute) and the
        scan continues with the next ticket.

        The algorithm is :func:`claim_first_over` — one scan-probe-CAS
        pass: page the pending listing (a claim normally wins inside the
        first page, so an idle poll never ships the whole keyspace),
        batch-probe each candidate window's result, ticket *and* claim
        documents in one round trip, CAS-create the claim document.

        When the transport advertises a server-side claim
        (``claim_first`` — the HTTP transport against a current broker),
        the whole pass runs broker-side as one ``POST /claim`` round
        trip instead of four; the claimant's clock and adopted lease
        policy ride along, so the semantics (including fake-clock tests)
        are identical.  A 404 from an old broker falls back to the
        client-side scan, permanently for this queue object.
        """
        while not self._claim_fallback:
            try:
                outcome = self.transport.claim_first(
                    prefix="pending/", worker=worker, now=self._clock(),
                    lease_seconds=self.lease_seconds)
            except ClaimUnsupported:
                self._claim_fallback = True
                break
            if outcome is None:
                return None
            item = self._item_from_outcome(outcome, worker)
            if item is not None:
                return item
            # The outcome carried a record this client cannot parse
            # (version skew): it was buried client-side; rescan.
        outcome = claim_first_over(
            self.transport, worker=worker, now=self._clock(),
            lease_seconds=self.lease_seconds, registry=self.registry)
        while outcome is not None:
            item = self._item_from_outcome(outcome, worker)
            if item is not None:
                return item
            outcome = claim_first_over(
                self.transport, worker=worker, now=self._clock(),
                lease_seconds=self.lease_seconds, registry=self.registry)
        return None

    def _item_from_outcome(self, outcome: Dict[str, Any],
                           worker: str) -> Optional[WorkItem]:
        """Build a :class:`WorkItem` from a claim outcome document.

        The outcome's job record was validated by whoever ran the scan
        (this process, or the broker answering ``POST /claim``) — but
        that validator may run a different code version, so a record
        that fails to parse *here* is buried from the claim we hold,
        and ``None`` tells the caller to rescan.
        """
        name = str(outcome.get("name", ""))
        key = str(outcome.get("key", "") or self._key_of(name) or "")
        attempts = int(outcome.get("attempts", 0) or 0)
        record = outcome.get("record")
        job_record = (record or {}).get("job") if isinstance(record, dict) \
            else None
        try:
            job = JobSpec.from_record(job_record)
        except (KeyError, TypeError, ValueError, AttributeError):
            self._bury(name, key, attempts,
                       error="corrupt job record (bad spec fields)")
            return None
        cost = float(outcome.get("cost", 0.0) or 0.0)
        lease = outcome.get("lease")
        lease = lease if isinstance(lease, dict) else {}

        def _stamp(value: Any) -> Optional[float]:
            try:
                return float(value) if value is not None else None
            except (TypeError, ValueError):
                return None

        return WorkItem(name=name, key=key, job=job, attempts=attempts,
                        cost=cost, worker=worker,
                        etag=str(outcome.get("etag", "") or ""),
                        enqueued_at=_stamp(record.get("enqueued_at")),
                        claimed_at=_stamp(lease.get("claimed_at")))

    def heartbeat(self, item: WorkItem,
                  metrics: Optional[Dict[str, Any]] = None) -> bool:
        """Extend the lease of a claimed job (call while executing).

        Renewal is a compare-and-swap on the claim document, so a lease
        the scavenger already reclaimed (or another worker re-claimed)
        cannot be resurrected.  Returns ``True`` when the lease is still
        ours and was extended.

        ``metrics`` (a JSON-safe dict, e.g. :meth:`~repro.campaign.dist.
        worker.Worker.metrics_snapshot`) rides along in the renewed
        claim document, where :meth:`worker_metrics` — and through it
        the executor's autoscale tick — can read per-worker throughput
        without any extra round trips or side channels.  The *initial*
        claim document never carries metrics, so the claim path's
        own-write byte comparison is unaffected.
        """
        doc = self._lease_payload(item.worker, item.attempts, self._clock())
        if metrics:
            doc["metrics"] = metrics
        payload = json_dumps_bytes(doc)
        etag = self.transport.cas(f"claims/{item.name}.json", payload,
                                  if_match=item.etag)
        if etag is None:
            # Raced our own previous renewal or lost the claim: re-read
            # once and retry only if the claim still names us.
            got = self.transport.get(f"claims/{item.name}.json")
            if got is None:
                return False
            lease = json_loads_or_none(got[0])
            if not lease or lease.get("worker") != item.worker:
                return False
            etag = self.transport.cas(f"claims/{item.name}.json", payload,
                                      if_match=got[1])
            if etag is None:
                return False
        item.etag = etag
        return True

    # -- settle ------------------------------------------------------------
    def complete(self, item: WorkItem, result: JobResult,
                 timing: Optional[Dict[str, Any]] = None) -> None:
        """Persist ``result`` and retire the claim.

        The result record is the commit point: it is written *before* the
        ``done`` marker and the ticket/claim deletions, so a crash between
        the steps loses no work — the scavenger retires tickets whose
        result already exists.  Completion after a lease expiry (the job
        was requeued and possibly re-run elsewhere) is harmless: results
        are content-derived and therefore identical, and the stale claim
        etag keeps us from touching the new claimant's lease.

        Settling is *one* mixed batch round trip (``mutate_many``): the
        result record, then the done marker, then the retirements —
        batches apply in order, so the result is still the commit point.

        ``timing`` (unix-second stamps: ``enqueued_at``, ``claimed_at``,
        ``started_at``, ``finished_at``, ``stored_at``) is persisted
        inside the result record; :func:`repro.campaign.obs.spans.
        spans_from_result_records` rebuilds per-job queue-wait → run →
        store trace spans from it — telemetry travels through the queue
        itself, so it works across processes and hosts with no side
        channel.
        """
        record = {
            "result": result.to_record(),
            "cached": bool(result.cached),
            "worker": item.worker,
            "attempts": item.attempts + 1,
        }
        if timing:
            record["timing"] = dict(timing)
        self.transport.mutate_many([
            ("put", f"results/{item.key}.json", json_dumps_bytes(record),
             ANY),
            ("put", f"done/{item.name}.json", json_dumps_bytes({}), None),
            ("delete", f"pending/{item.name}.json", None),
            # Conditional on our etag: ours going stale (late completion
            # after requeue) must leave the new claimant's lease alone.
            ("delete", f"claims/{item.name}.json", item.etag or None),
        ])

    def _retire(self, name: str, key: str,
                claim_etag: Optional[str] = None) -> None:
        """Idempotently move a ticket with a persisted result to ``done``.

        A conditional claim delete that misses (ours went stale — late
        completion after requeue) leaves the new claimant's lease alone;
        the scavenger retires it against the result record.
        """
        _retire_over(self.transport, "", name, claim_etag)

    def fail(self, item: WorkItem, error: str) -> str:
        """Record a failed attempt; requeue or dead-letter.

        Returns ``"requeued"`` or ``"dead"``.  This is the path for
        *infrastructure* failures (the worker could not run the job at
        all); workload exceptions are captured into ``JobResult.error`` by
        ``execute_job`` and settle through :meth:`complete`, exactly as
        they do under the in-process executors.
        """
        attempts = item.attempts + 1
        if attempts >= self.max_attempts:
            self._bury(item.name, item.key, attempts, error=error)
            self.registry.counter("queue_dead_letters_total").inc(
                reason="failed")
            return "dead"
        # Fold the attempt into the ticket first, then release the claim
        # (the release is the commit point, mirroring claim): the requeue
        # never deletes a ticket some other worker might rely on, so a
        # racing claim is at worst re-run, never stranded.  One mixed
        # batch; ops apply in order.
        self.transport.mutate_many([
            ("put", f"pending/{item.name}.json",
             json_dumps_bytes({"attempts": attempts}), ANY),
            ("delete", f"claims/{item.name}.json", item.etag or None),
        ])
        return "requeued"

    def _bury(self, name: str, key: str, attempts: int, error: str) -> None:
        _bury_over(self.transport, "", name, key, attempts, error)

    # -- lease scavenging --------------------------------------------------
    def requeue_expired(self, now: Optional[float] = None) -> List[str]:
        """Release expired claims back to pending; heal stale state.

        A garbage claim document counts as expired (the bookkeeping was
        lost, the job was not).  A claim whose result already exists is
        retired instead of retried, and jobs over ``max_attempts`` move to
        the dead-letter state.  The release itself is a conditional
        delete: if the "expired" worker heartbeats concurrently (alive
        after all), its renewal wins and the claim stands.  Returns the
        keys that were requeued.
        """
        now = self._clock() if now is None else now
        have_results = set(self._names("results"))
        have_dead = set(self._names("dead"))
        requeued: List[str] = []
        names = [name for name in self._names("claims")
                 if self._key_of(name) is not None]
        # The heartbeat/scavenge scan reads every claim document in one
        # batch instead of one round trip per claim; the per-claim
        # decision logic below is unchanged.
        leases = self.transport.get_many(
            [f"claims/{name}.json" for name in names])
        expired: List[Tuple[str, str, str, Optional[Dict[str, Any]]]] = []
        for name, got in zip(names, leases):
            key = self._key_of(name)
            if key in have_results:
                self._retire(name, key)
                continue
            if key in have_dead:
                # Crash mid-bury: the dead record is authoritative.
                self.transport.delete_many([
                    (f"pending/{name}.json", None),
                    (f"claims/{name}.json", None),
                ])
                continue
            if got is None:
                continue  # settled concurrently
            lease = json_loads_or_none(got[0])
            if lease is not None and float(lease.get("expires_at",
                                                     0.0)) > now:
                continue  # live lease
            expired.append((name, key, got[1], lease))
        if not expired:
            return requeued
        tickets = self.transport.get_many(
            [f"pending/{name}.json" for name, _, _, _ in expired])
        for (name, key, etag, lease), ticket_doc in zip(expired, tickets):
            ticket = (json_loads_or_none(ticket_doc[0])
                      if ticket_doc is not None else None) or {}
            attempts = int(ticket.get("attempts", 0) or 0)
            if lease is not None:
                attempts = max(attempts, int(lease.get("attempts", 0) or 0))
            attempts += 1
            if attempts >= self.max_attempts:
                self._bury(name, key, attempts,
                           error=f"lease expired after {attempts} attempts "
                                 f"(worker crash or hang)")
                self.registry.counter("queue_dead_letters_total").inc(
                    reason="lease-expired")
                continue
            # Re-create the ticket if a crashed settle removed it, fold in
            # the attempt count, then release the claim — conditionally,
            # so a concurrent heartbeat renewal (the worker lives) wins.
            self._put_json(f"pending/{name}.json", {"attempts": attempts})
            if self._delete(f"claims/{name}.json", if_match=etag):
                requeued.append(key)
        if requeued:
            self.registry.counter("queue_lease_expiries_total").inc(
                len(requeued))
        return requeued

    def retry_dead(self, keys: Optional[Iterable[str]] = None) -> List[str]:
        """Return dead-lettered jobs to pending with a fresh attempt budget
        — the recovery path after fixing whatever infrastructure failure
        exhausted their retries.

        Dead-lettering is otherwise terminal (``enqueue`` refuses to
        revive buried jobs, so replaying a grid cannot silently retry
        them), which would strand a persistent queue forever without
        this.  Restricts to ``keys`` when given; returns the keys
        actually revived (jobs whose spec record is unreadable cannot run
        and stay buried).
        """
        wanted = None if keys is None else set(keys)
        buried = [key for key in self._names("dead")
                  if wanted is None or key in wanted]
        probes = self.transport.get_many(
            [f"results/{key}.json" for key in buried]
            + [f"jobs/{key}.json" for key in buried])
        revived: List[str] = []
        for key, result_doc, job_doc in zip(buried, probes[:len(buried)],
                                            probes[len(buried):]):
            if result_doc is not None:
                self._delete(f"dead/{key}.json")  # already computed
                continue
            record = (json_loads_or_none(job_doc[0])
                      if job_doc is not None else None)
            if not record or "job" not in record:
                continue  # nothing left to execute
            name = record.get("name") or (
                f"{priority_for_cost(float(record.get('cost', 0.0) or 0.0))}"
                f"-{key}")
            self._put_json(f"pending/{name}.json", {"attempts": 0})
            self._delete(f"dead/{key}.json")
            revived.append(key)
        return revived

    # -- inspection --------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Document counts per user-facing state, from listings alone.

        ``pending`` excludes tickets under a claim; ``claimed`` includes
        expired-but-unscavenged claims (use :meth:`live_claimed_keys` to
        distinguish).
        """
        pending = set(self._names("pending"))
        claims = set(self._names("claims"))
        return {"pending": len(pending - claims),
                "claimed": len(claims),
                "done": len(self._names("done")),
                "dead": len(self._names("dead"))}

    def drained(self) -> bool:
        """True when nothing is left to execute (no tickets, no claims).

        Emptiness is probed with one-page listings (a drain poll must not
        ship the whole pending keyspace just to learn it is non-empty).
        A *degraded* page (an unreachable shard under a sharded
        transport's ``degraded_reads``) can never prove emptiness — the
        dead shard may still hold tickets — so it reports not-drained
        rather than letting a fleet shut down over a partial view.
        """
        return self._state_empty("pending") and self._state_empty("claims")

    def _state_empty(self, state: str) -> bool:
        """True when a state prefix holds no ``.json`` documents."""
        start_after = ""
        while True:
            page, token = self.transport.list_page(f"{state}/", 16,
                                                   start_after=start_after)
            if is_degraded(page):
                return False  # an unreadable shard may hold tickets
            if any(key.endswith(".json") for key in page):
                return False
            if token is None:
                return True
            start_after = token  # page of foreign names only: keep looking

    def pending_keys(self) -> List[str]:
        """Keys claimable right now (ticket present, no claim document)."""
        claims = set(self._names("claims"))
        return [key for key in (self._key_of(name)
                                for name in self._names("pending")
                                if name not in claims)
                if key is not None]

    def claimed_keys(self) -> List[str]:
        """Keys under a claim document (live or expired)."""
        return [key for key in map(self._key_of, self._names("claims"))
                if key is not None]

    def live_claimed_keys(self, now: Optional[float] = None) -> List[str]:
        """Claimed jobs whose lease is still live (read-only probe).

        A claim with a garbage or expired lease belongs to a crashed
        worker: it is *requeueable*, not running, and status reporting
        should say so even before a scavenger runs.
        """
        now = self._clock() if now is None else now
        names = [name for name in self._names("claims")
                 if self._key_of(name) is not None]
        live: List[str] = []
        for name, got in zip(names, self.transport.get_many(
                [f"claims/{name}.json" for name in names])):
            lease = json_loads_or_none(got[0]) if got is not None else None
            if lease is not None and float(lease.get("expires_at",
                                                     0.0)) > now:
                live.append(self._key_of(name))
        return live

    def worker_metrics(self, now: Optional[float] = None
                       ) -> Dict[str, Dict[str, Any]]:
        """Per-worker metrics snapshots from live claim documents.

        Workers attach :meth:`~repro.campaign.dist.worker.Worker.
        metrics_snapshot` to every heartbeat renewal (see
        :meth:`heartbeat`), so the claims/ state doubles as a fleet
        health board: one batched read per call, no extra protocol.
        Returns ``{worker_id: metrics}`` for workers holding a live
        lease whose renewal carried metrics; a worker holding several
        claims reports its freshest snapshot.
        """
        now = self._clock() if now is None else now
        names = [name for name in self._names("claims")
                 if self._key_of(name) is not None]
        out: Dict[str, Dict[str, Any]] = {}
        for got in self.transport.get_many(
                [f"claims/{name}.json" for name in names]):
            lease = json_loads_or_none(got[0]) if got is not None else None
            if not lease or float(lease.get("expires_at", 0.0)) <= now:
                continue
            metrics = lease.get("metrics")
            worker = str(lease.get("worker", "") or "")
            if not worker or not isinstance(metrics, dict):
                continue
            held = out.get(worker)
            if (held is None or float(metrics.get("at", 0.0))
                    >= float(held.get("at", 0.0))):
                out[worker] = metrics
        return out

    def terminal_keys(self) -> set:
        """Keys in a terminal state (result persisted or dead-lettered).

        Computed from listings alone — no document reads — so drain
        polling stays cheap (two round trips on the HTTP transport).
        """
        return set(self._names("results")) | set(self._names("dead"))

    def backlog(self, now: Optional[float] = None,
                max_names: int = _BACKLOG_SCAN_CAP) -> Dict[str, float]:
        """Claimable depth and estimated cost backlog, from listings alone.

        The cost estimate of every unclaimed ticket is decoded from its
        priority-encoded name (:func:`cost_for_priority`), so autoscaling
        decisions cost a few listing pages per tick — no record reads.
        The pending scan is *paginated and capped* at ``max_names``
        claimable tickets: beyond the cap the counts are reported as
        (ample) lower bounds with ``truncated`` set, since any realistic
        :class:`~repro.campaign.dist.costmodel.AutoscalePolicy` saturates
        its ``max_workers`` long before then — the autoscaler must not
        ship a million-ticket keyspace every tick to decide "scale to 8".
        Returns ``{"pending": <ticket count>, "seconds": <summed
        estimate>, "truncated": 0.0 or 1.0}``.
        """
        claims = set(self._names("claims"))
        names: List[str] = []
        truncated = False
        start_after = ""
        head = len("pending/")
        while True:
            page, token = self.transport.list_page(
                "pending/", min(_SCAN_PAGE * 8, max(1, max_names)),
                start_after=start_after)
            for full_key in page:
                if not full_key.endswith(".json"):
                    continue
                name = full_key[head:-5]
                if name not in claims and self._key_of(name) is not None:
                    names.append(name)
            if token is None:
                break
            if len(names) >= max_names:
                truncated = True
                break
            start_after = token
        return {"pending": float(len(names)),
                "seconds": sum(cost_for_priority(name) for name in names),
                "truncated": 1.0 if truncated else 0.0}

    def results(self) -> Dict[str, JobResult]:
        """All persisted results, keyed by job key (corrupt records skipped)."""
        out: Dict[str, JobResult] = {}
        for key, record in self.result_records().items():
            result = result_from_record_or_none(
                record, cached=bool(record.get("cached")))
            if result is not None:
                out[key] = result
        return out

    def result_records(self) -> Dict[str, Dict[str, Any]]:
        """Raw result documents keyed by job key — including the settling
        worker's identity and attempt number, for audits and tests."""
        return self._read_state("results")

    def dead(self) -> Dict[str, Dict[str, Any]]:
        """Dead-letter records keyed by job key."""
        return self._read_state("dead")

    def _read_state(self, state: str) -> Dict[str, Dict[str, Any]]:
        """All of one state's documents, fetched in batches (a 10k-result
        collection is a handful of round trips, not 10k)."""
        keys = self._names(state)
        out: Dict[str, Dict[str, Any]] = {}
        for key, got in zip(keys, self.transport.get_many(
                [f"{state}/{key}.json" for key in keys])):
            record = json_loads_or_none(got[0]) if got is not None else None
            if record is not None:
                out[key] = record
        return out

    def __repr__(self) -> str:
        counts = self.counts()
        where = self.address or repr(self.transport)
        return (f"WorkQueue({where!r}, pending={counts['pending']}, "
                f"claimed={counts['claimed']}, done={counts['done']}, "
                f"dead={counts['dead']})")
