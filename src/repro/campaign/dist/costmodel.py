"""Per-case runtime estimates for longest-job-first campaign scheduling.

Fanning a grid out over a worker pool suffers stragglers when a long job is
claimed last; ordering the queue by *descending estimated runtime* keeps the
tail short (classic LPT scheduling).  The estimates are learned, not
declared: every executed :class:`~repro.campaign.jobs.JobResult` carries its
wall time, and :func:`~repro.campaign.runner.run_campaign` feeds fresh
results into the model persisted alongside the result cache — so the second
campaign over a similar grid is scheduled from the first one's measurements.

Two granularities back an estimate:

* an exact per-job EWMA keyed by ``job_id`` (re-runs of the very same
  configuration, e.g. after a physics bump or a widened grid);
* a per-case running mean as the fallback for unseen configurations.

Unknown cases fall back to a neutral constant, which degrades to FIFO
ordering — correct, just not optimized.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.campaign.jobs import JobResult
from repro.campaign.jsonio import atomic_write_json, read_json_or_none
from repro.campaign.spec import JobSpec

#: Estimate used when nothing at all is known about a job's case.
DEFAULT_COST = 1.0

#: Smoothing factor of the exact per-job EWMA (recent runs dominate).
EWMA_ALPHA = 0.5

#: Filename used when persisting the model alongside a result cache.
COSTMODEL_FILENAME = "costmodel.json"


class CostModel:
    """Learned wall-time estimates with optional JSON persistence."""

    def __init__(self, path: Optional[os.PathLike] = None):
        self.path = Path(path) if path is not None else None
        self._exact: Dict[str, float] = {}
        self._cases: Dict[str, Dict[str, float]] = {}
        if self.path is not None:
            self.load()

    @classmethod
    def alongside(cls, cache: Any) -> "CostModel":
        """The model persisted next to a ``ResultCache``'s entries."""
        return cls(Path(cache.root) / COSTMODEL_FILENAME)

    # -- learning ----------------------------------------------------------
    def observe(self, result: JobResult) -> None:
        """Fold one executed result's wall time into the model.

        Cache-served results are ignored (their wall time measures disk
        reads, not the simulation); failed jobs still count — a diverging
        configuration occupies a worker for exactly as long as it ran.
        """
        wall = float(result.wall_time)
        # NB: json round-trips NaN, and `NaN <= 0` is False — mirror the
        # load()-path finiteness filter or one bad record poisons the
        # case mean (and order()'s sort) for the life of the process.
        if result.cached or not math.isfinite(wall) or wall <= 0:
            return
        previous = self._exact.get(result.job_id)
        self._exact[result.job_id] = (wall if previous is None else
                                      EWMA_ALPHA * wall
                                      + (1.0 - EWMA_ALPHA) * previous)
        stats = self._cases.setdefault(result.case, {"count": 0.0, "mean": 0.0})
        stats["count"] += 1.0
        stats["mean"] += (wall - stats["mean"]) / stats["count"]

    def observe_many(self, results: Iterable[JobResult]) -> None:
        for result in results:
            self.observe(result)

    # -- estimation / scheduling ------------------------------------------
    def estimate(self, job: JobSpec) -> float:
        """Expected wall time of ``job`` in seconds."""
        exact = self._exact.get(job.job_id)
        if exact is not None:
            return exact
        stats = self._cases.get(job.case)
        if stats and stats["count"] > 0:
            return float(stats["mean"])
        return DEFAULT_COST

    def order(self, jobs: Iterable[JobSpec]) -> List[JobSpec]:
        """Longest-estimated-first, ties broken by grid position.

        The tiebreak keeps ordering deterministic, so two orchestrators
        replaying the same grid enqueue identically.
        """
        return sorted(jobs, key=lambda job: (-self.estimate(job), job.index))

    # -- persistence -------------------------------------------------------
    def load(self) -> None:
        """Load persisted estimates; a missing or corrupt file is empty.

        Crash consistency mirrors the result cache: the model is a pure
        optimization, so garbage on disk degrades scheduling, never
        correctness.
        """
        if self.path is None:
            return
        payload = read_json_or_none(self.path)
        if payload is None:
            return
        exact = payload.get("exact", {})
        cases = payload.get("cases", {})
        def usable(value: Any) -> bool:
            # NB: json round-trips Infinity/NaN, and bool is an int subclass
            # — both would poison estimates/sorting downstream.
            return (isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and math.isfinite(value))

        if isinstance(exact, dict):
            self._exact = {str(k): float(v) for k, v in exact.items()
                           if usable(v)}
        if isinstance(cases, dict):
            # Field-level corruption (nulls, strings, non-finite) drops the
            # entry, never raises: the model is a hint, not a dependency.
            self._cases = {
                str(case): {"count": float(stats["count"]),
                            "mean": float(stats["mean"])}
                for case, stats in cases.items()
                if isinstance(stats, dict)
                and usable(stats.get("count")) and usable(stats.get("mean"))
            }

    def save(self) -> Optional[Path]:
        """Atomically persist the model (no-op without a path)."""
        if self.path is None:
            return None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        return atomic_write_json(self.path,
                                 {"exact": self._exact, "cases": self._cases})

    def __len__(self) -> int:
        return len(self._exact)

    def __repr__(self) -> str:
        return (f"CostModel(jobs={len(self._exact)}, "
                f"cases={sorted(self._cases)})")
