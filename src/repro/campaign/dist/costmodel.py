"""Cost-driven scheduling: runtime estimates and worker autoscaling.

Fanning a grid out over a worker pool suffers stragglers when a long job is
claimed last; ordering the queue by *descending estimated runtime* keeps the
tail short (classic LPT scheduling).  The estimates are learned, not
declared: every executed :class:`~repro.campaign.jobs.JobResult` carries its
wall time, and :func:`~repro.campaign.runner.run_campaign` feeds fresh
results into the model persisted alongside the result cache — so the second
campaign over a similar grid is scheduled from the first one's measurements.

Two granularities back a :class:`CostModel` estimate:

* an exact per-job EWMA keyed by ``job_id`` (re-runs of the very same
  configuration, e.g. after a physics bump or a widened grid);
* a per-case running mean as the fallback for unseen configurations.

Unknown cases fall back to a neutral constant, which degrades to FIFO
ordering — correct, just not optimized.

The same cost signal sizes the fleet: :class:`AutoscalePolicy` turns the
queue's claimable depth and its priority-decoded cost backlog (both
computed from listings alone — see
:meth:`~repro.campaign.dist.queue.WorkQueue.backlog`) into a desired
worker count that
:class:`~repro.campaign.dist.executor.DistributedExecutor` consults each
scheduling tick instead of spawning a fixed fleet.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.campaign.jobs import JobResult
from repro.campaign.jsonio import (
    atomic_write_json,
    json_dumps_bytes,
    json_loads_or_none,
    read_json_or_none,
)
from repro.campaign.spec import JobSpec

#: Estimate used when nothing at all is known about a job's case.
DEFAULT_COST = 1.0

#: Smoothing factor of the exact per-job EWMA (recent runs dominate).
EWMA_ALPHA = 0.5

#: Filename used when persisting the model alongside a result cache.
COSTMODEL_FILENAME = "costmodel.json"


class CostModel:
    """Learned wall-time estimates with optional JSON persistence.

    Persistence rides either a plain ``path`` (the original mode) or any
    :class:`~repro.campaign.dist.transport.QueueTransport` plus a ``key``
    — so when the result cache lives behind the HTTP broker, its
    scheduling priors follow it there instead of demanding a shared
    filesystem.  Over a filesystem transport the stored bytes and
    location (``<root>/costmodel.json``) are identical to path mode.
    """

    def __init__(self, path: Optional[os.PathLike] = None,
                 transport: Optional[Any] = None,
                 key: str = COSTMODEL_FILENAME):
        self.path = Path(path) if path is not None else None
        self.transport = transport
        self.key = key
        self._exact: Dict[str, float] = {}
        self._cases: Dict[str, Dict[str, float]] = {}
        if self.persistent:
            self.load()

    @classmethod
    def alongside(cls, cache: Any) -> "CostModel":
        """The model persisted next to a result cache's entries — through
        the cache's own transport, so broker-hosted caches carry their
        scheduling priors too."""
        transport = getattr(cache, "transport", None)
        if transport is not None:
            return cls(transport=transport, key=COSTMODEL_FILENAME)
        return cls(Path(cache.root) / COSTMODEL_FILENAME)

    @property
    def persistent(self) -> bool:
        """True when :meth:`save` durably persists the model somewhere."""
        return self.path is not None or self.transport is not None

    # -- learning ----------------------------------------------------------
    def observe(self, result: JobResult) -> None:
        """Fold one executed result's wall time into the model.

        Cache-served results are ignored (their wall time measures disk
        reads, not the simulation); failed jobs still count — a diverging
        configuration occupies a worker for exactly as long as it ran.
        """
        wall = float(result.wall_time)
        # NB: json round-trips NaN, and `NaN <= 0` is False — mirror the
        # load()-path finiteness filter or one bad record poisons the
        # case mean (and order()'s sort) for the life of the process.
        if result.cached or not math.isfinite(wall) or wall <= 0:
            return
        previous = self._exact.get(result.job_id)
        self._exact[result.job_id] = (wall if previous is None else
                                      EWMA_ALPHA * wall
                                      + (1.0 - EWMA_ALPHA) * previous)
        stats = self._cases.setdefault(result.case, {"count": 0.0, "mean": 0.0})
        stats["count"] += 1.0
        stats["mean"] += (wall - stats["mean"]) / stats["count"]

    def observe_many(self, results: Iterable[JobResult]) -> None:
        """Fold a batch of executed results into the model (see :meth:`observe`)."""
        for result in results:
            self.observe(result)

    # -- estimation / scheduling ------------------------------------------
    def estimate(self, job: JobSpec) -> float:
        """Expected wall time of ``job`` in seconds."""
        exact = self._exact.get(job.job_id)
        if exact is not None:
            return exact
        stats = self._cases.get(job.case)
        if stats and stats["count"] > 0:
            return float(stats["mean"])
        return DEFAULT_COST

    def order(self, jobs: Iterable[JobSpec]) -> List[JobSpec]:
        """Longest-estimated-first, ties broken by grid position.

        The tiebreak keeps ordering deterministic, so two orchestrators
        replaying the same grid enqueue identically.
        """
        return sorted(jobs, key=lambda job: (-self.estimate(job), job.index))

    # -- persistence -------------------------------------------------------
    def load(self) -> None:
        """Load persisted estimates; a missing or corrupt file is empty.

        Crash consistency mirrors the result cache: the model is a pure
        optimization, so garbage on disk degrades scheduling, never
        correctness.
        """
        if self.transport is not None:
            got = self.transport.get(self.key)
            payload = json_loads_or_none(got[0]) if got is not None else None
        elif self.path is not None:
            payload = read_json_or_none(self.path)
        else:
            return
        if payload is None:
            return
        exact = payload.get("exact", {})
        cases = payload.get("cases", {})
        def usable(value: Any) -> bool:
            # NB: json round-trips Infinity/NaN, and bool is an int subclass
            # — both would poison estimates/sorting downstream.
            return (isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and math.isfinite(value))

        if isinstance(exact, dict):
            self._exact = {str(k): float(v) for k, v in exact.items()
                           if usable(v)}
        if isinstance(cases, dict):
            # Field-level corruption (nulls, strings, non-finite) drops the
            # entry, never raises: the model is a hint, not a dependency.
            self._cases = {
                str(case): {"count": float(stats["count"]),
                            "mean": float(stats["mean"])}
                for case, stats in cases.items()
                if isinstance(stats, dict)
                and usable(stats.get("count")) and usable(stats.get("mean"))
            }

    def save(self) -> Optional[os.PathLike]:
        """Atomically persist the model; a no-op without a store.

        Returns the path (path mode), the storage key (transport mode),
        or ``None`` when the model is in-memory only.
        """
        payload = {"exact": self._exact, "cases": self._cases}
        if self.transport is not None:
            self.transport.put(self.key, json_dumps_bytes(payload))
            return self.key
        if self.path is None:
            return None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        return atomic_write_json(self.path, payload)

    def __len__(self) -> int:
        return len(self._exact)

    def __repr__(self) -> str:
        return (f"CostModel(jobs={len(self._exact)}, "
                f"cases={sorted(self._cases)})")


@dataclass
class AutoscalePolicy:
    """Sizes a worker fleet from queue depth and cost-model backlog.

    :class:`~repro.campaign.dist.executor.DistributedExecutor` consults
    the policy on every scheduling tick: it *grows* the fleet by spawning
    workers up to :meth:`desired_workers`, and *shrinks* it by attrition —
    autoscaled workers run with ``idle_timeout``, so a worker that finds
    no claimable ticket for that long exits on its own.  Shrinking by
    starvation (rather than terminating processes) can never kill a
    worker mid-job, so scale-down consumes no retry attempts.

    Two signals drive the target, both computed from queue listings alone
    (:meth:`~repro.campaign.dist.queue.WorkQueue.backlog`):

    * **queue depth** — one worker per ``jobs_per_worker`` claimable
      tickets;
    * **cost backlog** — when ``backlog_seconds`` is set, enough workers
      that the estimated sequential runtime of the unclaimed tickets
      (decoded from their priority-encoded names, i.e. the cost model's
      estimates at enqueue time) divides below that bound.

    The larger demand wins, clamped into ``[min_workers, max_workers]``
    while work remains; with nothing claimable the target is zero (running
    jobs still finish — nothing preempts a claim).

    >>> policy = AutoscalePolicy(min_workers=1, max_workers=4,
    ...                          jobs_per_worker=4.0, backlog_seconds=60.0)
    >>> policy.desired_workers(pending=8, backlog=30.0)   # depth: 8/4
    2
    >>> policy.desired_workers(pending=2, backlog=600.0)  # backlog: 600/60
    4
    >>> policy.desired_workers(pending=0, backlog=0.0)
    0
    """

    min_workers: int = 1
    max_workers: int = 8
    jobs_per_worker: float = 4.0
    backlog_seconds: float = 0.0
    #: Idle seconds after which an autoscaled worker exits (the shrink path).
    idle_timeout: float = 2.0

    def __post_init__(self):
        if self.min_workers < 0:
            raise ValueError("min_workers must be >= 0")
        if self.max_workers < max(1, self.min_workers):
            raise ValueError("max_workers must be >= max(1, min_workers)")
        if self.jobs_per_worker <= 0:
            raise ValueError("jobs_per_worker must be positive")
        if self.backlog_seconds < 0:
            raise ValueError("backlog_seconds must be >= 0")
        if self.idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")

    def desired_workers(self, pending: float, backlog: float) -> int:
        """Target fleet size for ``pending`` claimable tickets whose summed
        cost estimate is ``backlog`` seconds.  Zero when nothing is
        claimable."""
        if pending <= 0:
            return 0
        by_depth = math.ceil(pending / self.jobs_per_worker)
        by_backlog = (math.ceil(backlog / self.backlog_seconds)
                      if self.backlog_seconds > 0 else 0)
        return min(self.max_workers,
                   max(self.min_workers, 1, by_depth, by_backlog))

    def desired_from(self, backlog: Mapping[str, float]) -> int:
        """:meth:`desired_workers` over a
        :meth:`~repro.campaign.dist.queue.WorkQueue.backlog` mapping."""
        return self.desired_workers(pending=backlog.get("pending", 0.0),
                                    backlog=backlog.get("seconds", 0.0))

    def __repr__(self) -> str:
        return (f"AutoscalePolicy(min={self.min_workers}, "
                f"max={self.max_workers}, "
                f"jobs_per_worker={self.jobs_per_worker}, "
                f"backlog_seconds={self.backlog_seconds})")
