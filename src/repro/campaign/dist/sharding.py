"""Multi-broker sharding: one ``QueueTransport`` over N backing stores.

One broker is one host.  :class:`ShardedTransport` scales the transport
seam horizontally by consistent-hashing opaque keys across multiple
child transports (typically :class:`~repro.campaign.dist.transport.
HttpTransport` brokers, ``--queue http://b1:8123,http://b2:8123``) while
presenting the exact same contract the queue, cache and cost model
already run on — so a sharded fleet is a drop-in address change, not a
code change.

Routing
-------

Keys are routed by a *derived routing key*, not the raw key: the last
path segment, minus a ``.json`` suffix, minus the queue's 10-digit
priority prefix (``routing_key("pending/0000000017-abc.json") ==
"abc"``).  This co-locates a job's whole document family —
``jobs/<key>.json``, ``pending/<prio>-<key>.json``,
``claims/<prio>-<key>.json``, ``results/<key>.json``,
``done/<prio>-<key>.json``, ``dead/<key>.json`` — on one shard, which is
load-bearing: a broker answering ``POST /claim`` runs the whole
scan-probe-CAS pass against *its own* store, and must find the ticket's
immutable job record there (a missing record is dead-lettered as
corrupt, by design).  Naive per-raw-key routing would scatter the family
and bury healthy jobs.  The hash ring is built from shard *positions*
(``shard-<i>/vnode-<j>``), so routing is a pure function of the ordered
shard list — stable across processes, across router instances, and for
address-less in-memory shards.  Reordering the shard list therefore
changes the mapping; the epoch handshake below turns that mistake into a
hard error instead of a silently split keyspace.

Scatter-gather
--------------

``list`` k-way-merges the children's sorted listings; ``list_page``
fetches one page per shard from the same global ``start_after``, merges,
and returns the first ``max_keys`` keys — the continuation token stays a
plain *keyset* token (the last key returned), valid because every key a
shard did not ship is provably greater than the merged page's last key.
``get_many`` / ``put_many`` / ``delete_many`` / ``mutate_many`` group
items per shard, ride each child's native batch path, and reassemble
outcomes in input order (same-key ops co-locate, so per-key ordering
survives).  Batches spanning shards are *not* transactions — but they
never were on a single broker either (per-item outcomes).

``claim_first`` round-robins the shards (a rotating starting offset per
router, so idle polls spread load) and returns the first shard's claim.
If *any* shard cannot claim server-side, the router raises
:class:`~repro.campaign.dist.transport.ClaimUnsupported` so the queue
falls back to its client-side scan over the router — a half-supported
fleet must not look drained while unsupported shards still hold tickets.

Partial failure: breakers and degraded mode
-------------------------------------------

Every routed operation runs through a per-shard
:class:`~repro.campaign.dist.breaker.CircuitBreaker`: ``breaker_failures``
consecutive transport failures trip the shard's breaker open, after
which operations targeting it are *shed* instantly (one
``TransportError`` naming the shard, no connect-retry budget burned)
until ``breaker_cooldown`` seconds pass and a half-open probe is
admitted.  Breaker state is exported through the obs registry
(``shard_breaker_state`` gauge: 0/1/2 = closed/half-open/open;
``shard_ops_shed_total`` counter) and every transition emits a
structured ``[sharding] breaker ...`` log event; the most recent
transitions are also kept on :attr:`ShardedTransport.breaker_events`.

The degraded-mode contract (see ``docs/robustness.md``):

* **claims keep flowing** — :meth:`ShardedTransport.claim_first` skips
  unreachable/open-circuit shards and serves the healthy ring, so
  fleet-wide longest-job-first degrades to *longest-available-first*;
  it raises only when **no** shard answers.
* **reads are strict by default** — scatter-gather ``list`` /
  ``list_page`` / ``get_many`` raise fast naming the dead shard
  (correctness-preserving: a partial listing must not masquerade as the
  whole keyspace).  Under ``degraded_reads=True`` they return partial
  results tagged as :class:`~repro.campaign.dist.transport.
  DegradedResult` (a ``list`` subclass carrying ``missing_shards``), so
  status surfaces can render "N of M shards reporting" while
  correctness-critical callers (``WorkQueue.drained``) refuse the
  partial view.
* **writes fail fast** — an operation routed to an open-circuit shard
  raises immediately with the shard's address in the message instead of
  burning the transport's full retry budget.

Epoch / drain protocol
----------------------

Before its first routed operation the router stamps every shard with a
fleet *epoch* document at :data:`EPOCH_KEY` (``meta/epoch``): a hash of
the ordered shard identities (and vnode count).  A shard already stamped
with a *different* epoch raises :class:`EpochMismatch` — a **config
error** (the shard belongs to a differently-shaped fleet), which fails
fast and is never retried or breaker-counted.  A shard that is merely
*unreachable* during the handshake raises a plain ``TransportError``
(retryable, breaker territory): the reachable shards are stamped and
usable immediately, and the unreachable shard's stamp is retried on the
next operation its breaker admits.  To reshard: drain the queue, delete
``meta/epoch`` on every broker, then point the new shard list at them.
See ``docs/distributed.md`` ("Sharded fleets") for the operational
recipe.

>>> from repro.campaign.dist.transport import MemoryTransport
>>> shards = [MemoryTransport(), MemoryTransport()]
>>> router = ShardedTransport(shards)
>>> tag = router.put("jobs/a.json", b"{}")
>>> router.get("jobs/a.json") == (b"{}", tag)
True
>>> router.shard_for("jobs/a.json") is router.shard_for(
...     "pending/0000000007-a.json")  # family co-location
True
>>> sum(t.get("jobs/a.json") is not None for t in shards)  # exactly one
1
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import re
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.dist.breaker import (
    CircuitBreaker,
    OPEN,
    state_code,
)
from repro.campaign.dist.transport import (
    ClaimUnsupported,
    DegradedResult,
    QueueTransport,
    TransportError,
)
from repro.campaign.jsonio import json_dumps_bytes, json_loads_or_none
from repro.campaign.obs import MetricsRegistry, StructLogger, get_registry

#: Where each shard's fleet-epoch document lives.  Deliberately outside
#: the queue's state prefixes (``jobs/``/``pending/``/...), so queue and
#: cache listings never see it.
EPOCH_KEY = "meta/epoch"

#: Virtual nodes per shard on the hash ring.  64 points per shard keeps
#: the keyspace split within a few percent of even for small fleets
#: while the ring stays tiny (N*64 bisect entries).
DEFAULT_VNODES = 64

#: The queue's zero-padded cost-priority prefix on ticket basenames
#: (``pending/0000000017-<key>.json``) — stripped before routing so a
#: ticket routes with its job family.
_PRIORITY_PREFIX = re.compile(r"^\d{10}-")


class EpochMismatch(TransportError):
    """A shard is stamped with a *different* fleet epoch.

    This is a configuration error, not an outage: the shard belongs to a
    differently-shaped fleet, and routing against it would read and
    write a split keyspace.  It is raised fast, never retried, and never
    counted against the shard's circuit breaker — retrying cannot fix a
    wrong shard list.  (A shard that is merely unreachable raises a
    plain :class:`~repro.campaign.dist.transport.TransportError`
    instead: that *is* retryable, and breaker territory.)
    """


def routing_key(key: str) -> str:
    """The substring of ``key`` the router hashes.

    Last path segment, minus ``.json``, minus the 10-digit priority
    prefix — i.e. the job key for every document in a job's family, so
    they all land on one shard.  Falls back to the raw key when the
    basename strips to nothing.

    >>> routing_key("jobs/abc123.json")
    'abc123'
    >>> routing_key("pending/0000000017-abc123.json")
    'abc123'
    >>> routing_key("queue.json")
    'queue'
    >>> routing_key("ab/abcdef.json")  # cache entries route on the hash
    'abcdef'
    """
    base = key.rsplit("/", 1)[-1]
    if base.endswith(".json"):
        base = base[:-5]
    base = _PRIORITY_PREFIX.sub("", base)
    return base or key


def fleet_epoch(identities: Sequence[str],
                vnodes: int = DEFAULT_VNODES) -> str:
    """Deterministic epoch id for an ordered shard list.

    Any change that remaps keys — adding, removing or *reordering*
    shards, or changing the vnode count — changes the epoch.
    """
    material = "\n".join([str(int(vnodes))] + [str(i) for i in identities])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def _ring_point(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class ShardedTransport(QueueTransport):
    """Consistent-hash router over child transports; see module docs.

    ``shards`` is the ordered list of child transports (order is part of
    the fleet identity — see the epoch protocol).  ``address`` is the
    comma-joined child addresses when every child has one (so a worker
    process can be spawned with the same ``--queue`` string), else
    ``None`` (thread fleets over in-memory shards).

    ``breaker_failures`` / ``breaker_cooldown`` tune the per-shard
    circuit breakers (consecutive failures to trip; seconds shed before
    a half-open probe).  ``degraded_reads=True`` opts scatter-gather
    reads into partial :class:`~repro.campaign.dist.transport.
    DegradedResult` answers instead of raising on the first dead shard.
    """

    def __init__(self, shards: Sequence[QueueTransport],
                 vnodes: int = DEFAULT_VNODES,
                 registry: Optional[MetricsRegistry] = None,
                 check_epoch: bool = True,
                 breaker_failures: int = 5,
                 breaker_cooldown: float = 5.0,
                 breaker_clock=time.monotonic,
                 degraded_reads: bool = False):
        shards = list(shards)
        if not shards:
            raise ValueError("ShardedTransport needs at least one shard")
        self.shards: List[QueueTransport] = shards
        self.vnodes = max(1, int(vnodes))
        self.identities: List[str] = [
            getattr(shard, "address", None) or f"shard-{index}"
            for index, shard in enumerate(shards)]
        addresses = [getattr(shard, "address", None) for shard in shards]
        self.address = (",".join(addresses)
                        if all(addresses) else None)
        self.epoch = fleet_epoch(self.identities, self.vnodes)
        self.degraded_reads = bool(degraded_reads)
        # Ring points hash shard *positions*, not addresses: the mapping
        # must be identical for every router built over the same ordered
        # shard list, including address-less MemoryTransport shards.
        points: List[Tuple[int, int]] = []
        for index in range(len(shards)):
            for vnode in range(self.vnodes):
                points.append(
                    (_ring_point(f"shard-{index}/vnode-{vnode}"), index))
        points.sort()
        self._ring_hashes = [point for point, _ in points]
        self._ring_shards = [index for _, index in points]
        self._claim_offset = 0
        self._lock = threading.Lock()
        self._swept = not check_epoch
        self._stamped = [not check_epoch] * len(shards)
        # A detected epoch conflict is permanent for this router: the
        # ring mapping itself is wrong, so every later op must keep
        # failing fast instead of stamping the reachable shards anyway.
        self._epoch_conflict: Optional[EpochMismatch] = None
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(failure_threshold=breaker_failures,
                           cooldown_seconds=breaker_cooldown,
                           clock=breaker_clock)
            for _ in shards]
        #: Recent breaker transitions as ``(identity, old, new)`` tuples —
        #: bounded, newest last; chaos tests assert trip/probe/reclose
        #: sequences from here.
        self.breaker_events: deque = deque(maxlen=256)
        self._breaker_seen = ["closed"] * len(shards)
        self._events = StructLogger("sharding")
        registry = registry if registry is not None else get_registry()
        self._ops = registry.counter(
            "sharded_ops_total",
            "operations routed through the shard router, by op and shard")
        self._shed = registry.counter(
            "shard_ops_shed_total",
            "operations shed because the target shard's circuit was open")
        self._breaker_gauge = registry.gauge(
            "shard_breaker_state",
            "per-shard circuit state: 0=closed 1=half-open 2=open")
        for identity in self.identities:
            self._breaker_gauge.set(0, shard=identity)

    # -- routing -----------------------------------------------------------
    def shard_index(self, key: str) -> int:
        """Index of the shard owning ``key`` (stable and total)."""
        point = _ring_point(routing_key(key))
        i = bisect.bisect_right(self._ring_hashes, point)
        if i == len(self._ring_hashes):
            i = 0
        return self._ring_shards[i]

    def shard_for(self, key: str) -> QueueTransport:
        """The child transport owning ``key``."""
        return self.shards[self.shard_index(key)]

    def _group(self, keys: Sequence[str]) -> Dict[int, List[int]]:
        """Input positions grouped by owning shard, order preserved."""
        groups: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(self.shard_index(key), []).append(position)
        return groups

    # -- breaker funnel ----------------------------------------------------
    def _note_breaker(self, index: int, new_state: str) -> None:
        """Record a breaker transition (gauge + log + event ring)."""
        old = self._breaker_seen[index]
        if new_state == old:
            return
        self._breaker_seen[index] = new_state
        identity = self.identities[index]
        self._breaker_gauge.set(state_code(new_state), shard=identity)
        self.breaker_events.append((identity, old, new_state))
        self._events.event("breaker", shard=identity, state=new_state,
                           previous=old,
                           failures=self.breakers[index].failures)

    def _shard_call(self, index: int, op: str, call):
        """Run one shard operation through that shard's circuit breaker.

        Open circuit: shed instantly (``shard_ops_shed_total``) with the
        shard's address in the error — no retry budget burned.  The
        shard's epoch stamp is (re)verified first when still pending;
        :class:`EpochMismatch` passes through without touching the
        breaker (config errors are not outages), every other
        ``TransportError`` counts as a failure, and any success recloses.
        """
        breaker = self.breakers[index]
        identity = self.identities[index]
        if not breaker.allow():
            self._shed.inc(op=op, shard=identity)
            raise TransportError(
                f"shard {identity} circuit is open after "
                f"{breaker.failures} consecutive failures: shedding {op} "
                f"(next probe in <= {breaker.cooldown_seconds:.1f}s)",
                address=getattr(self.shards[index], "address", None))
        if self._breaker_seen[index] == OPEN:
            # allow() just admitted the first post-cooldown caller: that
            # *is* the half-open probe — surface it before the outcome.
            self._note_breaker(index, breaker.state)
        try:
            self._ensure_epoch(index)
            result = call()
        except EpochMismatch:
            raise
        except TransportError:
            self._note_breaker(index, breaker.record_failure())
            raise
        self._note_breaker(index, breaker.record_success())
        return result

    # -- epoch handshake ---------------------------------------------------
    def _epoch_doc(self, index: int) -> bytes:
        return json_dumps_bytes({
            "epoch": self.epoch,
            "shard": index,
            "shards": len(self.shards),
            "identity": self.identities[index],
            "identities": self.identities,
            "vnodes": self.vnodes,
        })

    def _ensure_epoch(self, index: int) -> None:
        """Verify ``index``'s epoch stamp (and sweep the fleet once).

        Lazy like every other transport's connection setup: constructing
        a router is free and offline; the first routed operation sweeps
        every shard with one get-or-create.  A shard that is unreachable
        during the sweep does **not** poison the others — its error is
        held (and counted against its breaker), the reachable shards are
        stamped and usable, and the stamp is retried on the next
        operation the shard's breaker admits.  A shard stamped with a
        different epoch raises :class:`EpochMismatch` immediately.
        """
        if self._epoch_conflict is not None:
            raise self._epoch_conflict
        if self._swept and self._stamped[index]:
            return
        with self._lock:
            if self._epoch_conflict is not None:
                raise self._epoch_conflict
            if not self._swept:
                self._swept = True
                for other in range(len(self.shards)):
                    if other == index or self._stamped[other]:
                        continue
                    try:
                        self._stamp_epoch(other)
                        self._stamped[other] = True
                    except EpochMismatch as exc:
                        self._epoch_conflict = exc
                        raise
                    except TransportError:
                        self._note_breaker(
                            other, self.breakers[other].record_failure())
            if not self._stamped[index]:
                try:
                    # Raises on unreachable: the enclosing _shard_call
                    # counts it against this shard's breaker.
                    self._stamp_epoch(index)
                except EpochMismatch as exc:
                    self._epoch_conflict = exc
                    raise
                self._stamped[index] = True

    def _stamp_epoch(self, index: int) -> None:
        """Create-or-verify ``meta/epoch`` on one shard.

        A fresh shard is stamped (conditional create, so two routers
        starting together converge); a shard stamped with this fleet's
        epoch passes; a shard stamped with a *different* epoch raises
        :class:`EpochMismatch` — it belongs to a different fleet shape
        and must be drained and un-stamped before being re-pointed.
        Garbage (a torn write) is healed in place.
        """
        shard = self.shards[index]
        payload = self._epoch_doc(index)
        got = shard.get(EPOCH_KEY)
        if got is None:
            if shard.cas(EPOCH_KEY, payload, if_match=None) is not None:
                return
            got = shard.get(EPOCH_KEY)
            if got is None:  # racing drain deleted it: claim again
                shard.put(EPOCH_KEY, payload)
                return
        existing = json_loads_or_none(got[0])
        if not isinstance(existing, dict) or "epoch" not in existing:
            shard.put(EPOCH_KEY, payload)  # heal a torn stamp
            return
        if str(existing.get("epoch", "")) != self.epoch:
            raise EpochMismatch(
                f"shard {self.identities[index]} belongs to a different "
                f"fleet epoch ({existing.get('epoch')!r}, this router is "
                f"{self.epoch!r}): drain it and delete {EPOCH_KEY!r} "
                f"before re-pointing",
                address=getattr(shard, "address", None))

    # -- point operations --------------------------------------------------
    def _point(self, op: str, key: str, call):
        index = self.shard_index(key)
        self._ops.inc(op=op, shard=self.identities[index])
        return self._shard_call(index, op,
                                lambda: call(self.shards[index]))

    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        return self._point("get", key, lambda shard: shard.get(key))

    def put(self, key: str, data: bytes) -> str:
        return self._point("put", key, lambda shard: shard.put(key, data))

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        return self._point(
            "cas", key, lambda shard: shard.cas(key, data,
                                                if_match=if_match))

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        return self._point(
            "delete", key, lambda shard: shard.delete(key,
                                                      if_match=if_match))

    def list(self, prefix: str) -> List[str]:
        """Merged sorted listing across every shard.

        Keys are disjoint by routing, except intentionally replicated
        documents (``meta/epoch``), which are deduplicated here.  An
        unreachable shard raises (naming it) unless ``degraded_reads``:
        then the reachable shards' merge is returned as a
        :class:`~repro.campaign.dist.transport.DegradedResult`.
        """
        self._ops.inc(op="list", shard="*")
        listings: List[List[str]] = []
        missing: List[str] = []
        for index in range(len(self.shards)):
            try:
                listings.append(self._shard_call(
                    index, "list",
                    lambda i=index: self.shards[i].list(prefix)))
            except EpochMismatch:
                raise
            except TransportError:
                if not self.degraded_reads:
                    raise
                missing.append(self.identities[index])
        if missing and not listings:
            raise TransportError(
                f"all {len(self.shards)} shards unreachable listing "
                f"{prefix!r} ({', '.join(missing)})", address=self.address)
        merged: List[str] = []
        for key in _merge_sorted(listings):
            if not merged or key != merged[-1]:
                merged.append(key)
        if missing:
            return DegradedResult(merged, missing_shards=missing)
        return merged

    # -- batch / pagination ------------------------------------------------
    def get_many(self, keys: Sequence[str]
                 ) -> List[Optional[Tuple[bytes, str]]]:
        keys = list(keys)
        out: List[Optional[Tuple[bytes, str]]] = [None] * len(keys)
        groups = self._group(keys)
        missing: List[str] = []
        for index, positions in groups.items():
            self._ops.inc(op="get_many", shard=self.identities[index])
            try:
                got = self._shard_call(
                    index, "get_many",
                    lambda i=index, p=positions: self.shards[i].get_many(
                        [keys[q] for q in p]))
            except EpochMismatch:
                raise
            except TransportError:
                if not self.degraded_reads:
                    raise
                missing.append(self.identities[index])
                continue
            for position, outcome in zip(positions, got):
                out[position] = outcome
        if missing and len(missing) == len(groups):
            raise TransportError(
                f"all {len(missing)} addressed shards unreachable in "
                f"get_many ({', '.join(missing)})", address=self.address)
        if missing:
            # NB: a missing shard's keys read as None — indistinguishable
            # from absent keys except through the marker, which is why
            # correctness-critical callers must check is_degraded().
            return DegradedResult(out, missing_shards=missing)
        return out

    def put_many(self, items: Sequence[Tuple[str, bytes, Optional[str]]]
                 ) -> List[Optional[str]]:
        items = list(items)
        out: List[Optional[str]] = [None] * len(items)
        for index, positions in self._group(
                [key for key, _, _ in items]).items():
            self._ops.inc(op="put_many", shard=self.identities[index])
            tags = self._shard_call(
                index, "put_many",
                lambda i=index, p=positions: self.shards[i].put_many(
                    [items[q] for q in p]))
            for position, tag in zip(positions, tags):
                out[position] = tag
        return out

    def delete_many(self, items: Sequence[Tuple[str, Optional[str]]]
                    ) -> List[bool]:
        items = list(items)
        out: List[bool] = [False] * len(items)
        for index, positions in self._group(
                [key for key, _ in items]).items():
            self._ops.inc(op="delete_many", shard=self.identities[index])
            oks = self._shard_call(
                index, "delete_many",
                lambda i=index, p=positions: self.shards[i].delete_many(
                    [items[q] for q in p]))
            for position, ok in zip(positions, oks):
                out[position] = ok
        return out

    def mutate_many(self, ops: Sequence[Tuple]) -> List[object]:
        """Per-shard grouped mixed batch; outcomes in input order.

        Ops on the *same key* keep their relative order (they route to
        the same shard, and each child applies its batch in order);
        cross-shard ordering is concurrent — which matches the contract,
        since batches were never transactions.  A batch spanning a dead
        shard raises after the healthy shards' groups were applied
        (exactly like a connection dying mid-batch on a single broker).
        """
        ops = list(ops)
        out: List[object] = [None] * len(ops)
        for index, positions in self._group(
                [op[1] for op in ops]).items():
            self._ops.inc(op="mutate_many", shard=self.identities[index])
            outcomes = self._shard_call(
                index, "mutate_many",
                lambda i=index, p=positions: self.shards[i].mutate_many(
                    [ops[q] for q in p]))
            for position, outcome in zip(positions, outcomes):
                out[position] = outcome
        return out

    def list_page(self, prefix: str, max_keys: int,
                  start_after: str = "") -> Tuple[List[str], Optional[str]]:
        """One globally-sorted page, scatter-gathered from every shard.

        Each shard is asked for its own first ``max_keys`` keys after
        the same global ``start_after``; the merged smallest ``max_keys``
        form the page.  The token stays a plain keyset token (the last
        key returned): any key a shard did **not** ship is greater than
        that shard's last shipped key, which is >= the page's last key —
        so ``start_after=token`` never skips a surviving key, and keys
        deleted or inserted between pages behave exactly as on a single
        store.  Unreachable shards raise, or under ``degraded_reads``
        tag the page as a partial
        :class:`~repro.campaign.dist.transport.DegradedResult`.
        """
        self._ops.inc(op="list_page", shard="*")
        max_keys = max(1, int(max_keys))
        pages: List[List[str]] = []
        missing: List[str] = []
        shard_truncated = False
        for index in range(len(self.shards)):
            try:
                page, token = self._shard_call(
                    index, "list_page",
                    lambda i=index: self.shards[i].list_page(
                        prefix, max_keys, start_after=start_after))
            except EpochMismatch:
                raise
            except TransportError:
                if not self.degraded_reads:
                    raise
                missing.append(self.identities[index])
                continue
            pages.append(page)
            shard_truncated = shard_truncated or token is not None
        if missing and not pages:
            raise TransportError(
                f"all {len(self.shards)} shards unreachable paging "
                f"{prefix!r} ({', '.join(missing)})", address=self.address)
        merged: List[str] = []
        for key in _merge_sorted(pages):
            if not merged or key != merged[-1]:
                merged.append(key)
        page = merged[:max_keys]
        more = shard_truncated or len(merged) > max_keys
        if missing:
            page = DegradedResult(page, missing_shards=missing)
        if page and more:
            return page, page[-1]
        return page, None

    # -- server-side claim -------------------------------------------------
    def claim_first(self, prefix: str = "pending/", worker: str = "",
                    now: Optional[float] = None,
                    lease_seconds: Optional[float] = None) -> Optional[dict]:
        """Server-side claim across the fleet, best-ticket shard first.

        Each shard is probed for its first pending ticket (one
        ``max_keys=1`` page); shards are then tried in the global sort
        order of those ticket names — the names carry the queue's
        zero-padded cost priority, so the fleet keeps longest-job-first
        scheduling instead of degrading to per-shard priority.  Ties and
        races fall back to a rotating round-robin offset, which also
        spreads concurrent idle pollers.  A shard whose pending listing
        is empty has nothing claimable and is skipped (an enqueue racing
        the probe is picked up by the caller's next poll).

        **Degraded mode**: a shard that is unreachable — or whose
        circuit is open — is skipped, and the healthy ring keeps
        serving; global longest-job-first degrades to
        longest-*available*-first until the shard heals (its tickets
        stay safe on its store, and ``drained()`` refuses to report a
        fleet with an unreadable shard as empty).  Only when *no* shard
        answers does the claim raise ``TransportError``.

        Raises ``ClaimUnsupported`` when any shard lacks a server-side
        claim entirely (e.g. in-memory shards), or when a shard holding
        tickets answers with an old broker's 404: with mixed support,
        trusting only the supporting shards would report a drained queue
        while the others still hold tickets — the client-side scan over
        the router is the only claim pass that sees the whole fleet.
        """
        count = len(self.shards)
        with self._lock:
            start = self._claim_offset
            self._claim_offset = (self._claim_offset + 1) % count
        rotated = [(start + step) % count for step in range(count)]
        for index in rotated:
            if not callable(getattr(self.shards[index], "claim_first",
                                    None)):
                raise ClaimUnsupported(self.identities[index])
        ranked: List[Tuple[str, int]] = []
        unreachable: List[str] = []
        for index in rotated:
            try:
                page, _ = self._shard_call(
                    index, "claim_probe",
                    lambda i=index: self.shards[i].list_page(prefix, 1))
            except EpochMismatch:
                raise
            except TransportError:
                unreachable.append(self.identities[index])
                continue
            if page:
                ranked.append((page[0], index))
        if not ranked and len(unreachable) == count:
            raise TransportError(
                f"claim failed: all {count} shards unreachable "
                f"({', '.join(unreachable)})", address=self.address)
        ranked.sort(key=lambda pair: pair[0])  # stable: ties keep rotation
        for _, index in ranked:
            self._ops.inc(op="claim_first", shard=self.identities[index])
            try:
                outcome = self._shard_call(
                    index, "claim_first",
                    lambda i=index: self.shards[i].claim_first(
                        prefix=prefix, worker=worker, now=now,
                        lease_seconds=lease_seconds))
            except EpochMismatch:
                raise
            except TransportError:
                # Died between probe and claim: its tickets stay on its
                # store (requeued work, not lost work) — serve the rest.
                continue
            if outcome is not None:
                return outcome
        return None

    # -- telemetry / lifecycle ---------------------------------------------
    def shards_reporting(self) -> Tuple[int, int]:
        """``(reachable, total)`` by circuit state — the "N of M shards
        reporting" figure status surfaces render.  A shard counts as
        reporting unless its breaker is currently open."""
        up = sum(1 for breaker in self.breakers if breaker.state != OPEN)
        return up, len(self.shards)

    def degraded_shards(self) -> List[str]:
        """Identities of shards currently shed (open circuit)."""
        return [identity for identity, breaker
                in zip(self.identities, self.breakers)
                if breaker.state == OPEN]

    def stats(self) -> Dict[str, Optional[dict]]:
        """Per-shard ``GET /stats`` snapshots keyed by shard identity.

        Shards without a ``stats`` endpoint (in-memory, filesystem, old
        brokers) — and shards that are unreachable right now — report
        ``None``: the caller aggregates what exists.  Deliberately
        outside the breaker/epoch funnel: a telemetry probe must neither
        trip circuits nor write epoch stamps.
        """
        out: Dict[str, Optional[dict]] = {}
        for index, shard in enumerate(self.shards):
            probe = getattr(shard, "stats", None)
            if not callable(probe):
                out[self.identities[index]] = None
                continue
            try:
                out[self.identities[index]] = probe()
            except TransportError:
                out[self.identities[index]] = None
        return out

    def close(self) -> None:
        for shard in self.shards:
            closer = getattr(shard, "close", None)
            if callable(closer):
                closer()

    def __repr__(self) -> str:
        return f"ShardedTransport({self.identities!r})"


def _merge_sorted(runs: Sequence[List[str]]):
    """K-way merge of sorted string runs."""
    return heapq.merge(*runs)


def split_shard_urls(address: str) -> Optional[List[str]]:
    """Parse ``address`` as a comma-separated broker URL list.

    Returns the URL list when ``address`` holds two or more comma-
    separated ``http(s)://`` URLs (the ``--queue http://b1,http://b2``
    syntax), else ``None`` — single URLs, directories, and anything with
    a stray comma that is not all-URLs are left to the plain dispatch.
    """
    if "," not in address:
        return None
    parts = [part.strip() for part in address.split(",") if part.strip()]
    if len(parts) < 2:
        return None
    if not all(part.startswith(("http://", "https://")) for part in parts):
        return None
    return parts
