"""Multi-broker sharding: one ``QueueTransport`` over N backing stores.

One broker is one host.  :class:`ShardedTransport` scales the transport
seam horizontally by consistent-hashing opaque keys across multiple
child transports (typically :class:`~repro.campaign.dist.transport.
HttpTransport` brokers, ``--queue http://b1:8123,http://b2:8123``) while
presenting the exact same contract the queue, cache and cost model
already run on — so a sharded fleet is a drop-in address change, not a
code change.

Routing
-------

Keys are routed by a *derived routing key*, not the raw key: the last
path segment, minus a ``.json`` suffix, minus the queue's 10-digit
priority prefix (``routing_key("pending/0000000017-abc.json") ==
"abc"``).  This co-locates a job's whole document family —
``jobs/<key>.json``, ``pending/<prio>-<key>.json``,
``claims/<prio>-<key>.json``, ``results/<key>.json``,
``done/<prio>-<key>.json``, ``dead/<key>.json`` — on one shard, which is
load-bearing: a broker answering ``POST /claim`` runs the whole
scan-probe-CAS pass against *its own* store, and must find the ticket's
immutable job record there (a missing record is dead-lettered as
corrupt, by design).  Naive per-raw-key routing would scatter the family
and bury healthy jobs.  The hash ring is built from shard *positions*
(``shard-<i>/vnode-<j>``), so routing is a pure function of the ordered
shard list — stable across processes, across router instances, and for
address-less in-memory shards.  Reordering the shard list therefore
changes the mapping; the epoch handshake below turns that mistake into a
hard error instead of a silently split keyspace.

Scatter-gather
--------------

``list`` k-way-merges the children's sorted listings; ``list_page``
fetches one page per shard from the same global ``start_after``, merges,
and returns the first ``max_keys`` keys — the continuation token stays a
plain *keyset* token (the last key returned), valid because every key a
shard did not ship is provably greater than the merged page's last key.
``get_many`` / ``put_many`` / ``delete_many`` / ``mutate_many`` group
items per shard, ride each child's native batch path, and reassemble
outcomes in input order (same-key ops co-locate, so per-key ordering
survives).  Batches spanning shards are *not* transactions — but they
never were on a single broker either (per-item outcomes).

``claim_first`` round-robins the shards (a rotating starting offset per
router, so idle polls spread load) and returns the first shard's claim.
If *any* shard cannot claim server-side, the router raises
:class:`~repro.campaign.dist.transport.ClaimUnsupported` so the queue
falls back to its client-side scan over the router — a half-supported
fleet must not look drained while unsupported shards still hold tickets.

Epoch / drain protocol
----------------------

Before its first routed operation the router stamps every shard with a
fleet *epoch* document at :data:`EPOCH_KEY` (``meta/epoch``): a hash of
the ordered shard identities (and vnode count).  A shard already stamped
with a *different* epoch makes that first operation raise
:class:`~repro.campaign.dist.transport.TransportError` — the shard
belongs to a differently-shaped fleet, and routing against it would read
and write a split keyspace.  To reshard: drain the queue, delete
``meta/epoch`` on every broker, then point the new shard list at them.
See ``docs/distributed.md`` ("Sharded fleets") for the operational
recipe.

>>> from repro.campaign.dist.transport import MemoryTransport
>>> shards = [MemoryTransport(), MemoryTransport()]
>>> router = ShardedTransport(shards)
>>> tag = router.put("jobs/a.json", b"{}")
>>> router.get("jobs/a.json") == (b"{}", tag)
True
>>> router.shard_for("jobs/a.json") is router.shard_for(
...     "pending/0000000007-a.json")  # family co-location
True
>>> sum(t.get("jobs/a.json") is not None for t in shards)  # exactly one
1
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.dist.transport import (
    ClaimUnsupported,
    QueueTransport,
    TransportError,
)
from repro.campaign.jsonio import json_dumps_bytes, json_loads_or_none
from repro.campaign.obs import MetricsRegistry, get_registry

#: Where each shard's fleet-epoch document lives.  Deliberately outside
#: the queue's state prefixes (``jobs/``/``pending/``/...), so queue and
#: cache listings never see it.
EPOCH_KEY = "meta/epoch"

#: Virtual nodes per shard on the hash ring.  64 points per shard keeps
#: the keyspace split within a few percent of even for small fleets
#: while the ring stays tiny (N*64 bisect entries).
DEFAULT_VNODES = 64

#: The queue's zero-padded cost-priority prefix on ticket basenames
#: (``pending/0000000017-<key>.json``) — stripped before routing so a
#: ticket routes with its job family.
_PRIORITY_PREFIX = re.compile(r"^\d{10}-")


def routing_key(key: str) -> str:
    """The substring of ``key`` the router hashes.

    Last path segment, minus ``.json``, minus the 10-digit priority
    prefix — i.e. the job key for every document in a job's family, so
    they all land on one shard.  Falls back to the raw key when the
    basename strips to nothing.

    >>> routing_key("jobs/abc123.json")
    'abc123'
    >>> routing_key("pending/0000000017-abc123.json")
    'abc123'
    >>> routing_key("queue.json")
    'queue'
    >>> routing_key("ab/abcdef.json")  # cache entries route on the hash
    'abcdef'
    """
    base = key.rsplit("/", 1)[-1]
    if base.endswith(".json"):
        base = base[:-5]
    base = _PRIORITY_PREFIX.sub("", base)
    return base or key


def fleet_epoch(identities: Sequence[str],
                vnodes: int = DEFAULT_VNODES) -> str:
    """Deterministic epoch id for an ordered shard list.

    Any change that remaps keys — adding, removing or *reordering*
    shards, or changing the vnode count — changes the epoch.
    """
    material = "\n".join([str(int(vnodes))] + [str(i) for i in identities])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def _ring_point(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class ShardedTransport(QueueTransport):
    """Consistent-hash router over child transports; see module docs.

    ``shards`` is the ordered list of child transports (order is part of
    the fleet identity — see the epoch protocol).  ``address`` is the
    comma-joined child addresses when every child has one (so a worker
    process can be spawned with the same ``--queue`` string), else
    ``None`` (thread fleets over in-memory shards).
    """

    def __init__(self, shards: Sequence[QueueTransport],
                 vnodes: int = DEFAULT_VNODES,
                 registry: Optional[MetricsRegistry] = None,
                 check_epoch: bool = True):
        shards = list(shards)
        if not shards:
            raise ValueError("ShardedTransport needs at least one shard")
        self.shards: List[QueueTransport] = shards
        self.vnodes = max(1, int(vnodes))
        self.identities: List[str] = [
            getattr(shard, "address", None) or f"shard-{index}"
            for index, shard in enumerate(shards)]
        addresses = [getattr(shard, "address", None) for shard in shards]
        self.address = (",".join(addresses)
                        if all(addresses) else None)
        self.epoch = fleet_epoch(self.identities, self.vnodes)
        # Ring points hash shard *positions*, not addresses: the mapping
        # must be identical for every router built over the same ordered
        # shard list, including address-less MemoryTransport shards.
        points: List[Tuple[int, int]] = []
        for index in range(len(shards)):
            for vnode in range(self.vnodes):
                points.append(
                    (_ring_point(f"shard-{index}/vnode-{vnode}"), index))
        points.sort()
        self._ring_hashes = [point for point, _ in points]
        self._ring_shards = [index for _, index in points]
        self._claim_offset = 0
        self._lock = threading.Lock()
        self._epoch_ok = not check_epoch
        registry = registry if registry is not None else get_registry()
        self._ops = registry.counter(
            "sharded_ops_total",
            "operations routed through the shard router, by op and shard")

    # -- routing -----------------------------------------------------------
    def shard_index(self, key: str) -> int:
        """Index of the shard owning ``key`` (stable and total)."""
        point = _ring_point(routing_key(key))
        i = bisect.bisect_right(self._ring_hashes, point)
        if i == len(self._ring_hashes):
            i = 0
        return self._ring_shards[i]

    def shard_for(self, key: str) -> QueueTransport:
        """The child transport owning ``key``."""
        return self.shards[self.shard_index(key)]

    def _route(self, op: str, key: str) -> QueueTransport:
        self._ensure_epoch()
        index = self.shard_index(key)
        self._ops.inc(op=op, shard=self.identities[index])
        return self.shards[index]

    def _group(self, keys: Sequence[str]) -> Dict[int, List[int]]:
        """Input positions grouped by owning shard, order preserved."""
        self._ensure_epoch()
        groups: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(self.shard_index(key), []).append(position)
        return groups

    # -- epoch handshake ---------------------------------------------------
    def _epoch_doc(self, index: int) -> bytes:
        return json_dumps_bytes({
            "epoch": self.epoch,
            "shard": index,
            "shards": len(self.shards),
            "identity": self.identities[index],
            "identities": self.identities,
            "vnodes": self.vnodes,
        })

    def _ensure_epoch(self) -> None:
        """Run the epoch handshake once, before the first routed op.

        Lazy like every other transport's connection setup: constructing
        a router is free and offline (``transport_from_address`` can
        build one for a ``--queue`` string without touching the
        network); the first operation pays one get-or-create per shard.
        A failed handshake is retried by the next operation.
        """
        if self._epoch_ok:
            return
        with self._lock:
            if self._epoch_ok:
                return
            self._stamp_epochs()
            self._epoch_ok = True

    def _stamp_epochs(self) -> None:
        """Create-or-verify ``meta/epoch`` on every shard.

        A fresh shard is stamped (conditional create, so two routers
        starting together converge); a shard stamped with this fleet's
        epoch passes; a shard stamped with a *different* epoch raises
        ``TransportError`` naming that shard — it belongs to a
        different fleet shape and must be drained and un-stamped before
        being re-pointed.  Garbage (a torn write) is healed in place.
        """
        for index, shard in enumerate(self.shards):
            payload = self._epoch_doc(index)
            got = shard.get(EPOCH_KEY)
            if got is None:
                if shard.cas(EPOCH_KEY, payload, if_match=None) is not None:
                    continue
                got = shard.get(EPOCH_KEY)
                if got is None:  # racing drain deleted it: claim again
                    shard.put(EPOCH_KEY, payload)
                    continue
            existing = json_loads_or_none(got[0])
            if not isinstance(existing, dict) or "epoch" not in existing:
                shard.put(EPOCH_KEY, payload)  # heal a torn stamp
                continue
            if str(existing.get("epoch", "")) != self.epoch:
                raise TransportError(
                    f"shard {self.identities[index]} belongs to a different "
                    f"fleet epoch ({existing.get('epoch')!r}, this router is "
                    f"{self.epoch!r}): drain it and delete {EPOCH_KEY!r} "
                    f"before re-pointing",
                    address=getattr(shard, "address", None))

    # -- point operations --------------------------------------------------
    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        return self._route("get", key).get(key)

    def put(self, key: str, data: bytes) -> str:
        return self._route("put", key).put(key, data)

    def cas(self, key: str, data: bytes,
            if_match: Optional[str]) -> Optional[str]:
        return self._route("cas", key).cas(key, data, if_match=if_match)

    def delete(self, key: str, if_match: Optional[str] = None) -> bool:
        return self._route("delete", key).delete(key, if_match=if_match)

    def list(self, prefix: str) -> List[str]:
        """Merged sorted listing across every shard.

        Keys are disjoint by routing, except intentionally replicated
        documents (``meta/epoch``), which are deduplicated here.
        """
        self._ensure_epoch()
        self._ops.inc(op="list", shard="*")
        merged: List[str] = []
        listings = [shard.list(prefix) for shard in self.shards]
        for key in _merge_sorted(listings):
            if not merged or key != merged[-1]:
                merged.append(key)
        return merged

    # -- batch / pagination ------------------------------------------------
    def get_many(self, keys: Sequence[str]
                 ) -> List[Optional[Tuple[bytes, str]]]:
        keys = list(keys)
        out: List[Optional[Tuple[bytes, str]]] = [None] * len(keys)
        for index, positions in self._group(keys).items():
            self._ops.inc(op="get_many", shard=self.identities[index])
            got = self.shards[index].get_many([keys[p] for p in positions])
            for position, outcome in zip(positions, got):
                out[position] = outcome
        return out

    def put_many(self, items: Sequence[Tuple[str, bytes, Optional[str]]]
                 ) -> List[Optional[str]]:
        items = list(items)
        out: List[Optional[str]] = [None] * len(items)
        for index, positions in self._group(
                [key for key, _, _ in items]).items():
            self._ops.inc(op="put_many", shard=self.identities[index])
            tags = self.shards[index].put_many([items[p] for p in positions])
            for position, tag in zip(positions, tags):
                out[position] = tag
        return out

    def delete_many(self, items: Sequence[Tuple[str, Optional[str]]]
                    ) -> List[bool]:
        items = list(items)
        out: List[bool] = [False] * len(items)
        for index, positions in self._group(
                [key for key, _ in items]).items():
            self._ops.inc(op="delete_many", shard=self.identities[index])
            oks = self.shards[index].delete_many(
                [items[p] for p in positions])
            for position, ok in zip(positions, oks):
                out[position] = ok
        return out

    def mutate_many(self, ops: Sequence[Tuple]) -> List[object]:
        """Per-shard grouped mixed batch; outcomes in input order.

        Ops on the *same key* keep their relative order (they route to
        the same shard, and each child applies its batch in order);
        cross-shard ordering is concurrent — which matches the contract,
        since batches were never transactions.
        """
        ops = list(ops)
        out: List[object] = [None] * len(ops)
        for index, positions in self._group(
                [op[1] for op in ops]).items():
            self._ops.inc(op="mutate_many", shard=self.identities[index])
            outcomes = self.shards[index].mutate_many(
                [ops[p] for p in positions])
            for position, outcome in zip(positions, outcomes):
                out[position] = outcome
        return out

    def list_page(self, prefix: str, max_keys: int,
                  start_after: str = "") -> Tuple[List[str], Optional[str]]:
        """One globally-sorted page, scatter-gathered from every shard.

        Each shard is asked for its own first ``max_keys`` keys after
        the same global ``start_after``; the merged smallest ``max_keys``
        form the page.  The token stays a plain keyset token (the last
        key returned): any key a shard did **not** ship is greater than
        that shard's last shipped key, which is >= the page's last key —
        so ``start_after=token`` never skips a surviving key, and keys
        deleted or inserted between pages behave exactly as on a single
        store.
        """
        self._ensure_epoch()
        self._ops.inc(op="list_page", shard="*")
        max_keys = max(1, int(max_keys))
        pages: List[List[str]] = []
        shard_truncated = False
        for shard in self.shards:
            page, token = shard.list_page(prefix, max_keys,
                                          start_after=start_after)
            pages.append(page)
            shard_truncated = shard_truncated or token is not None
        merged: List[str] = []
        for key in _merge_sorted(pages):
            if not merged or key != merged[-1]:
                merged.append(key)
        page = merged[:max_keys]
        more = shard_truncated or len(merged) > max_keys
        if page and more:
            return page, page[-1]
        return page, None

    # -- server-side claim -------------------------------------------------
    def claim_first(self, prefix: str = "pending/", worker: str = "",
                    now: Optional[float] = None,
                    lease_seconds: Optional[float] = None) -> Optional[dict]:
        """Server-side claim across the fleet, best-ticket shard first.

        Each shard is probed for its first pending ticket (one
        ``max_keys=1`` page); shards are then tried in the global sort
        order of those ticket names — the names carry the queue's
        zero-padded cost priority, so the fleet keeps longest-job-first
        scheduling instead of degrading to per-shard priority.  Ties and
        races fall back to a rotating round-robin offset, which also
        spreads concurrent idle pollers.  A shard whose pending listing
        is empty has nothing claimable and is skipped (an enqueue racing
        the probe is picked up by the caller's next poll).

        Raises ``ClaimUnsupported`` when any shard lacks a server-side
        claim entirely (e.g. in-memory shards), or when a shard holding
        tickets answers with an old broker's 404: with mixed support,
        trusting only the supporting shards would report a drained queue
        while the others still hold tickets — the client-side scan over
        the router is the only claim pass that sees the whole fleet.
        """
        self._ensure_epoch()
        count = len(self.shards)
        with self._lock:
            start = self._claim_offset
            self._claim_offset = (self._claim_offset + 1) % count
        rotated = [(start + step) % count for step in range(count)]
        for index in rotated:
            if not callable(getattr(self.shards[index], "claim_first",
                                    None)):
                raise ClaimUnsupported(self.identities[index])
        ranked: List[Tuple[str, int]] = []
        for index in rotated:
            page, _ = self.shards[index].list_page(prefix, 1)
            if page:
                ranked.append((page[0], index))
        ranked.sort(key=lambda pair: pair[0])  # stable: ties keep rotation
        for _, index in ranked:
            self._ops.inc(op="claim_first", shard=self.identities[index])
            outcome = self.shards[index].claim_first(
                prefix=prefix, worker=worker, now=now,
                lease_seconds=lease_seconds)
            if outcome is not None:
                return outcome
        return None

    # -- telemetry / lifecycle ---------------------------------------------
    def stats(self) -> Dict[str, Optional[dict]]:
        """Per-shard ``GET /stats`` snapshots keyed by shard identity.

        Shards without a ``stats`` endpoint (in-memory, filesystem, old
        brokers) report ``None`` — the caller aggregates what exists.
        """
        out: Dict[str, Optional[dict]] = {}
        for index, shard in enumerate(self.shards):
            probe = getattr(shard, "stats", None)
            out[self.identities[index]] = probe() if callable(probe) else None
        return out

    def close(self) -> None:
        for shard in self.shards:
            closer = getattr(shard, "close", None)
            if callable(closer):
                closer()

    def __repr__(self) -> str:
        return f"ShardedTransport({self.identities!r})"


def _merge_sorted(runs: Sequence[List[str]]):
    """K-way merge of sorted string runs."""
    return heapq.merge(*runs)


def split_shard_urls(address: str) -> Optional[List[str]]:
    """Parse ``address`` as a comma-separated broker URL list.

    Returns the URL list when ``address`` holds two or more comma-
    separated ``http(s)://`` URLs (the ``--queue http://b1,http://b2``
    syntax), else ``None`` — single URLs, directories, and anything with
    a stray comma that is not all-URLs are left to the plain dispatch.
    """
    if "," not in address:
        return None
    parts = [part.strip() for part in address.split(",") if part.strip()]
    if len(parts) < 2:
        return None
    if not all(part.startswith(("http://", "https://")) for part in parts):
        return None
    return parts
