"""Experiment-campaign layer: declarative sweeps over the paper's runners.

The paper's evaluation is a grid of training runs — platforms × thread
counts × container formats × staging thresholds — that the seed repository
could only launch one ``run_*`` call at a time.  ``repro.campaign`` turns
such a grid into a first-class object:

>>> from repro.campaign import SweepSpec, run_campaign
>>> spec = SweepSpec(
...     name="imagenet-threads",
...     case="imagenet",
...     base={"scale": 0.05, "batch_size": 256, "profile": "epoch"},
...     grid={"threads": [1, 4, 28]},
... )
>>> result = run_campaign(spec)           # serial, uncached
>>> xs, ys = result.series("threads", "posix_bandwidth")

Jobs carry content-derived identities and seeds, execute through pluggable
executors (serial, thread-pool ``async``, ``multiprocessing``, or a
distributed worker fleet — see :mod:`repro.campaign.dist`), results are
content-hash cached — in a directory or behind the HTTP broker, via the
same pluggable transports as the work queue
(:func:`~repro.campaign.cache.open_cache`) — so re-running an unchanged
grid is near-instant and broker fleets deduplicate without any shared
filesystem, and aggregation yields the table/figure shapes the benchmark
harnesses consume.  Partially drained distributed grids are queryable
early via :func:`~repro.campaign.dist.incremental.snapshot_campaign`.
"""

from repro.campaign.aggregate import CampaignResult
from repro.campaign.cache import (
    PHYSICS_VERSION,
    ResultCache,
    TransportResultCache,
    default_cache_dir,
    open_cache,
)
from repro.campaign.dist import (
    AutoscalePolicy,
    CampaignSnapshot,
    CostModel,
    DistributedExecutor,
    FsTransport,
    HttpTransport,
    MemoryTransport,
    QueueTransport,
    TransportError,
    WorkQueue,
    snapshot_campaign,
)
from repro.campaign.executors import (
    AsyncExecutor,
    MultiprocessingExecutor,
    SerialExecutor,
    default_executor,
)
from repro.campaign.jobs import (
    JobResult,
    UnknownCaseError,
    available_cases,
    execute_job,
    get_case,
    register_case,
)
from repro.campaign.runner import run_campaign, run_grid
from repro.campaign.spec import JobSpec, SpecError, SweepSpec, canonical_json

__all__ = [
    "AsyncExecutor",
    "AutoscalePolicy",
    "CampaignResult",
    "CampaignSnapshot",
    "CostModel",
    "DistributedExecutor",
    "FsTransport",
    "HttpTransport",
    "JobResult",
    "JobSpec",
    "MemoryTransport",
    "QueueTransport",
    "TransportError",
    "MultiprocessingExecutor",
    "PHYSICS_VERSION",
    "ResultCache",
    "SerialExecutor",
    "SpecError",
    "SweepSpec",
    "TransportResultCache",
    "UnknownCaseError",
    "WorkQueue",
    "snapshot_campaign",
    "available_cases",
    "canonical_json",
    "default_cache_dir",
    "default_executor",
    "execute_job",
    "get_case",
    "open_cache",
    "register_case",
    "run_campaign",
    "run_grid",
]
