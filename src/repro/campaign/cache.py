"""Content-addressed on-disk cache of campaign job results.

Every job result is stored under a key derived from *what the job
computes*: the case name, its canonical parameters, its derived seed, and
the simulation :data:`PHYSICS_VERSION`.  Re-running an unchanged grid is
therefore served entirely from disk; changing any parameter, the sweep
seed, or the simulated physics invalidates exactly the affected entries.

The cache is deliberately dumb and robust: one JSON file per result,
written atomically (temp file + ``os.replace``), and any unreadable or
mismatched file is treated as a miss rather than an error.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.campaign.jsonio import atomic_write_json, read_json_or_none
from repro.campaign.spec import JobSpec, canonical_json

#: Version of the simulated physics.  Bump this when an intentional change
#: alters observable simulation results (the golden-trace regression tests
#: in ``tests/regression`` pin down what "observable" means); bumping it
#: orphans every cached campaign result at once.
PHYSICS_VERSION = "1"

#: Default cache location, overridable per :class:`ResultCache` or via the
#: ``REPRO_CAMPAIGN_CACHE`` environment variable.
DEFAULT_CACHE_DIR = "~/.cache/repro-campaigns"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CAMPAIGN_CACHE`` or ``~/.cache/repro-campaigns``."""
    root = os.environ.get("REPRO_CAMPAIGN_CACHE", DEFAULT_CACHE_DIR)
    return Path(root).expanduser()


class ResultCache:
    """Content-hash keyed store of job-result records.

    .. note:: The ``hits``/``misses`` counters are **per-instance and
       per-process**: they count the probes *this* object made, and they
       accumulate across campaigns for the lifetime of the instance.  Under
       ``MultiprocessingExecutor`` or a distributed worker fleet, probes
       made by other processes are invisible here — so for per-run
       accounting read ``CampaignResult.meta["cache"]``, which
       :func:`~repro.campaign.runner.run_campaign` fills from the probes
       the orchestrator actually performed for that run.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 physics_version: str = PHYSICS_VERSION):
        # expanduser so documented usage like ResultCache("~/.cache/...")
        # lands in the home directory, not a literal "~" dir in the CWD.
        self.root = (Path(root).expanduser() if root is not None
                     else default_cache_dir())
        self.physics_version = physics_version
        self.hits = 0
        self.misses = 0

    # -- keying ------------------------------------------------------------
    def key(self, job: JobSpec) -> str:
        """Content hash of what the job computes (case, params, seed,
        repeat, physics version) — the cache's only addressing scheme."""
        payload = canonical_json({
            "case": job.case,
            "params": dict(job.params),
            "repeat": job.repeat,
            "seed": job.seed,
            "physics": self.physics_version,
        })
        return hashlib.sha256(payload.encode()).hexdigest()[:40]

    def path(self, job: JobSpec) -> Path:
        """On-disk location of ``job``'s entry (whether or not it exists)."""
        key = self.key(job)
        # Two-level fan-out keeps directories small for big campaigns.
        return self.root / key[:2] / f"{key}.json"

    # -- access ------------------------------------------------------------
    def get(self, job: JobSpec) -> Optional[Dict[str, Any]]:
        """Return the cached result record for ``job`` or ``None``."""
        record = read_json_or_none(self.path(job))
        if record is None:
            self.misses += 1
            return None
        # Defend against hash collisions and stale schema: the stored spec
        # must round-trip to the same job content.
        stored = record.get("job", {})
        if (stored.get("case") != job.case
                or stored.get("params") != dict(job.params)
                or stored.get("seed") != job.seed):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, job: JobSpec, record: Dict[str, Any]) -> Path:
        """Atomically persist ``record`` for ``job``; returns the path."""
        path = self.path(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(record)
        payload.setdefault("job", job.to_record())
        payload["physics"] = self.physics_version
        return atomic_write_json(path, payload)

    # -- bookkeeping -------------------------------------------------------
    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, int]:
        """This instance's probe counters plus the on-disk entry count
        (see the class note: counters are per-instance, per-process)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}
