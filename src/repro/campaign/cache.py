"""Content-addressed cache of campaign job results, over any transport.

Every job result is stored under a key derived from *what the job
computes*: the case name, its canonical parameters, its derived seed, and
the simulation :data:`PHYSICS_VERSION`.  Re-running an unchanged grid is
therefore served entirely from the store; changing any parameter, the
sweep seed, or the simulated physics invalidates exactly the affected
entries.

Since the queue grew a pluggable storage seam
(:class:`~repro.campaign.dist.transport.QueueTransport`), the cache rides
the same seam: :class:`TransportResultCache` runs the content-hash
protocol over *any* transport — a directory, an in-process dict, or the
HTTP broker — so a fleet of workers that shares nothing but a broker URL
still deduplicates (``--cache http://broker:8123``).
:class:`ResultCache` is the filesystem specialization and preserves the
original on-disk layout byte-for-byte: one canonical-JSON file per result
at ``<root>/<key[:2]>/<key>.json``, so cache directories written before
the transport seam existed keep serving hits.  :func:`open_cache` maps a
``--cache``-style argument (directory path or broker URL) to the right
class, mirroring ``transport_from_address`` for queues.

The cache is deliberately dumb and robust: writes are atomic on every
transport, *creation* is a compare-and-swap (two workers racing the same
key converge on one stored record — the loser adopts the winner's), and
any unreadable or mismatched record is treated as a miss rather than an
error; a later ``put`` heals it.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.campaign.jobs import result_from_record_or_none
from repro.campaign.jsonio import json_dumps_bytes, json_loads_or_none
from repro.campaign.obs import get_registry
from repro.campaign.spec import JobSpec, canonical_json

#: Version of the simulated physics.  Bump this when an intentional change
#: alters observable simulation results (the golden-trace regression tests
#: in ``tests/regression`` pin down what "observable" means); bumping it
#: orphans every cached campaign result at once.
PHYSICS_VERSION = "1"

#: Default cache location, overridable per :class:`ResultCache` or via the
#: ``REPRO_CAMPAIGN_CACHE`` environment variable.
DEFAULT_CACHE_DIR = "~/.cache/repro-campaigns"

#: Length of the hex content key (``ResultCache.key``).
_KEY_LENGTH = 40


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CAMPAIGN_CACHE`` or ``~/.cache/repro-campaigns``."""
    root = os.environ.get("REPRO_CAMPAIGN_CACHE", DEFAULT_CACHE_DIR)
    return Path(root).expanduser()


class TransportResultCache:
    """Content-hash keyed store of job-result records over a transport.

    ``transport`` is any :class:`~repro.campaign.dist.transport.
    QueueTransport`.  Entries live at ``<key[:2]>/<key>.json`` — the
    two-level fan-out keeps directories small on filesystem-backed stores
    and is shared by every transport so a record written through one
    backend (say, a worker PUTting through the broker) is found through
    another (the broker's ``--data-dir`` opened as a plain directory).

    .. note:: The ``hits``/``misses`` counters are **per-instance and
       per-process**: they count the probes *this* object made, and they
       accumulate across campaigns for the lifetime of the instance.  Under
       ``MultiprocessingExecutor`` or a distributed worker fleet, probes
       made by other processes are invisible here — so for per-run
       accounting read ``CampaignResult.meta["cache"]``, which
       :func:`~repro.campaign.runner.run_campaign` fills from the probes
       the orchestrator actually performed for that run.
    """

    def __init__(self, transport: Any,
                 physics_version: str = PHYSICS_VERSION):
        self.transport = transport
        self.physics_version = physics_version
        self.hits = 0
        self.misses = 0
        # Mirrored into the process-wide metrics registry so cache
        # behaviour shows up in worker heartbeat snapshots alongside
        # transport and queue counters (the instance attributes above
        # remain the per-instance accounting the docstring describes).
        self._probe_counter = get_registry().counter(
            "cache_probes_total", "cache probes, by outcome")

    def _count_probe(self, hit: bool) -> None:
        if hit:
            self.hits += 1
            self._probe_counter.inc(outcome="hit")
        else:
            self.misses += 1
            self._probe_counter.inc(outcome="miss")

    @property
    def address(self) -> Optional[str]:
        """How a separate worker process reaches this cache (``--cache``);
        ``None`` for in-process-only transports."""
        return getattr(self.transport, "address", None)

    @property
    def root(self) -> Optional[Path]:
        """Backing directory for filesystem-backed caches, else ``None``."""
        root = getattr(self.transport, "root", None)
        return Path(root) if root is not None else None

    # -- keying ------------------------------------------------------------
    def key(self, job: JobSpec) -> str:
        """Content hash of what the job computes (case, params, seed,
        repeat, physics version) — the cache's only addressing scheme."""
        payload = canonical_json({
            "case": job.case,
            "params": dict(job.params),
            "repeat": job.repeat,
            "seed": job.seed,
            "physics": self.physics_version,
        })
        return hashlib.sha256(payload.encode()).hexdigest()[:_KEY_LENGTH]

    def storage_key(self, job: JobSpec) -> str:
        """Transport key of ``job``'s entry (whether or not it exists)."""
        key = self.key(job)
        return f"{key[:2]}/{key}.json"

    @staticmethod
    def is_entry_key(key: str) -> bool:
        """True for keys shaped like cache entries (``ab/<40 hex>.json``).

        The filter that keeps :meth:`__len__`/:meth:`clear` honest when
        the transport's keyspace is shared with other documents — the
        cost model persisted beside the entries, or a work queue living
        on the same broker (queue states are word-prefixed, cache entries
        are two-hex-prefixed; they can never collide).
        """
        stem, _, name = key.partition("/")
        return (len(stem) == 2 and name.endswith(".json")
                and len(name) == _KEY_LENGTH + 5
                and all(c in "0123456789abcdef" for c in stem + name[:-5]))

    # -- access ------------------------------------------------------------
    @staticmethod
    def _stores_job(record: Optional[Dict[str, Any]], job: JobSpec) -> bool:
        """True when ``record``'s embedded job spec matches ``job`` — the
        one identity predicate shared by probe rejection (:meth:`get`) and
        race adoption (:meth:`put`), so the two can never drift apart."""
        stored = (record or {}).get("job", {})
        return (stored.get("case") == job.case
                and stored.get("params") == dict(job.params)
                and stored.get("seed") == job.seed)

    def get(self, job: JobSpec) -> Optional[Dict[str, Any]]:
        """Return the cached result record for ``job`` or ``None``."""
        got = self.transport.get(self.storage_key(job))
        record = json_loads_or_none(got[0]) if got is not None else None
        # Defend against hash collisions and stale schema: the stored spec
        # must round-trip to the same job content.
        if record is None or not self._stores_job(record, job):
            self._count_probe(hit=False)
            return None
        self._count_probe(hit=True)
        return record

    def get_many(self, jobs) -> list:
        """Probe many jobs; returns one record-or-``None`` per job.

        Instead of one blocking round trip per job — which turns a cold
        10k-job grid over a WAN broker into minutes of serial GETs — the
        probes ride the transport's batch primitive
        (:meth:`~repro.campaign.dist.transport.QueueTransport.get_many`):
        over the HTTP broker a whole grid's worth of keys travels in a
        handful of ``/batch`` requests, hits and misses alike, and every
        returned record is validated exactly like :meth:`get`.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        fetched = self.transport.get_many(
            [self.storage_key(job) for job in jobs])
        records = []
        for job, got in zip(jobs, fetched):
            record = json_loads_or_none(got[0]) if got is not None else None
            if record is None or not self._stores_job(record, job):
                self._count_probe(hit=False)
                records.append(None)
            else:
                self._count_probe(hit=True)
                records.append(record)
        return records

    def put(self, job: JobSpec, record: Dict[str, Any]) -> str:
        """Persist ``record`` for ``job``; returns the storage key.

        Creation is a conditional *create* (the transports' one atomic
        primitive), so two workers racing the same key converge on one
        stored record: the loser checks the winner's bytes and adopts
        them when they serve the same job.  Only a corrupt or mismatched
        existing record — a torn write, a hash collision — is healed
        with an unconditional overwrite.
        """
        key = self.storage_key(job)
        payload = dict(record)
        payload.setdefault("job", job.to_record())
        payload["physics"] = self.physics_version
        data = json_dumps_bytes(payload)
        if self.transport.cas(key, data, if_match=None) is not None:
            return key
        current = self.transport.get(key)
        existing = json_loads_or_none(current[0]) if current else None
        if (self._stores_job(existing, job)
                and result_from_record_or_none(existing) is not None):
            return key  # lost the race to an equivalent *servable* record
        # Heal a torn, foreign or schema-stale record — adopting one that
        # get() would reject wedges the key into re-executing forever.
        self.transport.put(key, data)
        return key

    # -- bookkeeping -------------------------------------------------------
    def keys(self) -> list:
        """Every stored entry's transport key (non-entry documents skipped)."""
        return [key for key in self.transport.list("")
                if self.is_entry_key(key)]

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for key in self.keys():
            if self.transport.delete(key):
                removed += 1
        return removed

    def __len__(self) -> int:
        return len(self.keys())

    def stats(self) -> Dict[str, int]:
        """This instance's probe counters plus the stored entry count
        (see the class note: counters are per-instance, per-process)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.transport!r})"


class ResultCache(TransportResultCache):
    """The filesystem cache: :class:`TransportResultCache` over a directory.

    Preserves the original on-disk layout byte-for-byte — one
    canonical-JSON file per result at ``<root>/<key[:2]>/<key>.json``,
    written atomically — so cache directories from before the transport
    seam keep working, and a broker started with ``--data-dir`` over the
    same directory serves the identical entries
    (``tests/regression/test_cache_layout.py`` pins this down).
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 physics_version: str = PHYSICS_VERSION):
        # Imported here, not at module top: repro.campaign.dist imports
        # this module back (executor/worker hold caches).
        from repro.campaign.dist.transport import FsTransport

        # expanduser so documented usage like ResultCache("~/.cache/...")
        # lands in the home directory, not a literal "~" dir in the CWD.
        resolved = (Path(root).expanduser() if root is not None
                    else default_cache_dir())
        super().__init__(FsTransport(resolved),
                         physics_version=physics_version)

    def path(self, job: JobSpec) -> Path:
        """On-disk location of ``job``'s entry (whether or not it exists)."""
        return self.root / self.storage_key(job)

    def put(self, job: JobSpec, record: Dict[str, Any]) -> Path:
        """Persist ``record`` for ``job``; returns the on-disk path."""
        return self.root / super().put(job, record)

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r})"


def open_cache(location: Any,
               physics_version: str = PHYSICS_VERSION,
               retries: int = 5, retry_delay: float = 0.2):
    """Build the right cache for a ``--cache``-style argument.

    The cache twin of ``transport_from_address``: ``http://`` /
    ``https://`` URLs get a :class:`TransportResultCache` over the broker
    (a comma-separated list of such URLs deduplicates across a sharded
    broker fleet), a :class:`~repro.campaign.dist.transport.
    QueueTransport` instance is wrapped directly (e.g. a
    ``MemoryTransport`` shared with a thread fleet), an existing cache
    passes through unchanged, and anything else is treated as a cache
    directory.

    >>> open_cache("http://broker:8123")
    TransportResultCache(HttpTransport('http://broker:8123'))
    """
    from repro.campaign.dist.transport import (
        HttpTransport,
        QueueTransport,
        transport_from_address,
    )

    if isinstance(location, TransportResultCache):
        return location
    if isinstance(location, QueueTransport):
        return TransportResultCache(location,
                                    physics_version=physics_version)
    text = str(location)
    if text.startswith("http://") or text.startswith("https://"):
        # Single broker or a comma-separated shard list — dispatch the
        # same way the queue does, so ``--queue``/``--cache`` accept the
        # same address syntax.
        transport = transport_from_address(text, retries=retries,
                                           retry_delay=retry_delay)
        return TransportResultCache(transport,
                                    physics_version=physics_version)
    return ResultCache(location, physics_version=physics_version)
