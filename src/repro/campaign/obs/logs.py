"""Structured single-line event logging for fleet components.

The dist stack's diagnostics used to be bare ``print`` calls — broker
``--verbose`` access lines interleaved with program stdout, and worker
progress was unparseable.  :class:`StructLogger` replaces them with one
``key=value`` line per event on **stderr** (stdout stays reserved for
program output), greppable by component and event name::

    [broker] request method=GET target=/healthz status=200 ms=0.21

The format is deliberately boring: no dependencies, no log levels
beyond an ``enabled`` switch (callers already gate on ``--verbose``),
values rendered compactly (floats to 4 significant places, strings
quoted only when they contain spaces).

>>> import io
>>> out = io.StringIO()
>>> log = StructLogger("broker", stream=out)
>>> log.event("request", method="GET", target="/k/a b", status=200)
>>> out.getvalue()
"[broker] request method=GET target='/k/a b' status=200\\n"
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Optional, TextIO


def _render(value: Any) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    elif isinstance(value, bool):
        text = "true" if value else "false"
    else:
        text = str(value)
    if " " in text or "=" in text or not text:
        return repr(text)
    return text


class StructLogger:
    """One-line ``[component] event key=value ...`` logging to stderr."""

    def __init__(self, component: str, stream: Optional[TextIO] = None,
                 enabled: bool = True):
        self.component = component
        self.enabled = enabled
        self._stream = stream
        self._lock = threading.Lock()

    @property
    def stream(self) -> TextIO:
        # Resolved lazily so monkeypatched/capture-wrapped sys.stderr
        # (pytest capsys, contextlib.redirect_stderr) is honoured.
        return self._stream if self._stream is not None else sys.stderr

    def event(self, name: str, **fields: Any) -> None:
        """Emit one structured event line (no-op while disabled)."""
        if not self.enabled:
            return
        parts = [f"[{self.component}]", name]
        parts.extend(f"{key}={_render(value)}"
                     for key, value in fields.items())
        line = " ".join(parts) + "\n"
        with self._lock:
            stream = self.stream
            stream.write(line)
            try:
                stream.flush()
            except (OSError, ValueError):
                pass  # closed/detached stream: the event is best-effort

    def child(self, suffix: str) -> "StructLogger":
        """A logger for a subcomponent (``[broker.core]``), same stream."""
        log = StructLogger(f"{self.component}.{suffix}",
                           stream=self._stream, enabled=self.enabled)
        return log
