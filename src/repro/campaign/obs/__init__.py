"""Fleet observability: metrics, spans, structured logs.

The telemetry substrate for the distributed campaign stack, applying the
source paper's profiler-first methodology to our own runtime.  Three
small, dependency-free pieces:

* :mod:`~repro.campaign.obs.metrics` — thread-safe labelled counters /
  gauges / histograms with a JSON :meth:`~repro.campaign.obs.metrics.
  MetricsRegistry.snapshot`, the wire shape behind the broker's
  ``GET /stats`` and worker heartbeat metrics.
* :mod:`~repro.campaign.obs.spans` — span recording sharing
  ``tfmini.profiler.traceme`` event conventions, written out as
  Chrome-trace/Perfetto-compatible JSONL or ``trace.json``.
* :mod:`~repro.campaign.obs.logs` — one-line ``key=value`` structured
  events on stderr, replacing bare ``print`` diagnostics.

This package must import nothing from ``repro.campaign.dist`` — every
dist module imports *it*.
"""

from repro.campaign.obs.logs import StructLogger
from repro.campaign.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_total,
    get_registry,
    series_value,
)
from repro.campaign.obs.spans import (
    Span,
    SpanRecorder,
    spans_from_result_records,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "StructLogger",
    "counter_total",
    "get_registry",
    "series_value",
    "spans_from_result_records",
]
