"""Span recording with Chrome-trace/Perfetto-compatible output.

Fleet spans share the event-shape conventions of
:class:`repro.tfmini.profiler.traceme.TraceMeEvent` — ``name``, ``start``,
``end``, ``thread``, ``metadata``, with a derived ``duration`` — so fleet
traces (queue-wait → run → store per job) and the simulated workload's
profiler traces can be read by the same tooling and viewed side by side.

Two output formats, both Chrome trace event format (the JSON the
``chrome://tracing`` viewer and https://ui.perfetto.dev load natively):

* :meth:`SpanRecorder.write_jsonl` — one complete-event object per line,
  streamable and cat-able, the shape the golden tests pin.
* :meth:`SpanRecorder.write_chrome_trace` — the ``{"traceEvents": [...]}``
  wrapper with thread-name metadata events, what a campaign run writes as
  ``trace.json``.

Timestamps are unix seconds in span objects (matching the queue's lease
and result documents) and microseconds on the wire (what the trace-event
spec requires).

>>> recorder = SpanRecorder(process="fleet")
>>> span = recorder.record("run", start=10.0, end=10.5, thread="worker-1",
...                        metadata={"job": "abc"})
>>> event = recorder.to_chrome_events()[0]
>>> event["ph"], event["dur"]
('X', 500000)
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock
from time import time
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional


@dataclass(frozen=True)
class Span:
    """One completed activity span (TraceMeEvent field conventions)."""

    name: str
    start: float
    end: float
    thread: str = "main"
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_chrome_event(self, pid: int, tid: int) -> Dict[str, Any]:
        """This span as a Chrome trace complete event ("ph": "X")."""
        event = {
            "name": self.name,
            "ph": "X",
            "ts": int(self.start * 1_000_000),
            "dur": max(0, int(self.duration * 1_000_000)),
            "pid": pid,
            "tid": tid,
        }
        if self.metadata:
            event["args"] = dict(self.metadata)
        return event


class SpanRecorder:
    """Thread-safe span collector with Chrome-trace writers.

    Threads are logical lanes ("worker-1", "broker"), mapped to stable
    integer ``tid`` values in first-seen order; ``process`` names the
    trace's single ``pid`` lane.
    """

    def __init__(self, process: str = "fleet", pid: int = 1):
        self.process = process
        self.pid = pid
        self._lock = Lock()
        self._spans: List[Span] = []

    def record(self, name: str, start: float, end: float,
               thread: str = "main",
               metadata: Optional[Mapping[str, Any]] = None) -> Span:
        """Record one completed span and return it."""
        span = Span(name=name, start=float(start), end=float(end),
                    thread=thread, metadata=dict(metadata or {}))
        with self._lock:
            self._spans.append(span)
        return span

    def add(self, spans: Iterable[Span]) -> None:
        """Record already-built spans (e.g. reconstructed from queue
        result records)."""
        spans = list(spans)
        with self._lock:
            self._spans.extend(spans)

    @contextmanager
    def span(self, name: str, thread: str = "main",
             **metadata: Any) -> Iterator[Dict[str, Any]]:
        """Record the wrapped block as a span (wall-clock unix time).

        Yields the metadata dict so the block can attach results::

            with recorder.span("claim", thread="worker-1") as meta:
                meta["key"] = item.key
        """
        meta = dict(metadata)
        start = time()
        try:
            yield meta
        finally:
            self.record(name, start, time(), thread=thread, metadata=meta)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- Chrome trace output -------------------------------------------------
    def _thread_ids(self, spans: List[Span]) -> Dict[str, int]:
        tids: Dict[str, int] = {}
        for span in spans:
            if span.thread not in tids:
                tids[span.thread] = len(tids) + 1
        return tids

    def to_chrome_events(self) -> List[Dict[str, Any]]:
        """Every recorded span as Chrome complete events, start-ordered."""
        spans = sorted(self.spans(), key=lambda s: (s.start, s.end))
        tids = self._thread_ids(spans)
        return [span.to_chrome_event(self.pid, tids[span.thread])
                for span in spans]

    def write_jsonl(self, path) -> int:
        """Write one Chrome complete event per line; returns the count."""
        events = self.to_chrome_events()
        lines = [json.dumps(event, sort_keys=True) for event in events]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""),
                              encoding="utf-8")
        return len(events)

    def write_chrome_trace(self, path) -> int:
        """Write a ``{"traceEvents": [...]}`` trace.json; returns the span
        count.  Thread-name metadata events (``"ph": "M"``) label the
        lanes so Perfetto shows "worker-1" instead of "tid 3"."""
        spans = sorted(self.spans(), key=lambda s: (s.start, s.end))
        tids = self._thread_ids(spans)
        events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": self.pid,
            "args": {"name": self.process},
        }]
        for thread, tid in tids.items():
            events.append({"name": "thread_name", "ph": "M",
                           "pid": self.pid, "tid": tid,
                           "args": {"name": thread}})
        events.extend(span.to_chrome_event(self.pid, tids[span.thread])
                      for span in spans)
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        Path(path).write_text(json.dumps(payload, sort_keys=True),
                              encoding="utf-8")
        return len(spans)


def spans_from_result_records(records: Mapping[str, Mapping[str, Any]],
                              ) -> List[Span]:
    """Rebuild per-job queue-wait → run → store spans from queue result
    records.

    Workers attach a ``timing`` document to each result they commit
    (see :meth:`repro.campaign.dist.queue.WorkQueue.complete`)::

        {"enqueued_at": ..., "claimed_at": ..., "started_at": ...,
         "finished_at": ..., "stored_at": ...}

    Each phase becomes one span on the claiming worker's lane; records
    without timing (old workers, cache hits served before claim) are
    skipped.  The spans drop straight into a :class:`SpanRecorder` for
    ``trace.json`` output.
    """
    spans: List[Span] = []
    for name, record in sorted(records.items()):
        timing = record.get("timing") or {}
        worker = str(record.get("worker", "worker"))
        meta = {"job": name, "attempts": record.get("attempts"),
                "cached": bool(record.get("cached"))}
        phases = (
            ("queue-wait", "enqueued_at", "claimed_at"),
            ("run", "started_at", "finished_at"),
            ("store", "finished_at", "stored_at"),
        )
        for phase, start_key, end_key in phases:
            start, end = timing.get(start_key), timing.get(end_key)
            if start is None or end is None or end < start:
                continue
            spans.append(Span(name=phase, start=float(start),
                              end=float(end), thread=worker,
                              metadata=dict(meta)))
    return spans
