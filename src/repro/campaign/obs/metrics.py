"""Thread-safe labelled metrics with JSON snapshotting.

The fleet-observability substrate (``repro.campaign.obs``) applies the
source paper's profiler-first methodology to our own runtime: the broker,
transports, queue, cache and workers all record what they do into a
:class:`MetricsRegistry`, and the registry's :meth:`~MetricsRegistry.
snapshot` is the wire format everything downstream reads — the broker's
``GET /stats`` endpoint, worker heartbeat documents, and the live
``python -m repro.campaign.dist.stats`` dashboard.

Design constraints, in order:

* **Dependency-free.**  Pure stdlib, like the rest of the campaign layer.
* **Cheap when hot.**  An increment is one lock acquisition and one dict
  update; instrumenting the broker's per-request path must not move the
  throughput floors in ``BENCH_transport.json`` (the ``BENCH_obs.json``
  benchmark pins the overhead down).
* **Label-aware.**  Every metric is a *family* of series keyed by label
  values (``requests.inc(route="/k", status=200)``), mirroring the
  Prometheus data model so the snapshot shape stays future-proof.

Three metric kinds:

``Counter``
    Monotonically increasing totals (requests served, bytes moved,
    claim conflicts).  ``inc()`` only; never decremented.
``Gauge``
    Point-in-time levels (in-flight requests, live workers).  ``set``/
    ``inc``/``dec``.
``Histogram``
    Distributions (request latency).  Observations land in fixed
    exponential buckets plus running count/sum/min/max, so a snapshot
    supports both rate math and tail-latency estimates without keeping
    raw samples.

A process-wide default registry (:func:`get_registry`) collects
client-side metrics (transport, queue, cache, worker) so one snapshot
describes a whole worker process; servers that want isolation (each
broker's dialect) construct their own private registry.

>>> registry = MetricsRegistry()
>>> requests = registry.counter("requests_total")
>>> requests.inc(route="/k")
>>> requests.inc(2, route="/list")
>>> requests.value(route="/list")
2.0
>>> snap = registry.snapshot()
>>> [s["value"] for s in snap["counters"]["requests_total"]]
[1.0, 2.0]
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds): exponential coverage
#: from 100µs (an in-memory broker op) to 10s (a retried WAN exchange).
DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    """Canonical hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared family plumbing: one lock, one series dict per label set."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[_LabelKey, Any] = {}

    def _snapshot_series(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    @staticmethod
    def _labels_dict(key: _LabelKey) -> Dict[str, str]:
        return dict(key)


class Counter(_Metric):
    """Monotonically increasing total, per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label set (the family-level rate source)."""
        with self._lock:
            return float(sum(self._series.values()))

    def _snapshot_series(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._series.items())
        return [{"labels": self._labels_dict(key), "value": float(value)}
                for key, value in items]


class Gauge(_Metric):
    """Point-in-time level, per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def _snapshot_series(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._series.items())
        return [{"labels": self._labels_dict(key), "value": float(value)}
                for key, value in items]


class _HistogramSeries:
    """One label set's distribution state."""

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, buckets: int):
        self.counts = [0] * (buckets + 1)  # +1: the +inf overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Metric):
    """Bucketed distribution with running count/sum/min/max, per label set."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets))
            series.counts[bisect_left(self.buckets, value)] += 1
            series.count += 1
            series.sum += value
            if value < series.min:
                series.min = value
            if value > series.max:
                series.max = value

    def time(self, **labels: Any) -> "_Timer":
        """Context manager observing the block's wall time in seconds."""
        return _Timer(self, labels)

    def _snapshot_series(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = [(key, series.counts[:], series.count, series.sum,
                      series.min, series.max)
                     for key, series in sorted(self._series.items())]
        out = []
        for key, counts, count, total, low, high in items:
            out.append({
                "labels": self._labels_dict(key),
                "count": count,
                "sum": total,
                "min": low if count else None,
                "max": high if count else None,
                # Non-cumulative per-bucket counts keyed by upper bound;
                # "+inf" is the overflow bucket.
                "buckets": dict(zip([repr(b) for b in self.buckets]
                                    + ["+inf"], counts)),
            })
        return out


class _Timer:
    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: Histogram, labels: Dict[str, Any]):
        self._histogram = histogram
        self._labels = labels

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._histogram.observe(time.perf_counter() - self._start,
                                **self._labels)


class MetricsRegistry:
    """A named collection of metric families with one JSON snapshot.

    ``counter``/``gauge``/``histogram`` are get-or-create: every caller
    asking for the same name shares the family (asking with a different
    kind raises — one name, one meaning).  The snapshot is plain JSON
    data, shaped for the ``GET /stats`` wire format::

        {"counters":   {name: [{"labels": {...}, "value": n}, ...]},
         "gauges":     {name: [...same...]},
         "histograms": {name: [{"labels": {...}, "count": n, "sum": s,
                                "min": m, "max": M,
                                "buckets": {"0.001": 3, ..., "+inf": 0}}]},
         "created_at": <unix seconds>}
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self.created_at = time.time()

    def _get_or_create(self, cls, name: str, help: str,
                       **kwargs: Any) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-safe view of every family (see the class docstring)."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: Dict[str, Any] = {"counters": {}, "gauges": {},
                               "histograms": {},
                               "created_at": self.created_at}
        kinds = {"counter": "counters", "gauge": "gauges",
                 "histogram": "histograms"}
        for metric in metrics:
            out[kinds[metric.kind]][metric.name] = metric._snapshot_series()
        return out

    def __repr__(self) -> str:
        with self._lock:
            return f"MetricsRegistry(families={len(self._metrics)})"


#: The process-wide default registry: client-side instrumentation
#: (transport, queue, cache, worker) records here unless handed a
#: private registry, so one snapshot describes a whole worker process.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT


def counter_total(snapshot: Dict[str, Any], name: str) -> float:
    """Sum of one counter family's series in a :meth:`~MetricsRegistry.
    snapshot` (0.0 when the family has never been touched) — the helper
    the ``dist.stats`` dashboard builds its rate math on."""
    series = (snapshot.get("counters") or {}).get(name) or []
    return float(sum(entry.get("value", 0.0) for entry in series))


def series_value(snapshot: Dict[str, Any], kind: str, name: str,
                 /, **labels: Any) -> Optional[float]:
    """One series' value in a snapshot, or ``None`` when absent.

    ``kind`` is ``"counters"`` or ``"gauges"``; labels must match the
    series' label set exactly.  The leading parameters are positional-only
    so that ``kind``/``name``/``snapshot`` stay usable as *label* names
    (the chaos fault counter labels its series by fault ``kind``).
    """
    wanted = {str(k): str(v) for k, v in labels.items()}
    for entry in (snapshot.get(kind) or {}).get(name) or []:
        if entry.get("labels", {}) == wanted:
            return float(entry.get("value", 0.0))
    return None
