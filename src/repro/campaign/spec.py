"""Declarative sweep specifications and their expansion into jobs.

A :class:`SweepSpec` describes a whole experiment grid — one *case study*
(a registered workload runner), a set of fixed base parameters, and a
parameter grid — the way the paper's evaluation is a grid of training runs
over platforms × thread counts × container formats × staging thresholds.
:meth:`SweepSpec.expand` turns the spec into concrete :class:`JobSpec`
objects with deterministic identities and per-job seeds:

* expansion order is the cartesian product over *sorted* grid keys, so the
  same spec always yields the same job list;
* every job's ``fingerprint`` hashes the case name and its canonical
  parameters — not its position — so reordering grid values neither
  changes job identities nor invalidates cached results;
* per-job seeds are derived from the sweep seed and the fingerprint, which
  makes aggregate results identical under serial and parallel executors
  (seeding cannot depend on execution order).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, Iterator, List, Mapping, Sequence

from repro.sim.rng import DEFAULT_SEED, derive_seed

#: Parameter values must be JSON scalars so specs hash canonically and job
#: records serialize losslessly to the on-disk cache.
_SCALARS = (str, int, float, bool, type(None))


class SpecError(ValueError):
    """Raised for malformed sweep specifications."""


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` to the canonical JSON used for fingerprints."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _check_scalar(name: str, value: Any) -> None:
    if not isinstance(value, _SCALARS):
        raise SpecError(
            f"parameter {name!r} must be a JSON scalar "
            f"(str/int/float/bool/None), got {type(value).__name__}")
    if isinstance(value, bool):
        return
    if isinstance(value, float) and (value != value or value in (float("inf"),
                                                                 float("-inf"))):
        raise SpecError(f"parameter {name!r} must be finite, got {value!r}")


def job_fingerprint(case: str, params: Mapping[str, Any], repeat: int = 0) -> str:
    """Content hash of what a job *computes* (not where it sits in a grid)."""
    payload = canonical_json({
        "case": case,
        "params": dict(params),
        "repeat": repeat,
    })
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


@dataclass(frozen=True)
class JobSpec:
    """One concrete experiment: a case study with fully bound parameters."""

    campaign: str
    case: str
    index: int
    params: Mapping[str, Any]
    seed: int
    repeat: int = 0

    @property
    def fingerprint(self) -> str:
        """Content hash of what the job computes (case, params, repeat)."""
        return job_fingerprint(self.case, self.params, self.repeat)

    @property
    def job_id(self) -> str:
        """Stable identity: human-scannable prefix + content fingerprint."""
        return f"{self.case}-{self.index:04d}-{self.fingerprint[:8]}"

    def to_record(self) -> Dict[str, Any]:
        """A picklable/JSON-able representation (used by executors/cache)."""
        return {
            "campaign": self.campaign,
            "case": self.case,
            "index": self.index,
            "params": dict(self.params),
            "seed": self.seed,
            "repeat": self.repeat,
        }

    @staticmethod
    def from_record(record: Mapping[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_record` output; raises
        ``KeyError``/``TypeError`` on a foreign or truncated record."""
        return JobSpec(campaign=record["campaign"], case=record["case"],
                       index=record["index"], params=dict(record["params"]),
                       seed=record["seed"], repeat=record.get("repeat", 0))


@dataclass
class SweepSpec:
    """A declarative description of an experiment campaign.

    ``base`` holds parameters shared by every job; ``grid`` maps parameter
    names to the values to sweep.  ``repeats`` replicates the whole grid
    with distinct per-repeat seeds (for variance estimates).

    ``seed_mode`` selects the seeding protocol:

    * ``"derived"`` (default) — every job's seed is derived from the sweep
      seed and the job's content fingerprint, giving independent random
      streams across the grid (right for coverage/variance sweeps);
    * ``"shared"`` — every job of a repeat runs with the *same* seed, so
      grid points differ only in the swept parameters.  This is the
      paper's fixed-workload measurement protocol: differential
      comparisons (profiler overhead, threading speedup, staging gain)
      must not mix dataset variance into the deltas.
    """

    name: str
    case: str
    base: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    seed: int = DEFAULT_SEED
    repeats: int = 1
    seed_mode: str = "derived"

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("sweep name must be non-empty")
        if not self.case:
            raise SpecError("sweep case must be non-empty")
        if self.seed_mode not in ("derived", "shared"):
            raise SpecError(
                f"seed_mode must be 'derived' or 'shared', got {self.seed_mode!r}")
        if self.repeats < 1:
            raise SpecError(f"repeats must be >= 1, got {self.repeats}")
        overlap = set(self.base) & set(self.grid)
        if overlap:
            raise SpecError(
                f"parameters {sorted(overlap)} appear in both base and grid")
        for name, value in self.base.items():
            _check_scalar(name, value)
        for name, values in self.grid.items():
            if isinstance(values, (str, bytes)) or not isinstance(
                    values, (list, tuple, range)):
                raise SpecError(
                    f"grid axis {name!r} must be a list/tuple/range of values")
            if len(values) == 0:
                raise SpecError(f"grid axis {name!r} is empty")
            for value in values:
                _check_scalar(name, value)

    # -- expansion ---------------------------------------------------------
    def axes(self) -> List[str]:
        """Grid axes in deterministic (sorted) order."""
        return sorted(self.grid)

    def combinations(self) -> Iterator[Dict[str, Any]]:
        """All grid points, base merged in, in deterministic order."""
        axes = self.axes()
        if not axes:
            yield dict(self.base)
            return
        for combo in product(*(self.grid[axis] for axis in axes)):
            params = dict(self.base)
            params.update(zip(axes, combo))
            yield params

    def expand(self) -> List[JobSpec]:
        """Expand the grid into concrete jobs with bound per-job seeds."""
        jobs: List[JobSpec] = []
        index = 0
        for repeat in range(self.repeats):
            for params in self.combinations():
                if self.seed_mode == "shared":
                    # Same physics for every grid point of a repeat.
                    seed = (self.seed if self.repeats == 1
                            else derive_seed(self.seed, "repeat", repeat))
                else:
                    # Seed from content, not position: reordering the grid
                    # must not change any job's physics.
                    seed = derive_seed(
                        self.seed, self.case,
                        job_fingerprint(self.case, params, repeat))
                jobs.append(JobSpec(campaign=self.name, case=self.case,
                                    index=index, params=params, seed=seed,
                                    repeat=repeat))
                index += 1
        return jobs

    @property
    def job_count(self) -> int:
        """Grid size × repeats, without expanding the jobs."""
        count = self.repeats
        for values in self.grid.values():
            count *= len(values)
        return count

    def fingerprint(self) -> str:
        """Content hash of the entire sweep (used to name result sets)."""
        payload = canonical_json({
            "case": self.case,
            "base": self.base,
            "grid": {k: list(v) for k, v in self.grid.items()},
            "seed": self.seed,
            "repeats": self.repeats,
            "seed_mode": self.seed_mode,
        })
        return hashlib.sha256(payload.encode()).hexdigest()[:20]
