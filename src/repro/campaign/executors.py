"""Pluggable job executors.

An executor is anything with ``map(fn, items) -> list`` that preserves item
order.  Three in-process implementations ship here — serial, a thread-pool
overlap (:class:`AsyncExecutor`) and a ``multiprocessing`` fan-out — and
the distributed worker fleet (:class:`~repro.campaign.dist.executor.
DistributedExecutor`) plugs into the same seam.

Determinism contract: executors may run jobs in any order or on any worker,
but the *returned list* lines up with the input list, and job seeds are
bound into the :class:`~repro.campaign.spec.JobSpec` before submission —
so a campaign's aggregate results are independent of the executor used.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence


class SerialExecutor:
    """Run every job in the calling process, one after another."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item in order; the reference executor."""
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class AsyncExecutor:
    """Overlap many small jobs in one process via a thread pool.

    No pickling, no process spawns, one shared address space: the right
    executor for campaigns of numerous tiny jobs (where
    ``MultiprocessingExecutor``'s per-process startup dominates) and for
    cache-heavy re-runs (threads overlap the disk reads).  Pure-Python
    simulation time still serializes under the GIL, so CPU-bound grids
    should prefer the multiprocessing or distributed executors.

    The ``map`` contract is unchanged: results line up with the input list
    regardless of which thread finished first.
    """

    name = "async"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is None:
            max_workers = min(32, (os.cpu_count() or 1) + 4)
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Thread-pool ``fn`` over ``items``; results stay in input order."""
        items = list(items)
        if len(items) <= 1 or self.max_workers == 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.max_workers,
                                                len(items))) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:
        return f"AsyncExecutor(max_workers={self.max_workers})"


class MultiprocessingExecutor:
    """Fan jobs out over a pool of worker processes.

    Each worker imports the case registry lazily on first use; jobs and
    results cross the process boundary as picklable dataclasses.  The
    default worker count leaves one core for the orchestrating process.
    """

    name = "multiprocessing"

    def __init__(self, processes: Optional[int] = None,
                 start_method: Optional[str] = None,
                 chunksize: int = 1):
        if processes is None:
            processes = max(1, (os.cpu_count() or 2) - 1)
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        self.start_method = start_method
        self.chunksize = max(1, int(chunksize))

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Fan ``fn`` over a process pool; results stay in input order."""
        items = list(items)
        if not items:
            return []
        if len(items) == 1 or self.processes == 1:
            # No point paying process startup for a single job.
            return [fn(item) for item in items]
        context = (multiprocessing.get_context(self.start_method)
                   if self.start_method else multiprocessing.get_context())
        workers = min(self.processes, len(items))
        with context.Pool(processes=workers) as pool:
            return pool.map(fn, items, chunksize=self.chunksize)

    def __repr__(self) -> str:
        return (f"MultiprocessingExecutor(processes={self.processes}, "
                f"start_method={self.start_method!r})")


def default_executor(parallel: bool = True) -> Any:
    """Convenience picker: multiprocessing fan-out when the host has spare
    cores, serial otherwise.  Note :func:`~repro.campaign.runner.run_campaign`
    itself defaults to :class:`SerialExecutor` — pass an executor (this
    helper's return value, for instance) explicitly to parallelize."""
    if parallel and (os.cpu_count() or 1) > 1:
        return MultiprocessingExecutor()
    return SerialExecutor()
