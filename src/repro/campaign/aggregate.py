"""Aggregation of campaign results into table- and figure-shaped views.

The benchmark harnesses consume experiment grids in two shapes: *tables*
(one row per configuration, columns mixing parameters and metrics — the
paper's Table 1/2) and *series* (a metric as a function of one swept
parameter, other parameters fixed — the paper's figures).  A
:class:`CampaignResult` holds the ordered job results of one sweep and
derives both shapes without re-running anything.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.jobs import JobResult
from repro.campaign.spec import SweepSpec, canonical_json

Predicate = Callable[[JobResult], bool]


def _matches(result: JobResult, where: Optional[Dict[str, Any]]) -> bool:
    if not where:
        return True
    for key, value in where.items():
        if result.params.get(key) != value:
            return False
    return True


@dataclass
class CampaignResult:
    """Ordered results of one campaign, with cache/executor bookkeeping.

    ``meta`` carries per-run orchestration facts that are not derivable
    from the results themselves: the orchestrator's actual cache-probe
    stats (authoritative even when workers in other processes kept their
    own counters), and — for incremental snapshots of a partially drained
    grid — the explicit ``pending``/``running``/``failed`` accounting.
    """

    spec: SweepSpec
    results: List[JobResult]
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time: float = 0.0
    executor: str = "serial"
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- basic access ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def ok(self) -> bool:
        """True when every job completed without a captured error."""
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> List[JobResult]:
        """The jobs that completed with an error, in job order."""
        return [result for result in self.results if not result.ok]

    # -- table shape -------------------------------------------------------
    def rows(self, where: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        """One flat dict per job: parameters merged with metrics."""
        rows = []
        for result in self.results:
            if not _matches(result, where):
                continue
            row: Dict[str, Any] = {"job_id": result.job_id, "case": result.case}
            row.update(result.params)
            row.update(result.metrics)
            rows.append(row)
        return rows

    def table(self, columns: Sequence[str],
              where: Optional[Dict[str, Any]] = None) -> List[List[Any]]:
        """Rows restricted/ordered to ``columns`` (for ``format_table``)."""
        return [[row.get(column) for column in columns]
                for row in self.rows(where)]

    # -- figure shape ------------------------------------------------------
    def series(self, x: str, y: str,
               where: Optional[Dict[str, Any]] = None) -> Tuple[List[Any], List[Any]]:
        """``(xs, ys)`` of metric ``y`` against swept parameter ``x``."""
        points = []
        for result in self.results:
            if not _matches(result, where):
                continue
            if x in result.params and y in result.metrics:
                points.append((result.params[x], result.metrics[y]))
        points.sort(key=lambda point: (point[0] is None, point[0]))
        return [p[0] for p in points], [p[1] for p in points]

    def group_by(self, param: str) -> Dict[Any, List[JobResult]]:
        """Results bucketed by one swept parameter's value (job order kept)."""
        groups: Dict[Any, List[JobResult]] = {}
        for result in self.results:
            groups.setdefault(result.params.get(param), []).append(result)
        return groups

    # -- scalar summaries --------------------------------------------------
    def metric(self, y: str, where: Optional[Dict[str, Any]] = None) -> List[float]:
        """Every value of metric ``y`` (optionally filtered), in job order."""
        return [result.metrics[y] for result in self.results
                if _matches(result, where) and y in result.metrics]

    def mean(self, y: str, where: Optional[Dict[str, Any]] = None) -> float:
        """Arithmetic mean of metric ``y``; raises ``KeyError`` if absent."""
        values = self.metric(y, where)
        if not values:
            raise KeyError(f"no values for metric {y!r}")
        return sum(values) / len(values)

    def best(self, y: str, minimize: bool = True,
             where: Optional[Dict[str, Any]] = None) -> JobResult:
        """The job minimizing (or maximizing) metric ``y``; raises
        ``KeyError`` when no matching job carries the metric."""
        candidates = [result for result in self.results
                      if _matches(result, where) and y in result.metrics]
        if not candidates:
            raise KeyError(f"no values for metric {y!r}")
        return (min if minimize else max)(candidates,
                                          key=lambda r: r.metrics[y])

    def one(self, where: Dict[str, Any]) -> JobResult:
        """The unique job matching ``where`` (raises otherwise)."""
        matches = [result for result in self.results if _matches(result, where)]
        if len(matches) != 1:
            raise KeyError(f"expected exactly one job for {where!r}, "
                           f"found {len(matches)}")
        return matches[0]

    # -- identity ----------------------------------------------------------
    def aggregate_fingerprint(self) -> str:
        """Content hash of every job's metrics, in job order.

        Two campaigns over the same spec must produce the same fingerprint
        regardless of executor, caching, or scheduling — this is the
        equality the determinism tests assert.
        """
        payload = canonical_json([
            {"job_id": result.job_id, "metrics": result.metrics,
             "error": result.error}
            for result in self.results
        ])
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> str:
        """One human-readable line: job/cache counts, executor, wall time."""
        cached = sum(1 for result in self.results if result.cached)
        status = "ok" if self.ok else f"{len(self.failures)} FAILED"
        return (f"campaign {self.spec.name!r}: {len(self.results)} jobs "
                f"({cached} cached) via {self.executor} "
                f"in {self.wall_time:.2f}s wall — {status}")
