"""Campaign orchestration: expand → cache-probe → execute → aggregate.

:func:`run_campaign` is the single entry point the benchmarks, examples and
tools use: it expands a :class:`~repro.campaign.spec.SweepSpec` into jobs,
serves whatever it can from the content-hash cache, fans the rest out
through the chosen executor, persists fresh results, and returns a
:class:`~repro.campaign.aggregate.CampaignResult` in deterministic job
order.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.aggregate import CampaignResult
from repro.campaign.cache import TransportResultCache, open_cache
from repro.campaign.executors import SerialExecutor
from repro.campaign.jobs import (
    JobResult,
    execute_job,
    result_from_record_or_none,
)
from repro.campaign.spec import JobSpec, SweepSpec


def run_campaign(spec: SweepSpec,
                 executor: Optional[Any] = None,
                 cache: Optional[TransportResultCache] = None,
                 cache_dir: Optional[str] = None,
                 progress: Optional[Callable[[str], None]] = None) -> CampaignResult:
    """Run (or re-serve) every job of ``spec`` and aggregate the results.

    Parameters
    ----------
    executor:
        Anything with an order-preserving ``map(fn, jobs)``; defaults to
        :class:`SerialExecutor`.  Pass a
        :class:`~repro.campaign.executors.MultiprocessingExecutor` to fan
        out across cores.
    cache / cache_dir:
        Results are read from and written to a result cache.  ``cache``
        takes a cache object (any :class:`~repro.campaign.cache.
        TransportResultCache`) and wins over ``cache_dir``, which takes a
        directory *or* broker URL via
        :func:`~repro.campaign.cache.open_cache`.  Pass neither to run
        uncached (e.g. in determinism tests), and note failed jobs are
        never cached.
    progress:
        Optional callable receiving human-readable status lines.
    """
    executor = executor or SerialExecutor()
    if cache is None and cache_dir is not None:
        cache = open_cache(cache_dir)

    say = progress or (lambda _line: None)
    start = time.perf_counter()
    jobs = spec.expand()
    say(f"campaign {spec.name!r}: {len(jobs)} jobs expanded "
        f"({spec.fingerprint()})")

    results: List[Optional[JobResult]] = [None] * len(jobs)
    pending: List[JobSpec] = []
    pending_slots: List[int] = []
    hits = 0
    # One batched probe (shard listings + fetches of present keys), not a
    # blocking round trip per job: over a broker-backed cache a cold grid
    # costs O(shards) requests instead of O(jobs).
    records = (cache.get_many(jobs) if cache is not None
               else [None] * len(jobs))
    for slot, (job, record) in enumerate(zip(jobs, records)):
        served = result_from_record_or_none(record, cached=True)
        if served is not None:
            results[slot] = served
            hits += 1
        else:
            pending.append(job)
            pending_slots.append(slot)

    if pending:
        say(f"executing {len(pending)} jobs "
            f"({hits} cache hits) via {getattr(executor, 'name', executor)}")
        fresh = executor.map(execute_job, pending)
        if len(fresh) != len(pending):
            raise RuntimeError(
                f"executor {executor!r} returned {len(fresh)} results for "
                f"{len(pending)} jobs — the map() contract requires one "
                f"result per job, in order")
        # Executors whose workers already write this same cache store
        # (distributed fleets) persisted every fresh result themselves;
        # re-putting identical records here would just burn writes.  The
        # executor must *also* confirm its fleet actually reached the
        # cache — a process fleet given an address-less cache never did,
        # and the orchestrator's put here is then the only persistence.
        # Cache-served results (cached=True) never need a put.
        executor_cache = getattr(executor, "cache", None)
        executor_address = getattr(executor_cache, "address", None)
        workers_own_cache = (cache is not None and executor_cache is not None
                             and (executor_cache is cache
                                  or (executor_address is not None
                                      and executor_address
                                      == getattr(cache, "address", None)))
                             and getattr(executor, "workers_share_cache",
                                         True))
        for slot, job, result in zip(pending_slots, pending, fresh):
            results[slot] = result
            if (cache is not None and result.ok
                    and not result.cached and not workers_own_cache):
                cache.put(job, {"result": result.to_record()})
        if cache is not None and not getattr(executor, "learns_costs", False):
            # Executors that own cost learning (DistributedExecutor folds
            # wall times into the model inside map()) must not be counted
            # a second time here.
            _learn_costs(cache, fresh)
    else:
        say(f"all {len(jobs)} jobs served from cache")

    campaign = CampaignResult(
        spec=spec,
        results=[result for result in results if result is not None],
        cache_hits=hits,
        cache_misses=len(pending),
        wall_time=time.perf_counter() - start,
        executor=getattr(executor, "name", type(executor).__name__),
        # Authoritative per-run cache accounting, counted from the probes
        # this orchestrator actually made (ResultCache's own counters are
        # per-instance and per-process — see its class docs).
        meta={"cache": {"enabled": cache is not None,
                        "probes": len(jobs) if cache is not None else 0,
                        "hits": hits if cache is not None else 0,
                        "misses": len(pending) if cache is not None else 0}},
    )
    say(campaign.summary())
    return campaign


def _learn_costs(cache: TransportResultCache, fresh: List[JobResult]) -> None:
    """Fold freshly measured wall times into the cost model stored beside
    the cache — through the cache's own transport, so broker-hosted caches
    carry their scheduling priors too.  Best-effort: scheduling is an
    optimization, never worth failing a campaign over."""
    from repro.campaign.dist.costmodel import CostModel
    from repro.campaign.dist.transport import TransportError

    try:
        model = CostModel.alongside(cache)
        model.observe_many(fresh)
        model.save()
    except (OSError, TransportError):  # pragma: no cover - store went away
        pass


def run_grid(case: str, name: Optional[str] = None,
             base: Optional[Dict[str, Any]] = None,
             grid: Optional[Dict[str, Any]] = None,
             **kwargs: Any) -> CampaignResult:
    """Convenience wrapper: build a :class:`SweepSpec` and run it."""
    spec = SweepSpec(name=name or f"{case}-grid", case=case,
                     base=dict(base or {}), grid=dict(grid or {}))
    return run_campaign(spec, **kwargs)
