"""A dstat-like background disk-activity monitor.

The paper validates tf-Darshan's bandwidth numbers against ``dstat`` run
concurrently in the background (Fig. 3, Fig. 4) and uses it again to compare
the disk activity of the three malware-training configurations (Fig. 12).
:class:`DstatMonitor` plays that role: it observes the *devices* below the
mount table — i.e. a measurement completely independent of the Darshan
instrumentation — and reports per-second transfer rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim import Environment
from repro.storage import StorageDevice
from repro.storage.metrics import merge_timelines


@dataclass
class DstatSeries:
    """Per-second transfer rates over the monitored window."""

    times: np.ndarray
    read_rates: np.ndarray
    write_rates: np.ndarray

    @property
    def total_read_bytes(self) -> float:
        if len(self.times) < 2:
            width = 1.0
        else:
            width = float(self.times[1] - self.times[0])
        return float(self.read_rates.sum() * width)

    @property
    def peak_read_rate(self) -> float:
        return float(self.read_rates.max()) if len(self.read_rates) else 0.0

    def mean_read_rate(self, ignore_idle: bool = False) -> float:
        if not len(self.read_rates):
            return 0.0
        rates = self.read_rates
        if ignore_idle:
            rates = rates[rates > 0]
            if not len(rates):
                return 0.0
        return float(rates.mean())


class DstatMonitor:
    """Samples device counters once per (simulated) second.

    The monitor is deliberately implemented on top of the device transfer
    logs rather than the Darshan records, so the validation experiments
    compare two genuinely independent observations (tool under test vs.
    system monitor), like the paper does.
    """

    def __init__(self, env: Environment, devices: Sequence[StorageDevice],
                 interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.devices = list(devices)
        self.interval = float(interval)
        self.start_time: Optional[float] = None
        self.stop_time: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Begin monitoring (records the window start)."""
        self.start_time = self.env.now

    def stop(self) -> None:
        """Stop monitoring (records the window end)."""
        self.stop_time = self.env.now

    @property
    def window(self) -> tuple:
        start = self.start_time if self.start_time is not None else 0.0
        end = self.stop_time if self.stop_time is not None else self.env.now
        return start, end

    # -- series --------------------------------------------------------------
    def series(self, per_device: bool = False):
        """Per-second rates over the monitored window.

        Returns a :class:`DstatSeries`, or a dict of them per device when
        ``per_device`` is true.
        """
        start, end = self.window
        if per_device:
            return {device.name: self._device_series(device, start, end)
                    for device in self.devices}
        read_lines = []
        write_lines = []
        for device in self.devices:
            series = self._device_series(device, start, end)
            read_lines.append((series.times, series.read_rates))
            write_lines.append((series.times, series.write_rates))
        times, reads = merge_timelines(read_lines)
        _, writes = merge_timelines(write_lines)
        if not len(times):
            times = np.array([start])
            reads = np.zeros(1)
            writes = np.zeros(1)
        return DstatSeries(times=times, read_rates=reads, write_rates=writes)

    def _device_series(self, device: StorageDevice, start: float, end: float
                       ) -> DstatSeries:
        times, reads = device.metrics.throughput_timeline(
            bin_seconds=self.interval, until=end, writes=False)
        _, writes = device.metrics.throughput_timeline(
            bin_seconds=self.interval, until=end, writes=True)
        if not len(times):
            return DstatSeries(times=np.array([]), read_rates=np.array([]),
                               write_rates=np.array([]))
        mask = times >= (start - 1e-9)
        return DstatSeries(times=times[mask], read_rates=reads[mask],
                           write_rates=writes[mask])

    # -- text output ------------------------------------------------------------
    def render(self, max_rows: int = 20) -> str:
        """dstat-style text table of the monitored window."""
        series = self.series()
        lines = ["time(s)    read(MiB/s)   write(MiB/s)"]
        step = max(1, len(series.times) // max_rows)
        for i in range(0, len(series.times), step):
            lines.append(f"{series.times[i]:8.1f} {series.read_rates[i] / (1 << 20):12.2f} "
                         f"{series.write_rates[i] / (1 << 20):13.2f}")
        return "\n".join(lines)
