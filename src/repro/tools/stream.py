"""The STREAM-like ingestion benchmark used for tool validation.

Section IV-B of the paper validates tf-Darshan with "a STREAM application
that performs no computation and preprocessing other than reading files and
forming batches", run over the ImageNet and malware datasets with batch size
128, 16 I/O threads and a prefetch of 10 batches, while profiling is stopped
and restarted every five steps to derive a bandwidth series that is compared
against dstat (Fig. 3 and Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

from repro.tfmini import Dataset, OutOfRangeError, io_ops
from repro.tools.dstat import DstatMonitor, DstatSeries
from repro.core.session import TfDarshanSession


def stream_map_fn(runtime, path: str):
    """The STREAM capture function: read the file, nothing else."""
    data = yield from io_ops.read_file(runtime, path)
    return data


@dataclass
class StreamResult:
    """Outcome of one STREAM run."""

    steps: int
    batch_size: int
    elapsed: float
    total_bytes: int
    #: (window end time, bandwidth) pairs reported by tf-Darshan.
    tfdarshan_series: List[tuple]
    #: Per-second rates observed by dstat in the background.
    dstat: Optional[DstatSeries]
    windows: List = field(default_factory=list)

    @property
    def mean_tfdarshan_bandwidth(self) -> float:
        if not self.tfdarshan_series:
            return 0.0
        return sum(bw for _, bw in self.tfdarshan_series) / len(self.tfdarshan_series)

    @property
    def overall_bandwidth(self) -> float:
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0


class StreamBenchmark:
    """Reads a dataset through tf.data without any compute."""

    def __init__(
        self,
        runtime,
        paths: Sequence[str],
        batch_size: int = 128,
        num_parallel_calls: int = 16,
        prefetch: int = 10,
        profile_every_steps: Optional[int] = 5,
        profiler: str = "tfdarshan",
        monitor_devices: Optional[Sequence] = None,
    ):
        if profiler not in ("tfdarshan", "tf", "none"):
            raise ValueError("profiler must be 'tfdarshan', 'tf' or 'none'")
        self.runtime = runtime
        self.paths = list(paths)
        self.batch_size = batch_size
        self.num_parallel_calls = num_parallel_calls
        self.prefetch = prefetch
        self.profile_every_steps = profile_every_steps
        self.profiler = profiler
        devices = (monitor_devices if monitor_devices is not None
                   else runtime.os.devices())
        self.dstat = DstatMonitor(runtime.env, devices)
        self.session: Optional[TfDarshanSession] = None

    def build_dataset(self, steps: int) -> Dataset:
        """The STREAM pipeline: list of paths -> map(read) -> batch -> prefetch."""
        needed = steps * self.batch_size
        return (Dataset.from_list(self.paths[:needed])
                .map(stream_map_fn, num_parallel_calls=self.num_parallel_calls)
                .batch(self.batch_size)
                .prefetch(self.prefetch))

    def run(self, steps: int) -> Generator:
        """Run ``steps`` batches; returns a :class:`StreamResult`."""
        from repro.tfmini.profiler.session import profiler_start, profiler_stop

        env = self.runtime.env
        if self.profiler == "tfdarshan":
            self.session = TfDarshanSession(self.runtime)
        dataset = self.build_dataset(steps)
        iterator = dataset.make_iterator(self.runtime)
        self.dstat.start()
        start = env.now
        total_bytes = 0
        profiling = False
        completed = 0
        for step in range(steps):
            if (self.profiler != "none" and self.profile_every_steps
                    and step % self.profile_every_steps == 0):
                if profiling:
                    yield from self._stop_window()
                yield from self._start_window()
                profiling = True
            try:
                batch = yield from iterator.get_next()
            except OutOfRangeError:
                break
            total_bytes += batch.nbytes
            completed += 1
        if profiling:
            yield from self._stop_window()
        iterator.cancel()
        self.dstat.stop()
        elapsed = env.now - start
        series = self.session.bandwidth_series() if self.session else []
        return StreamResult(
            steps=completed,
            batch_size=self.batch_size,
            elapsed=elapsed,
            total_bytes=total_bytes,
            tfdarshan_series=series,
            dstat=self.dstat.series(),
            windows=list(self.session.windows) if self.session else [],
        )

    # -- profiling windows ----------------------------------------------------
    def _start_window(self) -> Generator:
        from repro.tfmini.profiler.session import profiler_start

        if self.session is not None:
            yield from self.session.start()
        else:
            yield from profiler_start(self.runtime)

    def _stop_window(self) -> Generator:
        from repro.tfmini.profiler.session import profiler_stop

        if self.session is not None:
            yield from self.session.stop()
        else:
            yield from profiler_stop(self.runtime)
