"""Reporting helpers shared by the examples and the benchmark harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

MIB = 1 << 20
GIB = 1 << 30


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


@dataclass
class PaperComparison:
    """One paper-vs-measured row of EXPERIMENTS.md."""

    quantity: str
    paper_value: str
    measured_value: str
    matches: bool
    note: str = ""

    def as_row(self) -> List[str]:
        status = "ok" if self.matches else "DIFFERS"
        return [self.quantity, self.paper_value, self.measured_value, status,
                self.note]


def comparison_table(comparisons: Sequence[PaperComparison]) -> str:
    """Render paper-vs-measured comparisons as a table."""
    return format_table(
        ["quantity", "paper", "measured", "status", "note"],
        [c.as_row() for c in comparisons])


def within_factor(measured: float, target: float, factor: float) -> bool:
    """True if ``measured`` is within a multiplicative ``factor`` of target."""
    if target == 0:
        return abs(measured) < 1e-12
    ratio = measured / target
    return 1.0 / factor <= ratio <= factor


def mbps(value_bytes_per_second: float) -> str:
    """Format bytes/second as MB/s."""
    return f"{value_bytes_per_second / 1e6:.1f} MB/s"


def mib(value_bytes: float) -> str:
    """Format bytes as MiB."""
    return f"{value_bytes / MIB:.1f} MiB"


def gib(value_bytes: float) -> str:
    """Format bytes as GiB."""
    return f"{value_bytes / GIB:.2f} GiB"


def percent(fraction: float) -> str:
    """Format a fraction as a percentage."""
    return f"{fraction * 100:.1f} %"
