"""Supporting tools: dstat monitor, STREAM benchmark, reporting helpers."""

from repro.tools.dstat import DstatMonitor, DstatSeries
from repro.tools.reporting import (
    PaperComparison,
    comparison_table,
    format_table,
    gib,
    mbps,
    mib,
    percent,
    within_factor,
)
from repro.tools.stream import StreamBenchmark, StreamResult, stream_map_fn

__all__ = [
    "DstatMonitor",
    "DstatSeries",
    "PaperComparison",
    "StreamBenchmark",
    "StreamResult",
    "comparison_table",
    "format_table",
    "gib",
    "mbps",
    "mib",
    "percent",
    "stream_map_fn",
    "within_factor",
]
