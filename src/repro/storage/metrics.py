"""Per-device transfer metrics.

Every storage device records the intervals during which it transferred data.
The :class:`repro.tools.dstat.DstatMonitor` samples these counters once per
simulated second — exactly the role `dstat` plays in the paper's validation
experiments (Fig. 3, 4 and 12) — and the benchmarks use them to compute
ground-truth bandwidth independently of what tf-Darshan reports.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class TransferInterval:
    """One device transfer: ``nbytes`` moved between ``start`` and ``end``."""

    start: float
    end: float
    nbytes: int
    is_write: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


class DeviceMetrics:
    """Accumulates transfer intervals and operation counters for one device."""

    def __init__(self, name: str):
        self.name = name
        self.intervals: List[TransferInterval] = []
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        self.metadata_ops = 0
        self.busy_time = 0.0

    # -- recording -------------------------------------------------------
    def record_transfer(self, start: float, end: float, nbytes: int,
                        is_write: bool = False) -> None:
        """Record a transfer of ``nbytes`` over the interval [start, end]."""
        if end < start:
            raise ValueError("transfer interval must not end before it starts")
        nbytes = int(nbytes)
        self.intervals.append(TransferInterval(start, end, nbytes, is_write))
        if is_write:
            self.bytes_written += nbytes
            self.write_ops += 1
        else:
            self.bytes_read += nbytes
            self.read_ops += 1
        self.busy_time += end - start

    def record_metadata_op(self) -> None:
        """Record a metadata-only operation (open/stat/...)."""
        self.metadata_ops += 1

    # -- queries -----------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def bytes_between(self, t0: float, t1: float,
                      writes: Optional[bool] = None) -> float:
        """Bytes transferred during [t0, t1).

        A transfer is assumed to progress uniformly over its interval, so a
        partially overlapping transfer contributes proportionally.  ``writes``
        selects only writes (``True``), only reads (``False``) or both
        (``None``).
        """
        if t1 <= t0:
            return 0.0
        total = 0.0
        for iv in self.intervals:
            if writes is not None and iv.is_write is not writes:
                continue
            lo = max(t0, iv.start)
            hi = min(t1, iv.end)
            if hi <= lo:
                # instantaneous transfer exactly at a bin edge
                if iv.duration == 0.0 and t0 <= iv.start < t1:
                    total += iv.nbytes
                continue
            if iv.duration == 0.0:
                total += iv.nbytes
            else:
                total += iv.nbytes * (hi - lo) / iv.duration
        return total

    def throughput_timeline(self, bin_seconds: float = 1.0,
                            until: Optional[float] = None,
                            writes: Optional[bool] = None
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(bin_start_times, bytes_per_second)`` arrays.

        This is the series a dstat-style monitor would plot (Fig. 3/4/12).
        """
        if not self.intervals:
            return np.array([]), np.array([])
        t_end = until if until is not None else max(iv.end for iv in self.intervals)
        n_bins = max(1, int(np.ceil(t_end / bin_seconds)))
        edges = np.arange(n_bins + 1) * bin_seconds
        values = np.zeros(n_bins)
        for i in range(n_bins):
            values[i] = self.bytes_between(edges[i], edges[i + 1], writes=writes)
        return edges[:-1], values / bin_seconds

    def reset(self) -> None:
        """Clear all recorded activity (used between benchmark repetitions)."""
        self.intervals.clear()
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        self.metadata_ops = 0
        self.busy_time = 0.0


def merge_timelines(timelines: Iterable[Tuple[np.ndarray, np.ndarray]]
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Sum several ``(times, rates)`` timelines onto a common time axis."""
    timelines = [t for t in timelines if len(t[0])]
    if not timelines:
        return np.array([]), np.array([])
    # All timelines produced with the same bin width start at 0; pad to the
    # longest one.
    longest = max(len(t[0]) for t in timelines)
    times = None
    total = np.zeros(longest)
    for t, v in timelines:
        if times is None or len(t) == longest:
            times = t if len(t) == longest else times
        total[: len(v)] += v
    if times is None:  # pragma: no cover - defensive
        times = np.arange(longest, dtype=float)
    return times, total
