"""Storage substrate: device models, filesystems, tiering and metrics."""

from repro.storage.backend import BackendOp, LocalFilesystem, StorageBackend
from repro.storage.device import (
    DeviceOp,
    RotationalDevice,
    StorageDevice,
    StreamingDevice,
)
from repro.storage.lustre import LustreFilesystem
from repro.storage.metrics import DeviceMetrics, TransferInterval, merge_timelines
from repro.storage.pagecache import PageCache
from repro.storage.presets import (
    GIB,
    KIB,
    MIB,
    dram,
    greendog_hdd_filesystem,
    greendog_optane_filesystem,
    greendog_ssd_filesystem,
    hdd,
    kebnekaise_lustre,
    optane_ssd,
    sata_ssd,
)
from repro.storage.tiering import Mount, MountTable, StagingManager, StagingResult

__all__ = [
    "BackendOp",
    "DeviceMetrics",
    "DeviceOp",
    "GIB",
    "KIB",
    "LocalFilesystem",
    "LustreFilesystem",
    "MIB",
    "Mount",
    "MountTable",
    "PageCache",
    "RotationalDevice",
    "StagingManager",
    "StagingResult",
    "StorageBackend",
    "StorageDevice",
    "StreamingDevice",
    "TransferInterval",
    "dram",
    "greendog_hdd_filesystem",
    "greendog_optane_filesystem",
    "greendog_ssd_filesystem",
    "hdd",
    "kebnekaise_lustre",
    "merge_timelines",
    "optane_ssd",
    "sata_ssd",
]
