"""Device presets modelled on the paper's two evaluation platforms.

*Greendog* (workstation): two 2 TB HDDs, one 1 TB SATA SSD and one 480 GB
Intel Optane SSD 900p on PCIe, all with ext4.  *Kebnekaise* (HPC cluster
node): Lustre over EDR InfiniBand.  The numeric parameters are nominal
datasheet/first-order values; DESIGN.md explains that only their relative
ordering (latency and bandwidth ratios between tiers) matters for the
reproduction's conclusions.
"""

from __future__ import annotations

from repro.sim import Environment
from repro.storage.backend import LocalFilesystem
from repro.storage.device import RotationalDevice, StreamingDevice
from repro.storage.lustre import LustreFilesystem

#: 1 MiB/MB helpers used throughout the workloads.
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30


def hdd(env: Environment, name: str = "sda") -> RotationalDevice:
    """A 7200 rpm SATA hard disk (the Greendog data disks)."""
    return RotationalDevice(
        env,
        name=name,
        bandwidth=165e6,
        write_bandwidth=150e6,
        seek_time=5.4e-3,
        settle_time=0.25e-3,
    )


def sata_ssd(env: Environment, name: str = "sdb") -> StreamingDevice:
    """A SATA SSD (the Greendog 1 TB SSD)."""
    return StreamingDevice(
        env,
        name=name,
        read_bandwidth=540e6,
        write_bandwidth=480e6,
        latency=90e-6,
        per_stream_bandwidth=540e6,
        queue_depth=32,
    )


def optane_ssd(env: Environment, name: str = "nvme0n1") -> StreamingDevice:
    """An Intel Optane SSD 900p on PCIe (the Greendog fast tier)."""
    return StreamingDevice(
        env,
        name=name,
        read_bandwidth=2.5e9,
        write_bandwidth=2.0e9,
        latency=10e-6,
        per_stream_bandwidth=2.2e9,
        queue_depth=128,
    )


def dram(env: Environment, name: str = "dram") -> StreamingDevice:
    """Main memory, used for page-cache hits."""
    return StreamingDevice(
        env,
        name=name,
        read_bandwidth=12e9,
        write_bandwidth=12e9,
        latency=0.5e-6,
        per_stream_bandwidth=8e9,
        queue_depth=256,
    )


def greendog_hdd_filesystem(env: Environment) -> LocalFilesystem:
    """ext4 over a Greendog HDD (where the datasets live)."""
    return LocalFilesystem(env, hdd(env), name="ext4(hdd)")


def greendog_ssd_filesystem(env: Environment) -> LocalFilesystem:
    """ext4 over the Greendog SATA SSD."""
    return LocalFilesystem(env, sata_ssd(env), name="ext4(ssd)")


def greendog_optane_filesystem(env: Environment) -> LocalFilesystem:
    """ext4 over the Greendog Optane 900p (the staging target)."""
    return LocalFilesystem(env, optane_ssd(env), name="ext4(optane)")


def kebnekaise_lustre(env: Environment, n_osts: int = 8) -> LustreFilesystem:
    """The Kebnekaise Lustre filesystem seen from one compute node."""
    return LustreFilesystem(
        env,
        n_osts=n_osts,
        name="lustre",
        mds_latency=3.2e-3,
        mds_concurrency=1,
        stripe_size=1 * MIB,
        stripe_count=1,
        network_bandwidth=12.0e9,
    )
