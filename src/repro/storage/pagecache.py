"""Operating-system page cache model.

The paper is careful about the page cache: every Greendog experiment drops
it first (``echo 3 > /proc/sys/vm/drop_caches``) and only one epoch is run so
the second epoch never benefits from cached samples.  Making the cache an
explicit object lets the reproduction (a) honour the same protocol, and (b)
demonstrate in tests what happens when the protocol is violated (a warm
second epoch is served from DRAM).

The cache tracks, per file, how many leading bytes are resident (ML sample
reads are whole-file sequential, so a prefix model loses nothing), with an
LRU eviction policy over files and a byte-capacity limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple


class PageCache:
    """LRU page cache with byte granularity over file prefixes."""

    def __init__(self, capacity_bytes: float = 32 * (1 << 30)):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self._resident: "OrderedDict[object, int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries -----------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently resident in the cache."""
        return self._used

    def resident_bytes(self, key: object) -> int:
        """Number of leading bytes of ``key`` currently cached."""
        return self._resident.get(key, 0)

    def split_request(self, key: object, offset: int, nbytes: int
                      ) -> Tuple[int, int]:
        """Split a read into ``(cached_bytes, uncached_bytes)``.

        Bytes below the resident prefix are served from DRAM; the rest must
        come from the device.
        """
        if nbytes <= 0:
            return 0, 0
        resident = self.resident_bytes(key)
        cached = max(0, min(nbytes, resident - offset))
        uncached = nbytes - cached
        if cached > 0:
            self.hits += 1
            self._resident.move_to_end(key)
        if uncached > 0:
            self.misses += 1
        return cached, uncached

    # -- updates -------------------------------------------------------------
    def insert(self, key: object, offset: int, nbytes: int) -> None:
        """Mark bytes [offset, offset+nbytes) of ``key`` as resident.

        Only extensions of the resident prefix grow the accounted footprint
        (matching the prefix model); interior writes are already covered.
        """
        if nbytes <= 0:
            return
        current = self._resident.get(key, 0)
        new_prefix = max(current, min(offset, current) + 0)
        if offset <= current:
            new_prefix = max(current, offset + nbytes)
        else:
            # A hole would be needed; approximate by extending to the end of
            # this write only if it starts within one page of the prefix.
            new_prefix = current
        grow = new_prefix - current
        if grow <= 0:
            self._resident.move_to_end(key, last=True) if key in self._resident else None
            return
        self._resident[key] = new_prefix
        self._resident.move_to_end(key)
        self._used += grow
        self._evict_if_needed()

    def invalidate(self, key: object) -> None:
        """Drop any cached data of one file (unlink/truncate)."""
        resident = self._resident.pop(key, 0)
        self._used -= resident

    def drop(self) -> None:
        """Drop the whole cache (the ``drop_caches`` step of the protocol)."""
        self._resident.clear()
        self._used = 0

    # -- internals ------------------------------------------------------------
    def _evict_if_needed(self) -> None:
        while self._used > self.capacity_bytes and self._resident:
            _, nbytes = self._resident.popitem(last=False)
            self._used -= nbytes
            self.evictions += 1

    def stats(self) -> Dict[str, float]:
        """Summary used by tests and reports."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": (self.hits / total) if total else 0.0,
            "used_bytes": self._used,
            "evictions": self.evictions,
        }
