"""A Lustre-like parallel filesystem backend.

The model captures the two properties of Lustre that drive the paper's
ImageNet case study (Section V-A):

* every open is a round trip to a metadata server (MDS) whose service is
  serialized, so small-file workloads are metadata-latency bound and scale
  with the number of concurrent input-pipeline threads only until the MDS
  saturates (the observed ~8x, not 28x, improvement);
* file data lives on object storage targets (OSTs); a file is striped over
  ``stripe_count`` OSTs in ``stripe_size`` chunks and each chunk read is a
  network round trip plus a share of the OST's bandwidth.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.sim import Environment, Resource, SharedBandwidth
from repro.storage.backend import BackendOp, StorageBackend
from repro.storage.device import StorageDevice, StreamingDevice


def default_ost(env: Environment, index: int) -> StreamingDevice:
    """A reasonable OST model: ~2 GB/s aggregate, ~1.2 GB/s per stream."""
    return StreamingDevice(
        env,
        name=f"ost{index}",
        read_bandwidth=2.0e9,
        write_bandwidth=1.5e9,
        latency=0.6e-3,
        per_stream_bandwidth=1.2e9,
        queue_depth=64,
    )


class LustreFilesystem(StorageBackend):
    """Parallel filesystem with one MDS and several OSTs.

    Parameters
    ----------
    mds_latency:
        Service time of one metadata request (open/create/stat) in seconds.
    mds_concurrency:
        Number of metadata requests serviced concurrently.  Production MDS
        hardware pipelines requests, but a single client node's metadata RPC
        stream is effectively serialized, which is what a single TensorFlow
        process observes.
    stripe_size / stripe_count:
        Lustre striping configuration.  Small ML samples are typically
        stored with ``stripe_count=1``.
    network_bandwidth:
        Client interconnect bandwidth (EDR InfiniBand on Kebnekaise) shared
        by all OST traffic of this client.
    """

    def __init__(
        self,
        env: Environment,
        osts: Optional[Sequence[StorageDevice]] = None,
        n_osts: int = 8,
        name: str = "lustre",
        mds_latency: float = 3.2e-3,
        mds_concurrency: int = 1,
        cached_metadata_time: float = 30e-6,
        stripe_size: int = 1 << 20,
        stripe_count: int = 1,
        network_bandwidth: float = 12.0e9,
    ):
        super().__init__(env, name)
        if osts is None:
            osts = [default_ost(env, i) for i in range(n_osts)]
        if not osts:
            raise ValueError("at least one OST is required")
        self.osts: List[StorageDevice] = list(osts)
        self.mds_latency = mds_latency
        self.cached_metadata_time = cached_metadata_time
        self.stripe_size = int(stripe_size)
        self.stripe_count = max(1, min(int(stripe_count), len(self.osts)))
        self._mds = Resource(env, capacity=max(1, int(mds_concurrency)))
        self._network = SharedBandwidth(env, rate=network_bandwidth,
                                        name=f"{name}.lnet")
        self._client_metadata_cache: set = set()
        self.mds_requests = 0

    @property
    def devices(self) -> List[StorageDevice]:
        return list(self.osts)

    # -- layout ------------------------------------------------------------
    def _first_ost_index(self, file_key: object) -> int:
        return hash(file_key) % len(self.osts)

    def ost_for_offset(self, file_key: object, offset: int) -> StorageDevice:
        """OST holding the stripe that contains ``offset`` of the file."""
        stripe_index = offset // self.stripe_size
        ost_index = (self._first_ost_index(file_key)
                     + (stripe_index % self.stripe_count)) % len(self.osts)
        return self.osts[ost_index]

    # -- metadata -----------------------------------------------------------
    def _mds_request(self, file_key: object) -> Generator:
        start = self.env.now
        if file_key in self._client_metadata_cache:
            yield self.env.timeout(self.cached_metadata_time)
        else:
            self.mds_requests += 1
            grant = self._mds.request()
            yield grant
            try:
                yield self.env.timeout(self.mds_latency)
            finally:
                self._mds.release(grant)
            self._client_metadata_cache.add(file_key)
        return BackendOp(0, start, self.env.now, device_ops=0)

    def open(self, file_key: object, file_size: int) -> Generator:
        return (yield from self._mds_request(file_key))

    def stat(self, file_key: object) -> Generator:
        return (yield from self._mds_request(file_key))

    def create(self, file_key: object) -> Generator:
        # Creation allocates the layout on the MDS; never cached beforehand.
        self._client_metadata_cache.discard(file_key)
        result = yield from self._mds_request(file_key)
        return result

    # -- data ---------------------------------------------------------------
    def _split_into_stripes(self, offset: int, nbytes: int):
        """Yield ``(stripe_offset, chunk_bytes)`` pieces of a request."""
        remaining = nbytes
        position = offset
        while remaining > 0:
            stripe_end = (position // self.stripe_size + 1) * self.stripe_size
            chunk = min(remaining, stripe_end - position)
            yield position, chunk
            position += chunk
            remaining -= chunk

    def _transfer(self, file_key: object, offset: int, nbytes: int,
                  is_write: bool) -> Generator:
        start = self.env.now
        device_ops = 0
        for position, chunk in self._split_into_stripes(offset, nbytes):
            ost = self.ost_for_offset(file_key, position)
            network_done = self._network.transfer(float(chunk))
            if is_write:
                yield from ost.write(chunk, stream_id=file_key, offset=position)
            else:
                yield from ost.read(chunk, stream_id=file_key, offset=position)
            yield network_done
            device_ops += 1
        return BackendOp(nbytes, start, self.env.now, device_ops=device_ops)

    def read(self, file_key: object, offset: int, nbytes: int,
             file_size: int) -> Generator:
        if nbytes <= 0:
            return BackendOp(0, self.env.now, self.env.now, device_ops=0)
        return (yield from self._transfer(file_key, offset, nbytes, False))

    def write(self, file_key: object, offset: int, nbytes: int) -> Generator:
        if nbytes <= 0:
            return BackendOp(0, self.env.now, self.env.now, device_ops=0)
        return (yield from self._transfer(file_key, offset, nbytes, True))

    def drop_caches(self) -> None:
        self._client_metadata_cache.clear()
