"""Block-device models.

Two device archetypes cover everything the paper's platforms use:

:class:`StreamingDevice`
    Flash-like devices (SATA SSD, Intel Optane 900p, DRAM, Lustre OSTs): a
    fixed per-request latency plus a fluid, fairly shared bandwidth pool.
    Concurrency helps until the aggregate bandwidth is saturated.

:class:`RotationalDevice`
    Hard disks: a single head services one request at a time.  A request
    pays a seek penalty unless it continues the previous request on the same
    file, then streams at the platter rate.  Concurrent streams therefore
    interleave and *reduce* aggregate throughput — the effect behind the
    malware case study's 16-thread slowdown (Fig. 11a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from repro.sim import Environment, Resource, SharedBandwidth
from repro.storage.metrics import DeviceMetrics


@dataclass
class DeviceOp:
    """Result of one device-level read or write."""

    nbytes: int
    start: float
    end: float
    seeked: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


class StorageDevice:
    """Common interface of all device models."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self.metrics = DeviceMetrics(name)

    # Subclasses implement these as simulation generators.
    def read(self, nbytes: int, stream_id: object = None, offset: int = 0
             ) -> Generator:
        raise NotImplementedError

    def write(self, nbytes: int, stream_id: object = None, offset: int = 0
              ) -> Generator:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class StreamingDevice(StorageDevice):
    """Latency + shared-bandwidth device (SSD / NVMe / DRAM / OST).

    Parameters
    ----------
    read_bandwidth, write_bandwidth:
        Aggregate bandwidth in bytes/second.
    latency:
        Fixed per-request service latency in seconds (submission, flash
        translation, network round-trip for an OST, ...).
    per_stream_bandwidth:
        Optional cap on the bandwidth a single request stream can extract
        (e.g. a single-threaded SATA stream cannot saturate an Optane card).
    queue_depth:
        Number of requests that may be in their latency phase concurrently;
        further requests queue.  Large for NVMe, small for SATA.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        read_bandwidth: float,
        write_bandwidth: Optional[float] = None,
        latency: float = 100e-6,
        per_stream_bandwidth: Optional[float] = None,
        queue_depth: int = 32,
    ):
        super().__init__(env, name)
        if read_bandwidth <= 0:
            raise ValueError("read_bandwidth must be positive")
        self.read_bandwidth = float(read_bandwidth)
        self.write_bandwidth = float(write_bandwidth if write_bandwidth else read_bandwidth)
        self.latency = float(latency)
        self._read_link = SharedBandwidth(
            env, rate=self.read_bandwidth,
            per_flow_rate=per_stream_bandwidth, name=f"{name}.read")
        self._write_link = SharedBandwidth(
            env, rate=self.write_bandwidth,
            per_flow_rate=per_stream_bandwidth, name=f"{name}.write")
        self._queue = Resource(env, capacity=max(1, int(queue_depth)))

    def _io(self, nbytes: int, link: SharedBandwidth, is_write: bool
            ) -> Generator:
        start = self.env.now
        slot = self._queue.request()
        yield slot
        try:
            if self.latency > 0:
                yield self.env.timeout(self.latency)
        finally:
            self._queue.release(slot)
        if nbytes > 0:
            yield link.transfer(float(nbytes))
        end = self.env.now
        self.metrics.record_transfer(start, end, nbytes, is_write=is_write)
        return DeviceOp(nbytes=nbytes, start=start, end=end, seeked=False)

    def read(self, nbytes: int, stream_id: object = None, offset: int = 0
             ) -> Generator:
        """Read ``nbytes``; returns a :class:`DeviceOp`."""
        return (yield from self._io(int(nbytes), self._read_link, False))

    def write(self, nbytes: int, stream_id: object = None, offset: int = 0
              ) -> Generator:
        """Write ``nbytes``; returns a :class:`DeviceOp`."""
        return (yield from self._io(int(nbytes), self._write_link, True))


class RotationalDevice(StorageDevice):
    """Single-actuator hard-disk model.

    The head is a :class:`~repro.sim.resources.Resource` of capacity one: all
    requests serialize.  A request that continues the previous request
    (same ``stream_id`` and the offset immediately following the previous
    end) streams at ``bandwidth`` after a small track-to-track settle time;
    any other request first pays ``seek_time``.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth: float = 160e6,
        write_bandwidth: Optional[float] = None,
        seek_time: float = 8.0e-3,
        settle_time: float = 0.25e-3,
    ):
        super().__init__(env, name)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = float(bandwidth)
        self.write_bandwidth = float(write_bandwidth if write_bandwidth else bandwidth)
        self.seek_time = float(seek_time)
        self.settle_time = float(settle_time)
        self._head = Resource(env, capacity=1)
        #: (stream_id, next_expected_offset) of the request served last.
        self._head_position: Optional[Tuple[object, int]] = None

    def _needs_seek(self, stream_id: object, offset: int) -> bool:
        if self._head_position is None:
            return True
        last_stream, next_offset = self._head_position
        return not (stream_id is not None and last_stream == stream_id
                    and offset == next_offset)

    def _io(self, nbytes: int, stream_id: object, offset: int, is_write: bool
            ) -> Generator:
        nbytes = int(nbytes)
        start = self.env.now
        grant = self._head.request()
        yield grant
        try:
            seeked = self._needs_seek(stream_id, offset)
            service = self.seek_time if seeked else self.settle_time
            rate = self.write_bandwidth if is_write else self.bandwidth
            if nbytes > 0:
                service += nbytes / rate
            if service > 0:
                yield self.env.timeout(service)
            self._head_position = (stream_id, offset + nbytes)
        finally:
            self._head.release(grant)
        end = self.env.now
        self.metrics.record_transfer(start, end, nbytes, is_write=is_write)
        return DeviceOp(nbytes=nbytes, start=start, end=end, seeked=seeked)

    def read(self, nbytes: int, stream_id: object = None, offset: int = 0
             ) -> Generator:
        """Read ``nbytes`` at ``offset`` of stream ``stream_id``."""
        return (yield from self._io(nbytes, stream_id, offset, False))

    def write(self, nbytes: int, stream_id: object = None, offset: int = 0
              ) -> Generator:
        """Write ``nbytes`` at ``offset`` of stream ``stream_id``."""
        return (yield from self._io(nbytes, stream_id, offset, True))
