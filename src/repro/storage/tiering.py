"""Multi-tier storage: mount table and staging support.

Greendog in the paper has three tiers (two HDDs, a SATA SSD and an Intel
Optane 900p); the malware case study's optimization consists of *staging*
all files smaller than 2 MB from the HDD onto the Optane device
(Fig. 11b).  The :class:`MountTable` maps path prefixes to filesystem
backends; per-file placement overrides let the staging manager migrate a
file to a faster tier without changing its path, which is behaviourally
equivalent to the paper's manual copy plus dataset re-pointing and keeps the
workloads oblivious to the optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Iterable, List, Optional, Tuple

from repro.storage.backend import StorageBackend
from repro.storage.device import StorageDevice


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise ValueError(f"paths must be absolute, got {path!r}")
    while "//" in path:
        path = path.replace("//", "/")
    if len(path) > 1 and path.endswith("/"):
        path = path.rstrip("/")
    return path or "/"


@dataclass
class Mount:
    """One mount point: a path prefix served by a backend."""

    mount_point: str
    backend: StorageBackend

    def covers(self, path: str) -> bool:
        if self.mount_point == "/":
            return True
        return path == self.mount_point or path.startswith(self.mount_point + "/")


class MountTable:
    """Longest-prefix-match mapping from paths to storage backends."""

    def __init__(self):
        self._mounts: List[Mount] = []
        self._placement_overrides: Dict[str, StorageBackend] = {}

    def mount(self, mount_point: str, backend: StorageBackend) -> None:
        """Mount ``backend`` at ``mount_point``."""
        mount_point = _normalize(mount_point)
        if any(m.mount_point == mount_point for m in self._mounts):
            raise ValueError(f"{mount_point!r} is already mounted")
        self._mounts.append(Mount(mount_point, backend))
        # Longest prefix first so resolve() can take the first match.
        self._mounts.sort(key=lambda m: len(m.mount_point), reverse=True)

    @property
    def mounts(self) -> List[Mount]:
        return list(self._mounts)

    def backends(self) -> List[StorageBackend]:
        """All distinct mounted backends."""
        seen: List[StorageBackend] = []
        for mount in self._mounts:
            if mount.backend not in seen:
                seen.append(mount.backend)
        for backend in self._placement_overrides.values():
            if backend not in seen:
                seen.append(backend)
        return seen

    def devices(self) -> List[StorageDevice]:
        """All distinct devices below all backends (for dstat)."""
        seen: List[StorageDevice] = []
        for backend in self.backends():
            for device in backend.devices:
                if device not in seen:
                    seen.append(device)
        return seen

    # -- resolution -----------------------------------------------------------
    def resolve(self, path: str) -> StorageBackend:
        """Backend responsible for ``path`` (override beats mount prefix)."""
        path = _normalize(path)
        override = self._placement_overrides.get(path)
        if override is not None:
            return override
        for mount in self._mounts:
            if mount.covers(path):
                return mount.backend
        raise FileNotFoundError(f"no filesystem mounted for {path!r}")

    # -- staging ---------------------------------------------------------------
    def set_placement(self, path: str, backend: StorageBackend) -> None:
        """Pin ``path`` to ``backend`` regardless of its mount prefix."""
        self._placement_overrides[_normalize(path)] = backend

    def clear_placement(self, path: str) -> None:
        """Remove a per-file placement override."""
        self._placement_overrides.pop(_normalize(path), None)

    def placement_overrides(self) -> Dict[str, StorageBackend]:
        return dict(self._placement_overrides)


@dataclass
class StagingResult:
    """Outcome of staging a set of files to a faster tier."""

    staged_paths: List[str]
    staged_bytes: int
    elapsed: float
    target_backend: str

    @property
    def file_count(self) -> int:
        return len(self.staged_paths)


class StagingManager:
    """Copies file data to a faster tier and re-points its placement.

    The copy itself is simulated (read from the source backend, write to the
    target), so staging has a realistic one-off cost that benches can report
    alongside the training-time benefit, and dstat sees the corresponding
    disk activity.
    """

    def __init__(self, mount_table: MountTable):
        self.mount_table = mount_table

    def stage(self, env, files: Iterable[Tuple[str, object, int]],
              target: StorageBackend, copy_chunk: int = 4 << 20) -> Generator:
        """Stage ``(path, file_key, size)`` triples onto ``target``.

        Returns a :class:`StagingResult`; run it with ``env.process``.
        """
        start = env.now
        staged_paths: List[str] = []
        staged_bytes = 0
        for path, file_key, size in files:
            source = self.mount_table.resolve(path)
            if source is target:
                continue
            yield from source.open(file_key, size)
            offset = 0
            while offset < size:
                chunk = min(copy_chunk, size - offset)
                yield from source.read(file_key, offset, chunk, size)
                yield from target.write(file_key, offset, chunk)
                offset += chunk
            yield from source.close(file_key)
            self.mount_table.set_placement(path, target)
            staged_paths.append(path)
            staged_bytes += size
        return StagingResult(
            staged_paths=staged_paths,
            staged_bytes=staged_bytes,
            elapsed=env.now - start,
            target_backend=target.name,
        )
