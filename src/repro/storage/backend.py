"""Filesystem backends: the layer between POSIX files and block devices.

A backend turns file-level operations (open, read at an offset, write,
stat) into device-level operations, adding the metadata costs of the
filesystem it models.  The POSIX virtual filesystem asks the
:class:`~repro.storage.tiering.MountTable` which backend holds a file and
delegates data movement here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Set

from repro.sim import Environment
from repro.storage.device import DeviceOp, StorageDevice


@dataclass
class BackendOp:
    """Result of a backend-level operation."""

    nbytes: int
    start: float
    end: float
    device_ops: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


class StorageBackend:
    """Abstract filesystem backend."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name

    # -- interface -------------------------------------------------------
    @property
    def devices(self) -> List[StorageDevice]:
        """Block devices this backend writes to (for dstat)."""
        raise NotImplementedError

    def open(self, file_key: object, file_size: int) -> Generator:
        """Metadata cost of opening an existing file."""
        raise NotImplementedError

    def create(self, file_key: object) -> Generator:
        """Metadata cost of creating a new file."""
        raise NotImplementedError

    def close(self, file_key: object) -> Generator:
        """Cost of closing a file (usually negligible)."""
        yield self.env.timeout(0.0)
        return BackendOp(0, self.env.now, self.env.now, device_ops=0)

    def stat(self, file_key: object) -> Generator:
        """Metadata cost of a stat() on the file."""
        raise NotImplementedError

    def read(self, file_key: object, offset: int, nbytes: int,
             file_size: int) -> Generator:
        """Move ``nbytes`` of file data from the device."""
        raise NotImplementedError

    def write(self, file_key: object, offset: int, nbytes: int) -> Generator:
        """Move ``nbytes`` of file data to the device."""
        raise NotImplementedError

    def drop_caches(self) -> None:
        """Forget any cached metadata (the `echo 3 > drop_caches` step)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class LocalFilesystem(StorageBackend):
    """An ext4-like local filesystem on a single block device.

    Metadata behaviour: the first open (or stat) of a file after caches were
    dropped reads the file's directory entry and inode from disk (one small
    random read); subsequent opens hit the dentry/inode cache and cost only
    a few microseconds of kernel time.  This is what makes small-file
    workloads on the paper's HDD so expensive: every fresh file costs a
    metadata seek *and* a data seek.
    """

    #: Size of the on-disk metadata read that a cold open performs.
    METADATA_READ_BYTES = 4096

    def __init__(
        self,
        env: Environment,
        device: StorageDevice,
        name: Optional[str] = None,
        cached_metadata_time: float = 15e-6,
        create_time: float = 60e-6,
    ):
        super().__init__(env, name or f"ext4({device.name})")
        self.device = device
        self.cached_metadata_time = cached_metadata_time
        self.create_time = create_time
        self._dentry_cache: Set[object] = set()

    @property
    def devices(self) -> List[StorageDevice]:
        return [self.device]

    # -- metadata ---------------------------------------------------------
    def _metadata_lookup(self, file_key: object) -> Generator:
        start = self.env.now
        if file_key in self._dentry_cache:
            yield self.env.timeout(self.cached_metadata_time)
            ops = 0
        else:
            yield from self.device.read(
                self.METADATA_READ_BYTES, stream_id=("meta", self.name), offset=0)
            self._dentry_cache.add(file_key)
            ops = 1
        self.device.metrics.record_metadata_op()
        return BackendOp(0, start, self.env.now, device_ops=ops)

    def open(self, file_key: object, file_size: int) -> Generator:
        return (yield from self._metadata_lookup(file_key))

    def stat(self, file_key: object) -> Generator:
        return (yield from self._metadata_lookup(file_key))

    def create(self, file_key: object) -> Generator:
        start = self.env.now
        yield self.env.timeout(self.create_time)
        self._dentry_cache.add(file_key)
        self.device.metrics.record_metadata_op()
        return BackendOp(0, start, self.env.now, device_ops=0)

    # -- data -------------------------------------------------------------
    def read(self, file_key: object, offset: int, nbytes: int,
             file_size: int) -> Generator:
        start = self.env.now
        if nbytes > 0:
            yield from self.device.read(nbytes, stream_id=file_key, offset=offset)
        return BackendOp(nbytes, start, self.env.now)

    def write(self, file_key: object, offset: int, nbytes: int) -> Generator:
        start = self.env.now
        if nbytes > 0:
            yield from self.device.write(nbytes, stream_id=file_key, offset=offset)
        return BackendOp(nbytes, start, self.env.now)

    def drop_caches(self) -> None:
        self._dentry_cache.clear()
