"""Regression pin: the FsTransport cache layout never drifts.

``tests/regression/data/seed_cache`` was written by the *pre-transport*
``ResultCache`` (one canonical-JSON file per result at
``<root>/<key[:2]>/<key>.json``, plus ``costmodel.json`` beside the
entries) and is checked in verbatim.  The transport-backed cache must
keep serving it — existing cache directories on users' machines are the
contract — and must keep *producing* byte-identical files for the same
logical records, so directories written today stay readable by whatever
comes next.
"""

import shutil
from pathlib import Path

import pytest

from repro.campaign import ResultCache, SweepSpec, open_cache
from repro.campaign.dist import Broker, CostModel

SEED_CACHE = Path(__file__).parent / "data" / "seed_cache"

#: The exact spec whose four jobs were cached by the seed-era writer.
SPEC = SweepSpec(name="layout-pin", case="synthetic",
                 base={"rate": 150.0},
                 grid={"workers": [1, 2], "tasks": [4, 8]})


@pytest.fixture()
def jobs():
    return SPEC.expand()


def _entry_files(root):
    return sorted(p.relative_to(root).as_posix()
                  for p in root.glob("*/*.json"))


def test_seed_era_cache_directory_is_served(jobs):
    """Every entry written before the transport seam still hits."""
    cache = ResultCache(SEED_CACHE)
    for i, job in enumerate(jobs):
        record = cache.get(job)
        assert record is not None, f"seed entry for job {i} went dark"
        assert record["result"]["metrics"]["makespan"] == 0.5 + i
        assert record["result"]["wall_time"] == 0.125 * (i + 1)
    assert cache.stats() == {"hits": 4, "misses": 0, "entries": 4}


def test_keys_and_paths_match_the_checked_in_layout(jobs):
    """Key derivation and the two-level fan-out are the layout: if either
    drifts, every existing cache directory silently goes cold."""
    cache = ResultCache(SEED_CACHE)
    expected = sorted(cache.storage_key(job) for job in jobs)
    assert expected == _entry_files(SEED_CACHE)
    for job in jobs:
        assert cache.path(job).is_file()


def test_rewritten_entries_are_byte_identical(tmp_path, jobs):
    """Putting the seed records through today's cache reproduces the
    checked-in files byte for byte (canonical JSON encoding included)."""
    seed = ResultCache(SEED_CACHE)
    fresh = ResultCache(tmp_path / "rewrite")
    for job in jobs:
        record = seed.get(job)
        payload = {"result": dict(record["result"])}
        path = fresh.put(job, payload)
        assert path.relative_to(fresh.root) == \
            seed.path(job).relative_to(seed.root)
        assert path.read_bytes() == seed.path(job).read_bytes()


def test_costmodel_beside_the_entries_still_loads(jobs):
    """The persisted scheduling priors load through the cache's transport
    and are not mistaken for cache entries."""
    cache = ResultCache(SEED_CACHE)
    assert len(cache) == 4  # costmodel.json is not an entry
    model = CostModel.alongside(cache)
    assert model.estimate(jobs[0]) == 0.125
    assert model.estimate(jobs[3]) == 0.5


def test_seed_era_directory_serves_through_a_broker(tmp_path, jobs):
    """A broker pointed at a copy of the seed-era directory serves the
    same entries over HTTP — old caches ride the new transports whole."""
    root = tmp_path / "seed-copy"
    shutil.copytree(SEED_CACHE, root)
    with Broker(data_dir=root) as broker:
        cache = open_cache(broker.url)
        assert len(cache) == 4
        for i, job in enumerate(jobs):
            record = cache.get(job)
            assert record is not None
            assert record["result"]["metrics"]["makespan"] == 0.5 + i
        model = CostModel.alongside(cache)
        assert model.estimate(jobs[0]) == 0.125
