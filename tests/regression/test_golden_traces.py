"""Golden-trace regression tests: the simulated physics must not drift.

Each test runs one small end-to-end workload with a fixed seed and asserts
the key profile counters against values captured from the seed revision of
the simulation kernel.  The counters pin down the *physics* of the
simulation — how many bytes moved, how many POSIX calls were issued, the
shape of the read-size histogram — so kernel refactors (scheduling
structure, event types, fast paths) cannot silently change observable
behaviour: a legitimate physics change must update these numbers in the
same commit that explains why.

The float times are asserted with a tight relative tolerance rather than
exact equality so the goldens stay robust to benign float-summation order
differences inside aggregation (the event order itself is pinned by the
integer counters and by the differential tests in ``tests/sim``).
"""

import math

import pytest

from repro.workloads import run_imagenet_case, run_malware_case

GOLDEN_IMAGENET = {
    "steps": 4,
    "fit_time": 4.134966509,
    "bytes_read": 23_619_456,
    "posix_opens": 254,
    "posix_reads": 508,
    "posix_bytes_read": 23_420_183,
    "zero_byte_reads": 254,
    "posix_seeks": 0,
    "posix_stats": 0,
    "read_hist": {"0_100": 254, "10K_100K": 169, "100K_1M": 85},
    "checkpoint_fwrites": 296,
    "stdio_writes": 296,
}

GOLDEN_MALWARE = {
    "steps": 4,
    "fit_time": 6.732945337,
    "bytes_read": 572_597_542,
    "posix_opens": 126,
    "posix_reads": 720,
    "posix_bytes_read": 556_795_406,
    "zero_byte_reads": 126,
    "posix_seeks": 0,
    "posix_stats": 0,
    "read_hist": {"0_100": 126, "1K_10K": 1, "10K_100K": 9, "100K_1M": 584},
    "staged_bytes": 184_999_883,
}


def _profile_counters(result):
    profile = result.io_profile
    return {
        "steps": result.steps,
        "bytes_read": result.bytes_read,
        "posix_opens": profile.posix_opens,
        "posix_reads": profile.posix_reads,
        "posix_bytes_read": profile.posix_bytes_read,
        "zero_byte_reads": profile.zero_byte_reads,
        "posix_seeks": profile.posix_seeks,
        "posix_stats": profile.posix_stats,
        "read_hist": {k: v for k, v in profile.read_size_histogram.items() if v},
    }


@pytest.fixture(scope="module")
def imagenet_run():
    return run_imagenet_case(scale=0.01, steps=4, batch_size=64, threads=2,
                             profile="epoch", checkpoint_every=2, seed=7)


@pytest.fixture(scope="module")
def malware_run():
    return run_malware_case(scale=0.05, steps=4, batch_size=32, threads=2,
                            profile="epoch", staging_threshold=2 << 20, seed=7)


def test_imagenet_golden_counters(imagenet_run):
    got = _profile_counters(imagenet_run)
    expected = {k: GOLDEN_IMAGENET[k] for k in got}
    assert got == expected


def test_imagenet_golden_times_and_stdio(imagenet_run):
    assert math.isclose(imagenet_run.fit_time, GOLDEN_IMAGENET["fit_time"],
                        rel_tol=1e-6)
    assert imagenet_run.checkpoint_fwrites == GOLDEN_IMAGENET["checkpoint_fwrites"]
    assert imagenet_run.stdio_writes == GOLDEN_IMAGENET["stdio_writes"]


def test_imagenet_zero_length_read_per_open(imagenet_run):
    """The paper's Fig. 8 signature: one zero-length terminal read per file."""
    profile = imagenet_run.io_profile
    assert profile.zero_byte_reads == profile.posix_opens
    assert profile.posix_reads == 2 * profile.posix_opens


def test_malware_golden_counters(malware_run):
    got = _profile_counters(malware_run)
    expected = {k: GOLDEN_MALWARE[k] for k in got}
    assert got == expected


def test_malware_golden_staging_and_time(malware_run):
    assert math.isclose(malware_run.fit_time, GOLDEN_MALWARE["fit_time"],
                        rel_tol=1e-6)
    assert malware_run.staging is not None
    assert malware_run.staging.staged_bytes == GOLDEN_MALWARE["staged_bytes"]
