"""Tests for the Darshan heat-map summaries."""

import numpy as np
import pytest

from repro.darshan.dxt import DxtRecord, DxtSegment
from repro.darshan.heatmap import Heatmap, build_heatmap


def make_record(record_id, segments):
    record = DxtRecord(record_id)
    for op, offset, length, start, end in segments:
        record.add(DxtSegment(op=op, offset=offset, length=length,
                              start_time=start, end_time=end))
    return record


def test_heatmap_bins_bytes_uniformly_over_duration():
    record = make_record(1, [("read", 0, 1000, 0.0, 2.0)])
    heatmap = build_heatmap([record], 0.0, 4.0, bin_seconds=1.0)
    series = heatmap.total_read_series()
    assert len(series) == 4
    assert series[0] == pytest.approx(500)
    assert series[1] == pytest.approx(500)
    assert series[2] == 0 and series[3] == 0
    assert series.sum() == pytest.approx(1000)


def test_heatmap_conserves_total_bytes():
    record = make_record(1, [("read", 0, 700, 0.3, 2.7),
                             ("read", 700, 300, 2.7, 2.9),
                             ("write", 0, 400, 1.1, 1.4)])
    heatmap = build_heatmap([record], 0.0, 3.0, bin_seconds=0.5)
    assert heatmap.total_read_series().sum() == pytest.approx(1000, rel=1e-9)
    assert heatmap.total_write_series().sum() == pytest.approx(400, rel=1e-9)


def test_heatmap_separates_files():
    a = make_record(1, [("read", 0, 100, 0.0, 1.0)])
    b = make_record(2, [("read", 0, 900, 1.0, 2.0)])
    heatmap = build_heatmap([a, b], 0.0, 2.0, bin_seconds=1.0)
    assert heatmap.read_bins[1][0] == pytest.approx(100)
    assert heatmap.read_bins[2][1] == pytest.approx(900)
    assert heatmap.busiest_bin() == 1


def test_instantaneous_segment_lands_in_one_bin():
    record = make_record(1, [("read", 0, 50, 1.5, 1.5)])
    heatmap = build_heatmap([record], 0.0, 3.0, bin_seconds=1.0)
    assert heatmap.total_read_series()[1] == pytest.approx(50)


def test_segments_outside_window_ignored():
    record = make_record(1, [("read", 0, 100, 10.0, 11.0)])
    heatmap = build_heatmap([record], 0.0, 2.0, bin_seconds=1.0)
    assert heatmap.total_read_series().sum() == 0


def test_render_lists_top_files():
    a = make_record(1, [("read", 0, 10_000, 0.0, 1.0)])
    b = make_record(2, [("read", 0, 100, 0.0, 1.0)])
    heatmap = build_heatmap([a, b], 0.0, 2.0, bin_seconds=0.5)
    text = heatmap.render(resolve_name=lambda rid: f"/data/file{rid}")
    assert "I/O heat map" in text
    assert "/data/file1" in text


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        build_heatmap([], 1.0, 1.0)
    with pytest.raises(ValueError):
        build_heatmap([], 0.0, 1.0, bin_seconds=0)


def test_heatmap_from_profiled_run(env, os_image, darshan):
    """End to end: heat map built from a real instrumented run."""
    from tests.darshan.conftest import read_file_like_tf, run

    for i in range(5):
        os_image.vfs.create_file(f"/data/f{i}.bin", size=400_000)

    def proc():
        for i in range(5):
            yield from read_file_like_tf(os_image, f"/data/f{i}.bin")

    run(env, proc())
    heatmap = build_heatmap(darshan.posix_module.dxt_records.values(),
                            0.0, max(env.now, 0.01), bin_seconds=0.001)
    assert heatmap.total_read_series().sum() == pytest.approx(5 * 400_000, rel=1e-6)
    assert len(heatmap.read_bins) == 5
