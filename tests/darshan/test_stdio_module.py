"""Tests for the Darshan STDIO module."""

import pytest

from repro.darshan import darshan_record_id
from repro.posix import SimBytes
from tests.darshan.conftest import run


def stdio_record(darshan, path):
    return darshan.stdio_module.records[darshan_record_id(path)]


def test_fwrite_counters(darshan, os_image, env):
    def proc():
        stream = yield from os_image.call("fopen", "/data/ckpt", "wb")
        for _ in range(10):
            yield from os_image.call("fwrite", stream, SimBytes(100_000))
        yield from os_image.call("fclose", stream)

    run(env, proc())
    rec = stdio_record(darshan, "/data/ckpt")
    assert rec.counters["STDIO_OPENS"] == 1
    assert rec.counters["STDIO_WRITES"] == 10
    assert rec.counters["STDIO_BYTES_WRITTEN"] == 1_000_000
    assert rec.counters["STDIO_MAX_BYTE_WRITTEN"] == 999_999
    assert rec.fcounters["STDIO_F_WRITE_TIME"] > 0


def test_fread_counters(darshan, os_image, env):
    os_image.vfs.create_file("/data/f", size=300_000)

    def proc():
        stream = yield from os_image.call("fopen", "/data/f", "rb")
        total = 0
        while True:
            data = yield from os_image.call("fread", stream, 100_000)
            total += data.nbytes
            if data.nbytes == 0:
                break
        yield from os_image.call("fclose", stream)
        return total

    assert run(env, proc()) == 300_000
    rec = stdio_record(darshan, "/data/f")
    assert rec.counters["STDIO_READS"] == 4  # 3 data reads + EOF read
    assert rec.counters["STDIO_BYTES_READ"] == 300_000


def test_fseek_and_fflush_counters(darshan, os_image, env):
    def proc():
        stream = yield from os_image.call("fopen", "/data/out", "wb")
        yield from os_image.call("fwrite", stream, SimBytes(1000))
        yield from os_image.call("fflush", stream)
        yield from os_image.call("fseek", stream, 0, 0)
        yield from os_image.call("fwrite", stream, SimBytes(10))
        yield from os_image.call("fclose", stream)

    run(env, proc())
    rec = stdio_record(darshan, "/data/out")
    assert rec.counters["STDIO_FLUSHES"] == 1
    assert rec.counters["STDIO_SEEKS"] == 1
    assert rec.counters["STDIO_WRITES"] == 2


def test_stdio_does_not_pollute_posix_module(darshan, os_image, env):
    """glibc's stdio bypasses the PLT: fwrite traffic must appear only on the
    STDIO module, not as POSIX writes (no double counting)."""

    def proc():
        stream = yield from os_image.call("fopen", "/data/ckpt", "wb")
        yield from os_image.call("fwrite", stream, SimBytes(500_000))
        yield from os_image.call("fclose", stream)

    run(env, proc())
    assert darshan.stdio_module.total_counter("STDIO_BYTES_WRITTEN") == 500_000
    assert darshan.posix_module.total_counter("POSIX_BYTES_WRITTEN") == 0
    assert darshan.posix_module.total_counter("POSIX_OPENS") == 0


def test_stdio_dxt_segments(darshan, os_image, env):
    def proc():
        stream = yield from os_image.call("fopen", "/data/ckpt", "wb")
        yield from os_image.call("fwrite", stream, SimBytes(1 << 20))
        yield from os_image.call("fwrite", stream, SimBytes(1 << 20))
        yield from os_image.call("fclose", stream)

    run(env, proc())
    dxt = darshan.stdio_module.dxt_records[darshan_record_id("/data/ckpt")]
    assert len(dxt.write_segments) == 2
    assert dxt.write_segments[0].offset == 0
    assert dxt.write_segments[1].offset == 1 << 20


def test_stdio_timestamps_ordered(darshan, os_image, env):
    def proc():
        stream = yield from os_image.call("fopen", "/data/log", "w")
        yield from os_image.call("fwrite", stream, SimBytes(64_000))
        yield from os_image.call("fclose", stream)

    run(env, proc())
    rec = stdio_record(darshan, "/data/log")
    f = rec.fcounters
    assert f["STDIO_F_OPEN_START_TIMESTAMP"] <= f["STDIO_F_WRITE_START_TIMESTAMP"]
    assert f["STDIO_F_WRITE_END_TIMESTAMP"] <= f["STDIO_F_CLOSE_END_TIMESTAMP"]


def test_file_count(darshan, os_image, env):
    def proc():
        for i in range(3):
            stream = yield from os_image.call("fopen", f"/data/c{i}", "wb")
            yield from os_image.call("fwrite", stream, SimBytes(10))
            yield from os_image.call("fclose", stream)

    run(env, proc())
    assert darshan.stdio_module.file_count() == 3
