"""Shared fixtures for Darshan tests: a SimulatedOS with preloaded Darshan."""

import pytest

from repro.sim import Environment
from repro.storage import LocalFilesystem, StreamingDevice
from repro.posix import SimulatedOS
from repro.darshan import DarshanConfig, PreloadedDarshan


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def os_image(env):
    image = SimulatedOS(env)
    device = StreamingDevice(env, "ssd", read_bandwidth=500e6,
                             write_bandwidth=400e6, latency=20e-6)
    image.mount("/data", LocalFilesystem(env, device, name="ext4(ssd)"))
    return image


@pytest.fixture
def darshan(env, os_image):
    """A classic preloaded Darshan wrapping every I/O symbol."""
    instance = PreloadedDarshan(env, os_image.symbols, DarshanConfig())
    instance.install()
    return instance


def run(env, gen):
    return env.run(until=env.process(gen))


def read_file_like_tf(os_image, path, buffer_size=1 << 20):
    """The TensorFlow ReadFile loop: pread until a zero-length read."""
    def gen():
        fd = yield from os_image.call("open", path)
        offset = 0
        while True:
            data = yield from os_image.call("pread", fd, buffer_size, offset)
            offset += data.nbytes
            if data.nbytes == 0:
                break
        yield from os_image.call("close", fd)
        return offset
    return gen()
