"""Tests for log serialization, the pydarshan-style reader and the
extraction API that tf-Darshan depends on."""

import pytest

from repro.darshan import (
    DarshanLog,
    darshan_record_id,
    get_dxt_records,
    get_module_records,
    get_runtime_info,
    lookup_record_name,
    resolve_names,
)
from repro.posix import SimBytes
from tests.darshan.conftest import read_file_like_tf, run


@pytest.fixture
def traced(darshan, os_image, env):
    """Run a small mixed read/write workload under Darshan."""
    for i in range(4):
        os_image.vfs.create_file(f"/data/in{i}.bin", size=200_000 + i * 50_000)

    def proc():
        for i in range(4):
            yield from read_file_like_tf(os_image, f"/data/in{i}.bin")
        stream = yield from os_image.call("fopen", "/data/model.ckpt", "wb")
        for _ in range(5):
            yield from os_image.call("fwrite", stream, SimBytes(123_000))
        yield from os_image.call("fclose", stream)

    run(env, proc())
    return darshan


# -- extraction API ------------------------------------------------------------

def test_get_module_records_returns_copies(traced):
    records = get_module_records(traced.core, "POSIX")
    assert len(records) == 4
    rid = next(iter(records))
    records[rid].counters["POSIX_READS"] = 10**9
    # The live module record is untouched (extraction copies buffers).
    assert traced.posix_module.records[rid].counters["POSIX_READS"] < 10**9


def test_get_module_records_unknown_module_is_empty(traced):
    assert get_module_records(traced.core, "MPI-IO") == {}


def test_get_dxt_records(traced):
    dxt = get_dxt_records(traced.core, "POSIX")
    assert len(dxt) == 4
    total_segments = sum(rec.segment_count for rec in dxt.values())
    # Each input file: one data read + one zero-length read.
    assert total_segments == 8


def test_lookup_record_name_round_trip(traced):
    rid = darshan_record_id("/data/in0.bin")
    assert lookup_record_name(traced.core, rid) == "/data/in0.bin"
    assert lookup_record_name(traced.core, 12345) is None
    names = resolve_names(traced.core, [rid, 12345])
    assert names[rid] == "/data/in0.bin"
    assert names[12345] is None


def test_runtime_info_reports_file_counts(traced):
    info = get_runtime_info(traced.core)
    assert info.enabled is True
    assert "POSIX" in info.modules and "STDIO" in info.modules
    assert info.file_counts["POSIX"] == 4
    assert info.file_counts["STDIO"] == 1
    assert info.total_files == 4


# -- log writing / reading --------------------------------------------------------

def test_log_round_trip(tmp_path, traced):
    log = traced.finalize(str(tmp_path / "run.darshan.gz"))
    loaded = DarshanLog.read(str(tmp_path / "run.darshan.gz"))
    assert loaded.modules() == ["POSIX", "STDIO"]
    assert loaded.module_totals("POSIX") == log.module_totals("POSIX")
    assert loaded.module_totals("STDIO")["STDIO_WRITES"] == 5
    assert loaded.header["nprocs"] == 1
    assert "DXT_POSIX" in loaded.dxt_records
    assert len(loaded.dxt_records["DXT_POSIX"]) == 4


def test_log_rejects_foreign_files(tmp_path):
    import gzip
    import json

    path = tmp_path / "bogus.gz"
    with gzip.open(path, "wb") as handle:
        handle.write(json.dumps({"magic": "nope"}).encode())
    with pytest.raises(ValueError):
        DarshanLog.read(str(path))


def test_log_module_totals_and_ioops(traced):
    log = DarshanLog.from_core(traced.core)
    totals = log.module_totals("POSIX")
    assert totals["POSIX_OPENS"] == 4
    assert totals["POSIX_READS"] == 8
    ioops = log.agg_ioops("POSIX")
    assert ioops["opens"] == 4
    assert ioops["reads"] == 8
    stdio_ops = log.agg_ioops("STDIO")
    assert stdio_ops["writes"] == 5


def test_log_read_size_histogram(traced):
    log = DarshanLog.from_core(traced.core)
    hist = log.read_size_histogram("POSIX")
    # 4 data reads in the 100K-1M bucket, 4 zero-length reads in 0-100.
    assert hist["100K_1M"] == 4
    assert hist["0_100"] == 4


def test_log_file_sizes(traced):
    log = DarshanLog.from_core(traced.core)
    sizes = log.file_sizes("POSIX")
    assert sizes["/data/in0.bin"] == 200_000
    assert sizes["/data/in3.bin"] == 350_000


def test_log_time_totals_positive(traced):
    log = DarshanLog.from_core(traced.core)
    times = log.module_time_totals("POSIX")
    assert times["POSIX_F_READ_TIME"] > 0
    assert times["POSIX_F_META_TIME"] > 0


def test_log_summary_contains_key_lines(traced):
    log = DarshanLog.from_core(traced.core)
    text = log.summary()
    assert "# module POSIX: 4 records" in text
    assert "POSIX\tPOSIX_OPENS\t4" in text


def test_partial_module_marked_in_log(env, os_image):
    from repro.darshan import DarshanConfig, PreloadedDarshan

    darshan = PreloadedDarshan(env, os_image.symbols,
                               DarshanConfig(max_records_per_module=1))
    darshan.install()
    for i in range(3):
        os_image.vfs.create_file(f"/data/f{i}", size=100)

    def proc():
        for i in range(3):
            fd = yield from os_image.call("open", f"/data/f{i}")
            yield from os_image.call("close", fd)

    run(env, proc())
    log = DarshanLog.from_core(darshan.core)
    assert "POSIX" in log.partial_modules


def test_finalize_marks_runtime_disabled(traced):
    traced.finalize()
    info = get_runtime_info(traced.core)
    assert info.enabled is False
