"""Tests for the Darshan POSIX module counter semantics."""

import pytest

from repro.darshan import darshan_record_id
from tests.darshan.conftest import read_file_like_tf, run


def posix_record(darshan, path):
    return darshan.posix_module.records[darshan_record_id(path)]


def test_open_read_close_counters(darshan, os_image, env):
    os_image.vfs.create_file("/data/f.bin", size=250_000)
    run(env, read_file_like_tf(os_image, "/data/f.bin"))
    rec = posix_record(darshan, "/data/f.bin")
    assert rec.counters["POSIX_OPENS"] == 1
    # One full read plus the terminating zero-length read.
    assert rec.counters["POSIX_READS"] == 2
    assert rec.counters["POSIX_BYTES_READ"] == 250_000
    assert rec.counters["POSIX_MAX_BYTE_READ"] == 249_999


def test_first_read_neither_seq_nor_consec_zero_read_both(darshan, os_image, env):
    """The exact semantics behind the paper's 50%/50% ImageNet split."""
    os_image.vfs.create_file("/data/img.jpg", size=88_000)
    run(env, read_file_like_tf(os_image, "/data/img.jpg"))
    rec = posix_record(darshan, "/data/img.jpg")
    assert rec.counters["POSIX_READS"] == 2
    # Only the zero-length read at EOF counts as sequential and consecutive.
    assert rec.counters["POSIX_SEQ_READS"] == 1
    assert rec.counters["POSIX_CONSEC_READS"] == 1


def test_segmented_read_majority_sequential(darshan, os_image, env):
    """Malware-style files read in 1 MB segments are mostly seq+consec."""
    size = 4_400_000
    os_image.vfs.create_file("/data/mal.bytes", size=size)
    run(env, read_file_like_tf(os_image, "/data/mal.bytes", buffer_size=1 << 20))
    rec = posix_record(darshan, "/data/mal.bytes")
    reads = rec.counters["POSIX_READS"]
    assert reads == 6  # 4 full MiB + 1 partial + 1 zero-length
    assert rec.counters["POSIX_SEQ_READS"] == reads - 1
    assert rec.counters["POSIX_CONSEC_READS"] == reads - 1
    assert rec.counters["POSIX_BYTES_READ"] == size


def test_read_size_histogram_buckets(darshan, os_image, env):
    os_image.vfs.create_file("/data/small", size=88_000)    # 10K-100K bucket
    os_image.vfs.create_file("/data/large", size=3_000_000)  # 1M-4M + smaller

    run(env, read_file_like_tf(os_image, "/data/small"))
    run(env, read_file_like_tf(os_image, "/data/large", buffer_size=4 << 20))

    small = posix_record(darshan, "/data/small")
    large = posix_record(darshan, "/data/large")
    assert small.counters["POSIX_SIZE_READ_10K_100K"] == 1
    assert small.counters["POSIX_SIZE_READ_0_100"] == 1  # zero-length read
    assert large.counters["POSIX_SIZE_READ_1M_4M"] == 1
    assert large.counters["POSIX_SIZE_READ_0_100"] == 1


def test_timestamps_and_cumulative_time(darshan, os_image, env):
    os_image.vfs.create_file("/data/f", size=1_000_000)
    run(env, read_file_like_tf(os_image, "/data/f"))
    rec = posix_record(darshan, "/data/f")
    f = rec.fcounters
    assert f["POSIX_F_OPEN_START_TIMESTAMP"] <= f["POSIX_F_READ_START_TIMESTAMP"]
    assert f["POSIX_F_READ_START_TIMESTAMP"] < f["POSIX_F_READ_END_TIMESTAMP"]
    assert f["POSIX_F_READ_END_TIMESTAMP"] <= f["POSIX_F_CLOSE_END_TIMESTAMP"]
    assert f["POSIX_F_READ_TIME"] > 0
    assert f["POSIX_F_META_TIME"] > 0
    assert f["POSIX_F_MAX_READ_TIME"] <= f["POSIX_F_READ_TIME"]


def test_write_counters_and_rw_switches(darshan, os_image, env):
    from repro.posix import O_CREAT, O_RDWR

    def proc():
        fd = yield from os_image.call("open", "/data/out.bin", O_RDWR | O_CREAT)
        yield from os_image.call("write", fd, 200_000)
        yield from os_image.call("write", fd, 200_000)
        yield from os_image.call("pread", fd, 100_000, 0)
        yield from os_image.call("write", fd, 100_000)
        yield from os_image.call("close", fd)

    run(env, proc())
    rec = posix_record(darshan, "/data/out.bin")
    assert rec.counters["POSIX_WRITES"] == 3
    assert rec.counters["POSIX_READS"] == 1
    assert rec.counters["POSIX_BYTES_WRITTEN"] == 500_000
    # write -> read -> write causes two switches.
    assert rec.counters["POSIX_RW_SWITCHES"] == 2
    # The second write is consecutive and sequential w.r.t. the first.
    assert rec.counters["POSIX_SEQ_WRITES"] >= 1
    assert rec.counters["POSIX_CONSEC_WRITES"] >= 1


def test_lseek_and_stat_counters(darshan, os_image, env):
    os_image.vfs.create_file("/data/f", size=1000)

    def proc():
        yield from os_image.call("stat", "/data/f")
        fd = yield from os_image.call("open", "/data/f")
        yield from os_image.call("lseek", fd, 500, 0)
        yield from os_image.call("read", fd, 100)
        yield from os_image.call("fsync", fd)
        yield from os_image.call("close", fd)

    run(env, proc())
    rec = posix_record(darshan, "/data/f")
    assert rec.counters["POSIX_STATS"] == 1
    assert rec.counters["POSIX_SEEKS"] == 1
    assert rec.counters["POSIX_FSYNCS"] == 1
    # The read after lseek(500) starts at offset 500 (darshan's own offset
    # tracking), so it is sequential but not consecutive.
    assert rec.counters["POSIX_SEQ_READS"] == 1
    assert rec.counters["POSIX_CONSEC_READS"] == 0


def test_common_access_sizes_finalized(darshan, os_image, env):
    os_image.vfs.create_file("/data/f", size=3_000_000)

    def proc():
        fd = yield from os_image.call("open", "/data/f")
        for i in range(3):
            yield from os_image.call("pread", fd, 1_000_000, i * 1_000_000)
        yield from os_image.call("pread", fd, 500, 0)
        yield from os_image.call("close", fd)

    run(env, proc())
    darshan.posix_module.finalize()
    rec = posix_record(darshan, "/data/f")
    assert rec.counters["POSIX_ACCESS1_ACCESS"] == 1_000_000
    assert rec.counters["POSIX_ACCESS1_COUNT"] == 3
    assert rec.counters["POSIX_ACCESS2_ACCESS"] == 500
    assert rec.counters["POSIX_ACCESS2_COUNT"] == 1


def test_dxt_segments_recorded(darshan, os_image, env):
    os_image.vfs.create_file("/data/f", size=2_500_000)
    run(env, read_file_like_tf(os_image, "/data/f", buffer_size=1 << 20))
    rid = darshan_record_id("/data/f")
    dxt = darshan.posix_module.dxt_records[rid]
    # 3 data reads (1M, 1M, 0.5M) + 1 zero-length read.
    assert len(dxt.read_segments) == 4
    lengths = [s.length for s in dxt.read_segments]
    assert lengths == [1 << 20, 1 << 20, 2_500_000 - 2 * (1 << 20), 0]
    offsets = [s.offset for s in dxt.read_segments]
    assert offsets == [0, 1 << 20, 2 << 20, 2_500_000]
    for seg in dxt.read_segments:
        assert seg.end_time >= seg.start_time


def test_dxt_disabled_records_nothing(env, os_image):
    from repro.darshan import DarshanConfig, PreloadedDarshan

    darshan = PreloadedDarshan(env, os_image.symbols,
                               DarshanConfig(enable_dxt=False))
    darshan.install()
    os_image.vfs.create_file("/data/f", size=100_000)
    run(env, read_file_like_tf(os_image, "/data/f"))
    assert darshan.posix_module.dxt_records == {}


def test_record_limit_sets_partial_flag(env, os_image):
    from repro.darshan import DarshanConfig, PreloadedDarshan

    darshan = PreloadedDarshan(env, os_image.symbols,
                               DarshanConfig(max_records_per_module=2))
    darshan.install()
    for i in range(4):
        os_image.vfs.create_file(f"/data/f{i}", size=1000)

    def proc():
        for i in range(4):
            fd = yield from os_image.call("open", f"/data/f{i}")
            yield from os_image.call("pread", fd, 1000, 0)
            yield from os_image.call("close", fd)

    run(env, proc())
    assert darshan.posix_module.file_count() == 2
    assert darshan.posix_module.partial_flag is True


def test_untracked_fd_passthrough(env, os_image):
    """A file opened before Darshan attaches is read but not instrumented."""
    from repro.darshan import DarshanConfig, PreloadedDarshan

    os_image.vfs.create_file("/data/early", size=1000)
    state = {}

    def proc():
        fd = yield from os_image.call("open", "/data/early")
        state["fd"] = fd
        # Attach Darshan only now.
        darshan = PreloadedDarshan(env, os_image.symbols, DarshanConfig())
        darshan.install()
        state["darshan"] = darshan
        data = yield from os_image.call("pread", fd, 1000, 0)
        yield from os_image.call("close", fd)
        return data.nbytes

    assert run(env, proc()) == 1000
    darshan = state["darshan"]
    assert darshan.posix_module.file_count() == 0
    assert darshan.posix_module.untracked_ops >= 1


def test_instrumentation_overhead_charged(env, os_image):
    """Wrapped I/O must cost (slightly) more simulated time than unwrapped."""
    from repro.darshan import DarshanConfig, PreloadedDarshan

    for i in range(20):
        os_image.vfs.create_file(f"/data/file{i}.bin", size=1_000_000)

    def workload():
        for i in range(20):
            fd = yield from os_image.call("open", f"/data/file{i}.bin")
            yield from os_image.call("pread", fd, 1_000_000, 0)
            yield from os_image.call("close", fd)

    os_image.drop_caches()
    t0 = env.now
    run(env, workload())
    baseline = env.now - t0

    darshan = PreloadedDarshan(env, os_image.symbols,
                               DarshanConfig(instrumentation_overhead=5e-6))
    darshan.install()
    os_image.drop_caches()
    t1 = env.now
    run(env, workload())
    instrumented = env.now - t1
    assert instrumented > baseline
    # ... but Darshan remains a low-overhead tool (well under 10% here).
    assert instrumented < baseline * 1.10


def test_total_counter_aggregates_across_files(darshan, os_image, env):
    for i in range(5):
        os_image.vfs.create_file(f"/data/f{i}", size=10_000)

    def proc():
        for i in range(5):
            fd = yield from os_image.call("open", f"/data/f{i}")
            yield from os_image.call("pread", fd, 10_000, 0)
            yield from os_image.call("close", fd)

    run(env, proc())
    assert darshan.posix_module.total_counter("POSIX_OPENS") == 5
    assert darshan.posix_module.total_counter("POSIX_READS") == 5
    assert darshan.posix_module.total_counter("POSIX_BYTES_READ") == 50_000
    assert darshan.posix_module.file_count() == 5
