"""Documentation health checks.

The docs tree is part of the product: broken relative links and rotted
docstring examples are regressions like any other.  Two gates:

* every relative markdown link (and in-repo anchor) in ``README.md`` and
  ``docs/*.md`` must resolve to a real file/heading;
* the executable examples in campaign-layer docstrings must keep passing
  under ``doctest`` (CI also runs ``python -m doctest`` over the same
  modules — see ``.github/workflows/ci.yml``).
"""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOC_FILES = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _anchors(markdown: str):
    """GitHub-style anchor slugs for every heading in ``markdown``."""
    slugs = set()
    for heading in _HEADING.findall(markdown):
        text = heading.strip().lower().replace("`", "")
        slug = re.sub(r"[^\w\- ]", "", text).replace(" ", "-")
        slugs.add(slug)
    return slugs


def test_doc_tree_exists():
    for name in ("architecture.md", "distributed.md", "cookbook.md",
                 "observability.md", "robustness.md"):
        assert (REPO / "docs" / name).is_file(), f"docs/{name} missing"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = doc if not path_part else (doc.parent / path_part).resolve()
        if not dest.exists():
            broken.append(f"{target}: no such file {path_part}")
            continue
        if anchor and dest.suffix == ".md":
            if anchor not in _anchors(dest.read_text(encoding="utf-8")):
                broken.append(f"{target}: no heading for #{anchor}")
    assert not broken, f"{doc.name}: broken links:\n  " + "\n  ".join(broken)


@pytest.mark.parametrize("module_name", [
    "repro.campaign.jsonio",
    "repro.campaign.cache",
    "repro.campaign.dist.transport",
    "repro.campaign.dist.costmodel",
    "repro.campaign.dist.breaker",
    "repro.campaign.dist.chaos",
])
def test_docstring_examples_pass(module_name):
    module = __import__(module_name, fromlist=["_"])
    failures, tests = doctest.testmod(module, verbose=False)
    assert tests > 0, f"{module_name} lost its doctest examples"
    assert failures == 0
