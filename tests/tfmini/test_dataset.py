"""Tests for the tf.data-like pipeline."""

import pytest

from repro.tfmini import AUTOTUNE, Dataset, OutOfRangeError
from repro.tfmini import io_ops
from tests.tfmini.conftest import make_files, run


def load(runtime, path):
    """A minimal capture function: read the file."""
    data = yield from io_ops.read_file(runtime, path)
    return data


def drain(runtime, dataset, max_batches=10**9):
    """Pull every batch out of a dataset; returns the list of batches."""
    def proc():
        iterator = dataset.make_iterator(runtime)
        batches = []
        while len(batches) < max_batches:
            try:
                batch = yield from iterator.get_next()
            except OutOfRangeError:
                break
            batches.append(batch)
        iterator.cancel()
        return batches
    return run(runtime.env, proc())


def test_from_list_map_batch_roundtrip(runtime, os_image):
    paths = make_files(os_image, 8, 10_000)
    dataset = Dataset.from_list(paths).map(load).batch(4)
    batches = drain(runtime, dataset)
    assert len(batches) == 2
    assert all(batch.size == 4 for batch in batches)
    assert batches[0].nbytes == 40_000


def test_list_files_discovers_vfs_files(runtime, os_image):
    make_files(os_image, 5, 1000)
    dataset = Dataset.list_files(os_image.vfs, "/data/train")
    batches = drain(runtime, dataset.batch(1))
    assert len(batches) == 5


def test_list_files_shuffle_is_deterministic_per_seed(runtime, os_image):
    make_files(os_image, 20, 10)
    a = Dataset.list_files(os_image.vfs, "/data/train", shuffle=True, seed=1)
    b = Dataset.list_files(os_image.vfs, "/data/train", shuffle=True, seed=1)
    c = Dataset.list_files(os_image.vfs, "/data/train", shuffle=True, seed=2)
    assert a._node.items == b._node.items
    assert a._node.items != c._node.items


def test_batch_drop_remainder(runtime, os_image):
    paths = make_files(os_image, 10, 100)
    kept = drain(runtime, Dataset.from_list(paths).map(load).batch(4))
    assert [b.size for b in kept] == [4, 4]
    all_batches = drain(runtime, Dataset.from_list(paths).map(load)
                        .batch(4, drop_remainder=False))
    assert [b.size for b in all_batches] == [4, 4, 2]


def test_take_limits_elements(runtime, os_image):
    paths = make_files(os_image, 10, 100)
    batches = drain(runtime, Dataset.from_list(paths).take(6).map(load).batch(2))
    assert len(batches) == 3


def test_repeat_cycles_the_source(runtime, os_image):
    paths = make_files(os_image, 3, 100)
    batches = drain(runtime, Dataset.from_list(paths).repeat(2).map(load).batch(3))
    assert len(batches) == 2


def test_repeat_infinite_with_take(runtime, os_image):
    paths = make_files(os_image, 2, 100)
    batches = drain(runtime, Dataset.from_list(paths).repeat().take(10)
                    .map(load).batch(2))
    assert len(batches) == 5


def test_shuffle_preserves_multiset(runtime, os_image):
    paths = make_files(os_image, 16, 100)
    dataset = Dataset.from_list(paths).shuffle(8, seed=3).batch(16)
    batches = drain(runtime, dataset)
    assert sorted(batches[0].elements) == sorted(paths)


def test_out_of_range_after_exhaustion(runtime, os_image):
    paths = make_files(os_image, 2, 100)
    dataset = Dataset.from_list(paths).map(load).batch(1)

    def proc():
        iterator = dataset.make_iterator(runtime)
        yield from iterator.get_next()
        yield from iterator.get_next()
        try:
            yield from iterator.get_next()
        except OutOfRangeError:
            return "done"

    assert run(runtime.env, proc()) == "done"


def test_invalid_arguments_rejected(runtime):
    dataset = Dataset.from_list([1, 2, 3])
    with pytest.raises(ValueError):
        dataset.batch(0)
    with pytest.raises(ValueError):
        dataset.shuffle(0)


def test_parallel_map_is_faster_than_sequential(runtime, os_image):
    """num_parallel_calls must overlap per-element work."""
    paths = make_files(os_image, 16, 100)

    def slow_fn(rt, path):
        yield rt.env.timeout(0.05)
        return path

    env = runtime.env
    t0 = env.now
    drain(runtime, Dataset.from_list(paths).map(slow_fn, num_parallel_calls=1)
          .batch(16))
    sequential = env.now - t0
    t1 = env.now
    drain(runtime, Dataset.from_list(paths).map(slow_fn, num_parallel_calls=8)
          .batch(16))
    parallel = env.now - t1
    assert parallel < sequential / 3


def test_autotune_resolves_to_core_count(runtime, os_image):
    paths = make_files(os_image, 8, 100)

    def slow_fn(rt, path):
        yield rt.env.timeout(0.05)
        return path

    env = runtime.env
    t0 = env.now
    drain(runtime, Dataset.from_list(paths).map(slow_fn,
                                                num_parallel_calls=AUTOTUNE)
          .batch(8))
    elapsed = env.now - t0
    # 8 elements of 50 ms on 4 cores -> about 2 rounds, well below 8 x 50 ms.
    assert elapsed < 0.2


def test_prefetch_lets_the_producer_run_ahead(runtime, os_image):
    """prefetch(n) buffers up to n ready batches while the consumer is busy."""
    paths = make_files(os_image, 40, 1000)

    def consume_three(dataset):
        iterator = dataset.make_iterator(runtime)
        for _ in range(3):
            yield from iterator.get_next()
            yield runtime.env.timeout(0.05)  # slow consumer
        opened = os_image.posix.call_counts["open"]
        iterator.cancel()
        return opened

    env = runtime.env
    base = Dataset.from_list(paths).map(load).batch(1)
    opened_without = run(env, consume_three(base))
    baseline = os_image.posix.call_counts["open"]
    opened_with = run(env, consume_three(base.prefetch(10))) - baseline
    # Without prefetch only a couple of elements are in flight; with a
    # 10-batch prefetch buffer the producer runs well ahead of the consumer.
    assert opened_without <= 10
    assert opened_with >= opened_without + 6


def test_pipeline_reads_go_through_symbol_table(runtime, os_image):
    """The map function's I/O must be visible to the dispatch layer."""
    paths = make_files(os_image, 4, 50_000)
    drain(runtime, Dataset.from_list(paths).map(load).batch(2))
    assert os_image.posix.call_counts["open"] == 4
    # one data pread + one zero-length pread per file
    assert os_image.posix.call_counts["pread"] == 8
    assert os_image.posix.call_counts["close"] == 4


def test_iterator_cancel_stops_background_production(runtime, os_image):
    paths = make_files(os_image, 100, 10_000)
    dataset = Dataset.from_list(paths).map(load).batch(1).prefetch(2)

    def proc():
        iterator = dataset.make_iterator(runtime)
        yield from iterator.get_next()
        iterator.cancel()
        return os_image.posix.call_counts["open"]

    opened_at_cancel = run(runtime.env, proc())
    # Let the simulation drain whatever is left.
    runtime.env.run()
    # Production must stop shortly after cancel, far before all 100 files.
    assert os_image.posix.call_counts["open"] <= opened_at_cancel + 10
