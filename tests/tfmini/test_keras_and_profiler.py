"""Tests for models, the training loop, callbacks, checkpoints and profiler."""

import pytest

from repro.tfmini import Dataset, io_ops
from repro.tfmini.keras import (
    AlexNet,
    CheckpointManager,
    MalwareCNN,
    Model,
    ModelCheckpoint,
    TensorBoard,
    Variable,
)
from repro.tfmini.profiler import (
    HOST_PLANE_NAME,
    ProfilerOptions,
    ProfilerServer,
    analyze_input_pipeline,
    build_overview,
    profiler_start,
    profiler_stop,
    read_trace_json,
)
from tests.tfmini.conftest import make_files, run


def load(runtime, path):
    data = yield from io_ops.read_file(runtime, path)
    return data


def tiny_model():
    model = Model("tiny", [Variable("w", (1000, 10)), Variable("b", (10,))])
    model.per_sample_gpu_time = 1e-4
    return model


def input_pipeline(os_image, count=32, size=50_000, batch=8):
    paths = make_files(os_image, count, size)
    return Dataset.from_list(paths).map(load).batch(batch).prefetch(2)


# -- models -------------------------------------------------------------------

def test_alexnet_parameter_count_matches_the_architecture():
    model = AlexNet()
    # Standard AlexNet has about 61-62 M parameters.
    assert 58e6 < model.parameter_count() < 65e6
    # float32 checkpoint payload of roughly 235-250 MB.
    assert 230e6 < model.variables_nbytes() < 260e6


def test_malware_cnn_is_small():
    model = MalwareCNN()
    assert model.parameter_count() < 10e6
    assert model.per_sample_gpu_time < AlexNet.per_sample_gpu_time


def test_step_kernels_sum_to_step_time():
    model = AlexNet()
    kernels = model.step_kernels(128)
    total = sum(duration for _, duration in kernels)
    assert total == pytest.approx(model.per_sample_gpu_time * 128, rel=1e-6)


def test_compile_records_config():
    model = tiny_model()
    model.compile(optimizer="sgd", learning_rate=0.01, momentum=0.0)
    assert model.compiled
    assert model.config.learning_rate == 0.01


# -- fit loop ------------------------------------------------------------------

def test_fit_runs_requested_steps(runtime, os_image):
    dataset = input_pipeline(os_image, count=32, batch=8)
    model = tiny_model()
    history = run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=3))
    assert len(history.batches) == 3
    assert len(runtime.step_stats) == 3
    assert history.epochs[0]["steps"] == 3
    assert runtime.env.now > 0


def test_fit_stops_early_when_data_runs_out(runtime, os_image):
    dataset = input_pipeline(os_image, count=8, batch=8)
    model = tiny_model()
    history = run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=5))
    assert len(history.batches) == 1


def test_fit_step_stats_split_input_and_compute(runtime, os_image):
    dataset = input_pipeline(os_image, count=16, batch=8)
    model = tiny_model()
    run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=2))
    for stats in runtime.step_stats:
        assert stats.input_time >= 0
        assert stats.compute_time > 0
        assert stats.duration >= stats.input_time + stats.compute_time - 1e-9


def test_fit_uses_gpu_kernels(runtime, os_image):
    dataset = input_pipeline(os_image, count=16, batch=8)
    model = tiny_model()
    run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=2))
    assert len(runtime.gpus[0].kernel_log) == 2 * len(model.kernel_profile)


# -- checkpointing --------------------------------------------------------------

def test_checkpoint_writer_goes_through_fwrite(runtime, os_image):
    model = AlexNet()
    manager = CheckpointManager(runtime, "/data/ckpts", max_to_keep=None)
    info = run(runtime.env, manager.save(model))
    # The data file holds all variables plus headers.
    assert info.bytes_written > model.variables_nbytes()
    assert info.fwrite_calls > 100
    assert os_image.vfs.exists(info.data_file)
    assert os_image.posix.call_counts["pwrite"] > 0


def test_alexnet_ten_checkpoints_make_about_1400_fwrites(runtime, os_image):
    """Fig. 6: ten per-step checkpoints of AlexNet produce ~1 400 fwrites."""
    model = AlexNet()
    manager = CheckpointManager(runtime, "/data/ckpts", max_to_keep=None)

    def proc():
        total = 0
        for _ in range(10):
            info = yield from manager.save(model)
            total += info.fwrite_calls
        return total

    total_fwrites = run(runtime.env, proc())
    assert 1200 <= total_fwrites <= 1600


def test_checkpoint_manager_prunes_old_checkpoints(runtime, os_image):
    model = tiny_model()
    manager = CheckpointManager(runtime, "/data/ckpts", max_to_keep=2)

    def proc():
        for _ in range(4):
            yield from manager.save(model)

    run(runtime.env, proc())
    assert len(manager.checkpoints) == 2
    remaining = [i.path for i in os_image.vfs.files_under("/data/ckpts")]
    assert not any("ckpt-1." in path for path in remaining)
    assert any("ckpt-4." in path for path in remaining)


def test_model_checkpoint_callback_saves_every_n_steps(runtime, os_image):
    dataset = input_pipeline(os_image, count=64, batch=8)
    model = tiny_model()
    callback = ModelCheckpoint("/data/ckpts/step-{step}", save_freq=2)
    run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=6,
                               callbacks=[callback]))
    assert len(callback.saves) == 3


# -- profiler ---------------------------------------------------------------------

def test_manual_profiler_start_stop_collects_host_events(runtime, os_image):
    paths = make_files(os_image, 8, 50_000)

    def proc():
        yield from profiler_start(runtime)
        for path in paths:
            yield from io_ops.read_file(runtime, path)
        result = yield from profiler_stop(runtime)
        return result

    result = run(runtime.env, proc())
    host = result.xspace.find_plane(HOST_PLANE_NAME)
    assert host is not None
    read_events = [e for line in host.lines.values() for e in line.events
                   if e.name == "ReadFile"]
    assert len(read_events) == 8
    assert result.duration > 0


def test_profiler_not_recording_outside_session(runtime, os_image):
    paths = make_files(os_image, 4, 10_000)

    def proc():
        for path in paths:
            yield from io_ops.read_file(runtime, path)

    run(runtime.env, proc())
    assert runtime.traceme.total_recorded == 0


def test_double_start_rejected(runtime):
    def proc():
        yield from profiler_start(runtime)
        try:
            yield from profiler_start(runtime)
        except RuntimeError:
            return "rejected"

    assert run(runtime.env, proc()) == "rejected"


def test_stop_without_start_rejected(runtime):
    def proc():
        try:
            yield from profiler_stop(runtime)
        except RuntimeError:
            return "rejected"
        yield runtime.env.timeout(0)

    assert run(runtime.env, proc()) == "rejected"


def test_tensorboard_callback_profiles_batch_range(runtime, os_image, tmp_path):
    dataset = input_pipeline(os_image, count=64, batch=8)
    model = tiny_model()
    callback = TensorBoard(log_dir=str(tmp_path / "tb"), profile_batch=(2, 4))
    run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=6,
                               callbacks=[callback]))
    result = callback.profile_result
    assert result is not None
    # Steps 2-4 (1-based) fall inside the profile window.
    analysis = analyze_input_pipeline(runtime.step_stats, result.start_time,
                                      result.end_time)
    assert analysis.num_steps == 3
    assert (tmp_path / "tb" / "trace.json.gz").exists()
    events = read_trace_json(str(tmp_path / "tb" / "trace.json.gz"))
    assert any(e.get("name") == "train_step" for e in events)


def test_gpu_plane_collected_when_profiling(runtime, os_image, tmp_path):
    dataset = input_pipeline(os_image, count=32, batch=8)
    model = tiny_model()
    callback = TensorBoard(log_dir=str(tmp_path / "tb"), profile_batch=(1, 2))
    run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=3,
                               callbacks=[callback]))
    planes = callback.profile_result.xspace.planes
    assert any(name.startswith("/device:GPU") for name in planes)


def test_profiler_server_capture_window(runtime, os_image):
    paths = make_files(os_image, 50, 20_000)
    server = ProfilerServer(runtime)

    def workload():
        for path in paths:
            yield from io_ops.read_file(runtime, path)
            yield runtime.env.timeout(0.01)

    def capture():
        yield runtime.env.timeout(0.05)
        result = yield from server.capture(duration=0.2)
        return result

    runtime.env.process(workload())
    result = run(runtime.env, capture())
    assert result.duration >= 0.2
    host = result.xspace.find_plane(HOST_PLANE_NAME)
    assert host is not None and host.event_count > 0


def test_input_pipeline_analysis_classifies_input_bound(runtime, os_image):
    """A tiny model with slow input must be classified as input bound."""
    paths = make_files(os_image, 32, 2_000_000)
    dataset = Dataset.from_list(paths).map(load).batch(8)
    model = tiny_model()
    run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=4))
    analysis = analyze_input_pipeline(runtime.step_stats)
    assert analysis.num_steps == 4
    assert analysis.input_percent > 50
    assert "HIGHLY input-bound" in analysis.classification
    assert "waiting for input" in analysis.summary()


def test_overview_page_reports_utilization(runtime, os_image, tmp_path):
    dataset = input_pipeline(os_image, count=32, batch=8)
    model = tiny_model()
    callback = TensorBoard(log_dir=str(tmp_path / "tb"), profile_batch=(1, 3))
    run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=4,
                               callbacks=[callback]))
    overview = build_overview(callback.profile_result.xspace, runtime.step_stats)
    assert overview.num_steps >= 3
    assert 0 <= overview.input_percent <= 100
    assert overview.host_event_count > 0
    assert "Overview" in overview.summary()
